"""Tests for the Low-Fat address-space layout arithmetic (Figures 3/4)."""

from hypothesis import given, strategies as st

from repro.lowfat import layout


class TestRegionArithmetic:
    def test_region_bounds(self):
        assert layout.NUM_REGIONS == 27
        assert layout.allocation_size(1) == 16
        assert layout.allocation_size(27) == 1 << 30
        assert layout.allocation_size(0) == 0
        assert layout.allocation_size(28) == 0

    def test_region_index(self):
        assert layout.region_index(layout.region_base(1)) == 1
        assert layout.region_index(layout.region_base(27) + 12345) == 27
        assert layout.region_index(0x1000) == 0
        assert not layout.is_lowfat(0x1000)
        assert layout.is_lowfat(layout.region_base(5) + 100)
        assert not layout.is_lowfat(layout.LOWFAT_END + 5)

    def test_size_class_padding(self):
        # +1 byte pad for one-past-the-end pointers (paper footnote 3)
        assert layout.size_class_for(15) == 1     # 15+1 = 16 -> 16B class
        assert layout.size_class_for(16) == 2     # 16+1 = 17 -> 32B class
        assert layout.size_class_for(1) == 1
        assert layout.size_class_for(0) == 1
        assert layout.size_class_for((1 << 30) - 1) == 27

    def test_one_gib_overflows(self):
        # exactly 1 GiB exceeds the largest class: 429mcf's fallback
        assert layout.size_class_for(1 << 30) == 0
        assert layout.size_class_for((1 << 30) + 5) == 0

    def test_base_recovery(self):
        region = 3  # 64-byte objects
        base = layout.region_base(region) + 5 * 64
        for offset in (0, 1, 63):
            assert layout.base_of(base + offset) == base
        assert layout.base_of(0x5000) == layout.NO_BASE  # non-low-fat

    def test_size_recovery(self):
        address = layout.region_base(7) + 999
        assert layout.size_of_pointer(address) == layout.allocation_size(7)
        assert layout.size_of_pointer(0x100) == 0


class TestLayoutProperties:
    @given(st.integers(0, (1 << 30) - 1))
    def test_class_fits_request_plus_pad(self, requested):
        region = layout.size_class_for(requested)
        assert region != 0
        assert layout.allocation_size(region) >= requested + 1

    @given(st.integers(0, (1 << 30) - 1))
    def test_class_is_tight(self, requested):
        region = layout.size_class_for(requested)
        size = layout.allocation_size(region)
        # the next smaller class would not fit (or this is the smallest)
        assert size == 16 or size // 2 < requested + 1

    @given(st.integers(1, 27), st.integers(0, (1 << 32) - 1))
    def test_base_recovery_roundtrip(self, region, offset_in_region):
        size = layout.allocation_size(region)
        region_start = layout.region_base(region)
        address = region_start + offset_in_region
        base = layout.base_of(address)
        # recovered base is size-aligned, within the region, at or
        # before the address, and within one object of it
        assert base % size == 0
        assert base <= address < base + size
        assert layout.region_index(base) == region

    @given(st.integers(1, 27), st.integers(0, 1 << 20))
    def test_pointer_in_object_recovers_its_base(self, region, obj_index):
        size = layout.allocation_size(region)
        # objects must fit inside the region's address span
        objects_in_region = max(layout.REGION_SIZE // size, 1)
        base = layout.region_base(region) + (obj_index % objects_in_region) * size
        for offset in (0, size // 2, size - 1):
            assert layout.base_of(base + offset) == base

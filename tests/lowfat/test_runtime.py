"""Tests for the Low-Fat runtime natives on the VM."""

import pytest

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig
from repro.lowfat import layout

LF = InstrumentationConfig.lowfat()
OPTS = CompileOptions(verify=True)


def run_lf(src, **kw):
    return run_program(compile_program(src, LF, OPTS),
                       max_instructions=2_000_000, **kw)


class TestAllocatorNatives:
    def test_heap_pointers_are_lowfat(self):
        result = run_lf(r"""
        int main() {
            char *a = (char *) malloc(40);
            long addr = (long) a;
            print_i64(addr >> 32);     // region index
            free((void*)a);
            return 0;
        }""")
        assert result.ok
        region = int(result.output[0])
        # 40+1 bytes -> 64-byte class -> region index for size 64
        assert layout.allocation_size(region) == 64

    def test_globals_mirrored_into_regions(self):
        result = run_lf(r"""
        int g_table[10];
        int main() {
            long addr = (long) &g_table[0];
            print_i64(addr >> 32);
            return 0;
        }""")
        region = int(result.output[0])
        assert 1 <= region <= layout.NUM_REGIONS

    def test_stack_allocations_in_regions(self):
        result = run_lf(r"""
        int peek(int *arr) { return arr[0]; }
        int main() {
            int local[4];
            local[0] = 3;
            long addr = (long) &local[0];
            print_i64(addr >> 32);
            print_i64(peek(local));
            return 0;
        }""")
        region = int(result.output[0])
        assert 1 <= region <= layout.NUM_REGIONS
        assert result.output[1] == "3"

    def test_stack_released_on_return(self):
        # A function that allocas repeatedly must reuse its region slot
        # (otherwise the region would leak one slot per call).
        result = run_lf(r"""
        long fill(int seed) {
            int buf[16];
            for (int i = 0; i < 16; i++) buf[i] = seed + i;
            return buf[15];
        }
        int main() {
            long s = 0;
            for (int i = 0; i < 200; i++) s += fill(i);
            print_i64(s);
            return 0;
        }""")
        assert result.ok
        assert result.output == [str(sum(i + 15 for i in range(200)))]

    def test_calloc_realloc(self):
        result = run_lf(r"""
        int main() {
            int *a = (int *) calloc(4, sizeof(int));
            print_i64(a[0] + a[3]);
            a = (int *) realloc((void*)a, sizeof(int) * 64);
            a[63] = 5;
            print_i64(a[63]);
            free((void*)a);
            return 0;
        }""")
        assert result.ok and result.output == ["0", "5"]

    def test_region_exhaustion_goes_wide(self):
        program = compile_program(r"""
        int main() {
            char *a = (char *) malloc(40);
            char *b = (char *) malloc(40);
            a[0] = 1; b[0] = 2;
            print_i64(a[0] + b[0]);
            return 0;
        }""", LF, OPTS)
        # only one 64-byte slot available: the second malloc falls back
        result = run_program(program, max_instructions=1_000_000,
                             lf_region_capacity=64)
        assert result.ok
        assert result.stats.lowfat_fallback_allocs >= 1
        assert result.stats.checks_wide > 0


class TestCheckSemantics:
    def test_one_past_end_pointer_allowed_by_invariant(self):
        result = run_lf(r"""
        long scan(int *p, int *end) {
            long s = 0;
            while (p != end) { s += *p; p++; }
            return s;
        }
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            for (int i = 0; i < 8; i++) a[i] = i;
            print_i64(scan(a, a + 8));   // one-past-end escapes: legal
            free((void*)a);
            return 0;
        }""")
        assert result.ok
        assert result.output == ["28"]

    def test_two_past_end_escape_rejected(self):
        result = run_lf(r"""
        long use(int *p) { return (long) p; }
        int main() {
            int *a = (int *) malloc(sizeof(int) * 120);  // fills a class
            long x = use(a + 200);       // far out of bounds
            print_i64(x & 1);
            free((void*)a);
            return 0;
        }""")
        assert result.violation is not None
        assert result.violation.kind == "invariant"

    def test_null_pointer_access_unchecked_but_faults(self):
        result = run_lf(r"""
        int main() {
            int *p = NULL;
            return *p;
        }""")
        # NULL is not low-fat: the check goes wide, the hardware traps
        assert result.fault is not None

    def test_interior_pointer_base_recovery(self):
        result = run_lf(r"""
        int sum3(char *mid) {
            return mid[-1] + mid[0] + mid[1];
        }
        int main() {
            char *a = (char *) malloc(16);
            for (int i = 0; i < 16; i++) a[i] = (char)i;
            print_i64(sum3(a + 8));
            free((void*)a);
            return 0;
        }""")
        assert result.ok
        assert result.output == ["24"]

"""Tests for the low-fat allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.lowfat import LowFatAllocator, layout
from repro.vm.memory import Memory, StandardAllocator
from repro.vm.stats import RuntimeStats


def _make(region_capacity=None):
    mem = Memory()
    stats = RuntimeStats()
    alloc = LowFatAllocator(mem, StandardAllocator(mem), stats, region_capacity)
    return mem, stats, alloc


class TestHeap:
    def test_allocation_lands_in_matching_region(self):
        _, _, lf = _make()
        a = lf.malloc(100)  # 100+1 -> 128-byte class
        assert layout.is_lowfat(a.base)
        assert layout.size_of_pointer(a.base) == 128
        assert a.size == 128               # padded allocation
        assert a.requested_size == 100

    def test_base_alignment(self):
        _, _, lf = _make()
        for requested in (1, 16, 100, 5000):
            a = lf.malloc(requested)
            size = layout.size_of_pointer(a.base)
            assert a.base % size == 0      # base recoverable by masking

    def test_base_recovery_from_interior_pointer(self):
        _, _, lf = _make()
        a = lf.malloc(40)                  # 64-byte class
        interior = a.base + 33
        assert layout.base_of(interior) == a.base

    def test_oversized_falls_back(self):
        _, stats, lf = _make()
        a = lf.malloc(1 << 30)
        assert not layout.is_lowfat(a.base)
        assert stats.lowfat_fallback_allocs == 1

    def test_region_exhaustion_falls_back(self):
        _, stats, lf = _make(region_capacity=64)
        first = lf.malloc(40)              # fills the 64B region
        assert layout.is_lowfat(first.base)
        second = lf.malloc(40)             # region full -> standard heap
        assert not layout.is_lowfat(second.base)
        assert stats.lowfat_fallback_allocs == 1

    def test_padding_is_accessible(self):
        """OOB into the class padding silently succeeds -- the behaviour
        that hides small overflows from Low-Fat (paper Section 4)."""
        mem, _, lf = _make()
        a = lf.malloc(40)                  # padded to 64
        mem.write_int(a.base + 45, 7, 4)   # beyond request, inside pad
        assert mem.read_int(a.base + 45, 4) == 7
        with pytest.raises(MemoryFault):
            mem.read_int(a.base + 64, 4)   # beyond the class slot

    def test_free_and_uaf(self):
        mem, _, lf = _make()
        a = lf.malloc(24)
        lf.free(a.base)
        with pytest.raises(MemoryFault):
            mem.read_int(a.base, 4)

    def test_free_of_fallback_pointer_routed_to_standard(self):
        mem, _, lf = _make()
        a = lf.malloc(1 << 30)
        lf.free(a.base)                    # must not crash
        with pytest.raises(MemoryFault):
            mem.read_int(a.base, 4)

    def test_free_interior_pointer_rejected(self):
        _, _, lf = _make()
        a = lf.malloc(24)
        with pytest.raises(MemoryFault):
            lf.free(a.base + 8)


class TestStackDiscipline:
    def test_stack_slots_reused(self):
        mem, _, lf = _make()
        a = lf.stack_alloc(24)
        base = a.base
        lf.stack_release(a)
        b = lf.stack_alloc(24)
        assert b.base == base              # LIFO reuse

    def test_released_slot_faults(self):
        mem, _, lf = _make()
        a = lf.stack_alloc(24)
        lf.stack_release(a)
        with pytest.raises(MemoryFault):
            mem.read_int(a.base, 4)

    def test_different_classes_different_freelists(self):
        _, _, lf = _make()
        small = lf.stack_alloc(8)
        big = lf.stack_alloc(100)
        lf.stack_release(small)
        lf.stack_release(big)
        again_big = lf.stack_alloc(100)
        assert again_big.base == big.base


class TestGlobals:
    def test_global_placement(self):
        _, _, lf = _make()
        a = lf.place_global(48, "g")
        assert layout.is_lowfat(a.base)
        assert layout.size_of_pointer(a.base) == 64

    def test_oversized_global_returns_none(self):
        _, _, lf = _make()
        assert lf.place_global(1 << 31, "huge") is None


class TestAllocatorProperties:
    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=30))
    def test_allocations_disjoint_and_recoverable(self, sizes):
        mem, _, lf = _make()
        allocs = [lf.malloc(s) for s in sizes]
        seen = set()
        for a, s in zip(allocs, sizes):
            assert a.base not in seen
            seen.add(a.base)
            assert layout.base_of(a.base + s - 1) == a.base
            assert layout.size_of_pointer(a.base) >= s + 1

"""Tests for the IRBuilder insertion-point machinery."""

import pytest

from repro.ir import (
    FunctionType,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    ptr,
    verify_function,
)


def _setup():
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(I64, [I64]), ["x"])
    entry = fn.add_block("entry")
    return mod, fn, IRBuilder(entry)


class TestInsertionPoints:
    def test_appends_in_order(self):
        _, fn, b = _setup()
        a = b.add(fn.args[0], b.const_i64(1))
        c = b.mul(a, a)
        b.ret(c)
        opcodes = [i.opcode for i in fn.entry.instructions]
        assert opcodes == ["add", "mul", "ret"]

    def test_position_before(self):
        _, fn, b = _setup()
        a = b.add(fn.args[0], b.const_i64(1))
        b.ret(a)
        b.position_before(a)
        s = b.sub(fn.args[0], b.const_i64(2))
        assert fn.entry.instructions[0] is s

    def test_position_after(self):
        _, fn, b = _setup()
        a = b.add(fn.args[0], b.const_i64(1))
        r = b.ret(a)
        b.position_after(a)
        m = b.mul(a, a)
        assert fn.entry.instructions[1] is m
        assert fn.entry.instructions[2] is r

    def test_position_at_start_skips_phis(self):
        _, fn, b = _setup()
        loop = fn.add_block("loop")
        b.br(loop)
        b.position_at_end(loop)
        phi = b.phi(I64)
        phi.add_incoming(b.const_i64(0), fn.entry)
        b.position_at_start(loop)
        inst = b.add(phi, b.const_i64(1))
        assert loop.instructions[0] is phi
        assert loop.instructions[1] is inst

    def test_phi_inserted_at_block_start(self):
        _, fn, b = _setup()
        loop = fn.add_block("loop")
        b.br(loop)
        b.position_at_end(loop)
        first = b.add(fn.args[0], b.const_i64(1))
        phi = b.phi(I64)
        assert loop.instructions[0] is phi
        assert loop.instructions[1] is first


class TestHelpers:
    def test_bitcast_same_type_is_identity(self):
        _, fn, b = _setup()
        # ptr-to-same-ptr bitcast returns the value unchanged
        mod2 = Module("u")
        g = mod2.add_function("g", FunctionType(I64, [ptr(I32)]), ["p"])
        gb = IRBuilder(g.add_block("entry"))
        same = gb.bitcast(g.args[0], ptr(I32))
        assert same is g.args[0]

    def test_gep_index_constants(self):
        mod = Module("t")
        from repro.ir import ArrayType

        fn = mod.add_function("g", FunctionType(I32, [ptr(ArrayType(I32, 4))]))
        b = IRBuilder(fn.add_block("entry"))
        gep = b.gep_index(fn.args[0], 0, 2)
        assert gep.type == ptr(I32)

    def test_full_function_verifies(self):
        _, fn, b = _setup()
        cond_true = fn.add_block("t")
        cond_false = fn.add_block("f")
        cond = b.icmp("sgt", fn.args[0], b.const_i64(0))
        b.cond_br(cond, cond_true, cond_false)
        b.position_at_end(cond_true)
        b.ret(fn.args[0])
        b.position_at_end(cond_false)
        b.ret(b.const_i64(0))
        verify_function(fn)


class TestBlockNameUniquification:
    def test_duplicate_names_get_suffixes(self):
        # Check-site identifiers are "fn:block:index", so two blocks in
        # one function must never share a name (the frontend emits one
        # "for.body" per loop).
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, []))
        first = fn.add_block("for.body")
        second = fn.add_block("for.body")
        third = fn.add_block("for.body")
        assert first.name == "for.body"
        assert second.name == "for.body.1"
        assert third.name == "for.body.2"

    def test_explicit_suffix_collision_resolved(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, []))
        fn.add_block("bb")
        taken = fn.add_block("bb.1")
        renamed = fn.add_block("bb")
        assert taken.name == "bb.1"
        assert renamed.name == "bb.2"

    def test_frontend_functions_have_unique_block_names(self):
        from repro.frontend import compile_source

        mod = compile_source(r"""
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + a[i];
            for (int i = 0; i < n; i++) s = s * a[i];
            while (s > 100) s = s / 2;
            while (s > 10) s = s - 1;
            return s;
        }""")
        fn = mod.get_function("f")
        names = [b.name for b in fn.blocks]
        assert len(names) == len(set(names))

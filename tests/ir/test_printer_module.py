"""Tests for module containers, linking, and the textual printer."""

import pytest

from repro.ir import (
    ArrayType,
    ConstantInt,
    ConstantZero,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    format_function,
    format_module,
    ptr,
)


class TestModule:
    def test_duplicate_function_rejected(self):
        mod = Module("t")
        mod.add_function("f", FunctionType(I32, []))
        with pytest.raises(ValueError):
            mod.add_function("f", FunctionType(I32, []))

    def test_duplicate_global_rejected(self):
        mod = Module("t")
        mod.add_global("g", I32)
        with pytest.raises(ValueError):
            mod.add_global("g", I32)

    def test_get_or_declare_idempotent(self):
        mod = Module("t")
        a = mod.get_or_declare_function("f", FunctionType(I32, []), {"readonly"})
        b = mod.get_or_declare_function("f", FunctionType(I32, []), {"noreturn"})
        assert a is b
        assert {"readonly", "noreturn"} <= a.attributes

    def test_struct_identity(self):
        mod = Module("t")
        s1 = mod.get_or_create_struct("node")
        s2 = mod.get_or_create_struct("node")
        assert s1 is s2


class TestLinking:
    def _unit_with_definition(self):
        mod = Module("def")
        gv = mod.add_global("shared", ArrayType(I32, 10),
                            ConstantZero(ArrayType(I32, 10)))
        fn = mod.add_function("get", FunctionType(ptr(I32), []))
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.gep_index(gv, 0, 0))
        return mod

    def _unit_with_declaration(self):
        mod = Module("decl")
        gv = mod.add_global("shared", ArrayType(I32, 0), None, "external",
                            declared_without_size=True)
        fn = mod.add_function("use", FunctionType(I32, []))
        b = IRBuilder(fn.add_block("entry"))
        element = b.gep_index(gv, 0, 3)
        b.ret(b.load(element))
        return mod

    def test_declaration_resolves_to_definition(self):
        linked = Module.link(
            [self._unit_with_declaration(), self._unit_with_definition()]
        )
        gv = linked.get_global("shared")
        assert gv is not None
        assert not gv.is_declaration
        # Uses in the declaring unit now reference the definition.
        use = linked.get_function("use")
        gep = use.entry.instructions[0]
        assert gep.pointer is gv

    def test_function_declaration_resolution(self):
        a = Module("a")
        decl = a.add_function("callee", FunctionType(I32, []))
        caller = a.add_function("caller", FunctionType(I32, []))
        b = IRBuilder(caller.add_block("entry"))
        b.ret(b.call(decl, []))
        bmod = Module("b")
        impl = bmod.add_function("callee", FunctionType(I32, []))
        bb = IRBuilder(impl.add_block("entry"))
        bb.ret(bb.const_i32(42))
        linked = Module.link([a, bmod])
        call = linked.get_function("caller").entry.instructions[0]
        assert call.callee is linked.get_function("callee")
        assert not linked.get_function("callee").is_declaration

    def test_duplicate_definitions_rejected(self):
        def make():
            mod = Module("m")
            fn = mod.add_function("f", FunctionType(I32, []))
            b = IRBuilder(fn.add_block("entry"))
            b.ret(b.const_i32(0))
            return mod

        with pytest.raises(ValueError, match="duplicate"):
            Module.link([make(), make()])


class TestPrinter:
    def _sample(self):
        mod = Module("sample")
        fn = mod.add_function("f", FunctionType(I64, [I64]), ["x"])
        b = IRBuilder(fn.add_block("entry"))
        body = fn.add_block("body")
        done = fn.add_block("done")
        cond = b.icmp("sgt", fn.args[0], b.const_i64(0))
        b.cond_br(cond, body, done)
        b.position_at_end(body)
        v = b.mul(fn.args[0], b.const_i64(2))
        b.br(done)
        b.position_at_end(done)
        phi = b.phi(I64)
        phi.add_incoming(b.const_i64(0), fn.entry)
        phi.add_incoming(v, body)
        b.ret(phi)
        return mod

    def test_module_prints_all_parts(self):
        text = format_module(self._sample())
        assert "define i64 @f(i64 %x)" in text
        assert "phi i64" in text
        assert "icmp sgt" in text
        assert "ret i64" in text

    def test_unique_names_assigned(self):
        mod = self._sample()
        fn = mod.get_function("f")
        for inst in fn.instructions():
            inst.name = "dup"
        text = format_function(fn)
        # every named instruction gets a unique suffix
        assert "%dup =" in text
        assert "%dup.1" in text

    def test_globals_printed(self):
        mod = Module("g")
        mod.add_global("arr", ArrayType(I32, 4), ConstantZero(ArrayType(I32, 4)))
        mod.add_global("ext", ArrayType(I32, 0), None, "external",
                       declared_without_size=True)
        text = format_module(mod)
        assert "@arr = internal global [4 x i32] zeroinitializer" in text
        assert "@ext = external nosize global [0 x i32]" in text

"""Tests for the IR type system and data layout."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    ArrayType,
    F32,
    F64,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    StructType,
    VOID,
    align_of,
    ptr,
    size_of,
    struct_field_offset,
)


class TestTypeEquality:
    def test_int_types_compare_by_width(self):
        assert IntType(32) == IntType(32)
        assert IntType(32) != IntType(64)

    def test_int_types_hash_by_width(self):
        assert hash(IntType(8)) == hash(IntType(8))
        assert len({IntType(8), IntType(8), IntType(16)}) == 2

    def test_pointer_types_compare_structurally(self):
        assert ptr(I32) == ptr(I32)
        assert ptr(I32) != ptr(I64)
        assert ptr(ptr(I8)) == ptr(ptr(I8))

    def test_array_types(self):
        assert ArrayType(I32, 4) == ArrayType(I32, 4)
        assert ArrayType(I32, 4) != ArrayType(I32, 5)
        assert ArrayType(I32, 4) != ArrayType(I64, 4)

    def test_named_structs_compare_by_name(self):
        a = StructType("node", [I32])
        b = StructType("node", [I64, I64])  # same name wins
        assert a == b

    def test_literal_structs_compare_structurally(self):
        assert StructType(None, [I32, I64]) == StructType(None, [I32, I64])
        assert StructType(None, [I32]) != StructType(None, [I64])

    def test_function_types(self):
        a = FunctionType(I32, [I64, ptr(I8)])
        b = FunctionType(I32, [I64, ptr(I8)])
        assert a == b
        assert a != FunctionType(I32, [I64])
        assert a != FunctionType(I32, [I64, ptr(I8)], vararg=True)

    def test_void_pointer_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)


class TestClassification:
    def test_predicates(self):
        assert I32.is_int() and not I32.is_float()
        assert F64.is_float() and not F64.is_pointer()
        assert ptr(I8).is_pointer()
        assert ArrayType(I8, 3).is_aggregate()
        assert StructType("s", [I8]).is_aggregate()
        assert VOID.is_void() and not VOID.is_first_class()
        assert I1.is_first_class()

    def test_int_mask_and_range(self):
        assert I8.mask == 0xFF
        assert I8.min_signed == -128
        assert I8.max_signed == 127


class TestLayout:
    def test_scalar_sizes(self):
        assert size_of(I1) == 1
        assert size_of(I8) == 1
        assert size_of(I16) == 2
        assert size_of(I32) == 4
        assert size_of(I64) == 8
        assert size_of(F32) == 4
        assert size_of(F64) == 8
        assert size_of(ptr(I8)) == 8

    def test_array_size(self):
        assert size_of(ArrayType(I32, 10)) == 40
        assert size_of(ArrayType(ArrayType(I8, 3), 4)) == 12
        assert size_of(ArrayType(I64, 0)) == 0

    def test_struct_padding(self):
        # {i8, i64} pads the first member to 8-byte alignment.
        s = StructType("padded", [I8, I64])
        assert size_of(s) == 16
        assert struct_field_offset(s, 0) == 0
        assert struct_field_offset(s, 1) == 8

    def test_struct_tail_padding(self):
        # {i64, i8} pads the tail so arrays stay aligned.
        s = StructType("tail", [I64, I8])
        assert size_of(s) == 16

    def test_struct_mixed_offsets(self):
        s = StructType("mix", [I32, I8, I16, I64])
        assert struct_field_offset(s, 0) == 0
        assert struct_field_offset(s, 1) == 4
        assert struct_field_offset(s, 2) == 6
        assert struct_field_offset(s, 3) == 8
        assert size_of(s) == 16

    def test_empty_struct(self):
        assert size_of(StructType("empty", [])) == 0
        assert align_of(StructType("empty", [])) == 1

    def test_alignments(self):
        assert align_of(I8) == 1
        assert align_of(I16) == 2
        assert align_of(I32) == 4
        assert align_of(I64) == 8
        assert align_of(ptr(I64)) == 8
        assert align_of(ArrayType(I16, 7)) == 2

    def test_field_offset_out_of_range(self):
        with pytest.raises(IndexError):
            struct_field_offset(StructType("s", [I32]), 1)


_scalar_types = st.sampled_from([I1, I8, I16, I32, I64, F32, F64, ptr(I8), ptr(I64)])


class TestLayoutProperties:
    @given(st.lists(_scalar_types, min_size=1, max_size=8))
    def test_struct_fields_do_not_overlap(self, fields):
        s = StructType(None, fields)
        offsets = [struct_field_offset(s, i) for i in range(len(fields))]
        for i in range(len(fields) - 1):
            assert offsets[i] + size_of(fields[i]) <= offsets[i + 1]

    @given(st.lists(_scalar_types, min_size=1, max_size=8))
    def test_struct_size_covers_all_fields(self, fields):
        s = StructType(None, fields)
        last = struct_field_offset(s, len(fields) - 1) + size_of(fields[-1])
        assert size_of(s) >= last

    @given(st.lists(_scalar_types, min_size=1, max_size=8))
    def test_fields_are_aligned(self, fields):
        s = StructType(None, fields)
        for i, field in enumerate(fields):
            assert struct_field_offset(s, i) % align_of(field) == 0

    @given(_scalar_types, st.integers(min_value=0, max_value=100))
    def test_array_size_is_linear(self, elem, count):
        assert size_of(ArrayType(elem, count)) == count * size_of(elem)

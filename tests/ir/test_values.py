"""Tests for values, constants, and use-def chains."""

import pytest

from repro.ir import (
    ArrayType,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantStruct,
    F64,
    FunctionType,
    I16,
    I32,
    I64,
    I8,
    IRBuilder,
    Module,
    StructType,
    UndefValue,
    ptr,
)


def _make_function(ret=I32, params=()):
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(ret, list(params)))
    block = fn.add_block("entry")
    return mod, fn, IRBuilder(block)


class TestConstants:
    def test_int_canonical_unsigned(self):
        c = ConstantInt(I8, -1)
        assert c.value == 255
        assert c.signed_value == -1

    def test_int_wraps_to_width(self):
        assert ConstantInt(I8, 256).value == 0
        assert ConstantInt(I16, 0x1FFFF).value == 0xFFFF

    def test_is_zero(self):
        assert ConstantInt(I32, 0).is_zero()
        assert not ConstantInt(I32, 1).is_zero()

    def test_float(self):
        assert ConstantFloat(F64, 1.5).value == 1.5

    def test_null_typed(self):
        null = ConstantNull(ptr(I32))
        assert null.type == ptr(I32)

    def test_string_nul_terminated(self):
        s = ConstantString(b"hi")
        assert s.data == b"hi\x00"
        assert s.type == ArrayType(I8, 3)

    def test_array_length_checked(self):
        with pytest.raises(ValueError):
            ConstantArray(ArrayType(I32, 2), [ConstantInt(I32, 1)])

    def test_struct_field_count_checked(self):
        sty = StructType("s", [I32, I64])
        with pytest.raises(ValueError):
            ConstantStruct(sty, [ConstantInt(I32, 1)])

    def test_undef(self):
        u = UndefValue(I64)
        assert u.type == I64


class TestUseDef:
    def test_uses_tracked(self):
        _, fn, b = _make_function(I32, [I32])
        arg = fn.args[0]
        add = b.add(arg, b.const_i32(1))
        assert arg.num_uses == 1
        assert add in list(arg.users())

    def test_same_value_multiple_slots(self):
        _, fn, b = _make_function(I32, [I32])
        arg = fn.args[0]
        add = b.add(arg, arg)
        assert arg.num_uses == 2
        assert len(list(arg.users())) == 1  # deduplicated

    def test_replace_all_uses_with(self):
        _, fn, b = _make_function(I32, [I32])
        arg = fn.args[0]
        one = b.const_i32(1)
        add = b.add(arg, one)
        mul = b.mul(add, add)
        replacement = b.const_i32(7)
        add.replace_all_uses_with(replacement)
        assert add.num_uses == 0
        assert mul.operand(0) is replacement
        assert mul.operand(1) is replacement

    def test_rauw_self_is_noop(self):
        _, fn, b = _make_function(I32, [I32])
        add = b.add(fn.args[0], b.const_i32(1))
        b.mul(add, add)
        add.replace_all_uses_with(add)
        assert add.num_uses == 2

    def test_erase_drops_operand_uses(self):
        _, fn, b = _make_function(I32, [I32])
        arg = fn.args[0]
        add = b.add(arg, b.const_i32(1))
        assert arg.num_uses == 1
        add.erase_from_parent()
        assert arg.num_uses == 0
        assert add.parent is None

    def test_set_operand_moves_use(self):
        _, fn, b = _make_function(I32, [I32])
        arg = fn.args[0]
        one = b.const_i32(1)
        two = b.const_i32(2)
        add = b.add(arg, one)
        add.set_operand(1, two)
        assert one.num_uses == 0
        assert two.num_uses == 1
        assert add.operand(1) is two

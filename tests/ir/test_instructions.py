"""Tests for instruction construction and classification."""

import pytest

from repro.ir import (
    Alloca,
    ArrayType,
    BinOp,
    Call,
    Cast,
    CondBr,
    ConstantInt,
    FunctionType,
    GEP,
    I1,
    I32,
    I64,
    I8,
    ICmp,
    IRBuilder,
    Load,
    Module,
    Phi,
    Ret,
    Select,
    Store,
    StructType,
    VOID,
    ptr,
)


def _fn(mod=None, name="f", ret=I32, params=()):
    mod = mod or Module("t")
    fn = mod.add_function(name, FunctionType(ret, list(params)))
    fn.add_block("entry")
    return mod, fn


class TestConstruction:
    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(ConstantInt(I64, 0))

    def test_load_result_type_is_pointee(self):
        mod, fn = _fn(params=[ptr(I32)])
        load = Load(fn.args[0])
        assert load.type == I32

    def test_store_type_mismatch_rejected(self):
        mod, fn = _fn(params=[ptr(I32)])
        with pytest.raises(TypeError):
            Store(ConstantInt(I64, 1), fn.args[0])

    def test_binop_types_must_match(self):
        with pytest.raises(TypeError):
            BinOp("add", ConstantInt(I32, 1), ConstantInt(I64, 1))

    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            BinOp("frobnicate", ConstantInt(I32, 1), ConstantInt(I32, 1))

    def test_icmp_result_is_i1(self):
        cmp = ICmp("slt", ConstantInt(I32, 1), ConstantInt(I32, 2))
        assert cmp.type == I1

    def test_select_requires_i1(self):
        with pytest.raises(TypeError):
            Select(ConstantInt(I32, 1), ConstantInt(I32, 1), ConstantInt(I32, 2))

    def test_condbr_requires_i1(self):
        mod, fn = _fn()
        a, b = fn.add_block("a"), fn.add_block("b")
        with pytest.raises(TypeError):
            CondBr(ConstantInt(I32, 1), a, b)

    def test_phi_incoming_type_checked(self):
        mod, fn = _fn()
        phi = Phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(ConstantInt(I64, 1), fn.entry)


class TestGEP:
    def test_first_index_keeps_type(self):
        mod, fn = _fn(params=[ptr(I32)])
        gep = GEP(fn.args[0], [ConstantInt(I64, 3)])
        assert gep.type == ptr(I32)

    def test_array_indexing(self):
        mod, fn = _fn(params=[ptr(ArrayType(I32, 10))])
        gep = GEP(fn.args[0], [ConstantInt(I64, 0), ConstantInt(I64, 2)])
        assert gep.type == ptr(I32)

    def test_struct_indexing(self):
        sty = StructType("pair", [I32, I64])
        mod, fn = _fn(params=[ptr(sty)])
        gep = GEP(fn.args[0], [ConstantInt(I64, 0), ConstantInt(I32, 1)])
        assert gep.type == ptr(I64)

    def test_struct_index_must_be_constant(self):
        sty = StructType("pair2", [I32, I64])
        mod, fn = _fn(params=[ptr(sty), I64])
        with pytest.raises(TypeError):
            GEP(fn.args[0], [ConstantInt(I64, 0), fn.args[1]])

    def test_scalar_indexing_rejected(self):
        mod, fn = _fn(params=[ptr(I32)])
        with pytest.raises(TypeError):
            GEP(fn.args[0], [ConstantInt(I64, 0), ConstantInt(I64, 0)])


class TestClassification:
    def test_terminators(self):
        mod, fn = _fn()
        target = fn.add_block("x")
        from repro.ir import Br, Unreachable

        assert Ret(ConstantInt(I32, 0)).is_terminator()
        assert Br(target).is_terminator()
        assert Unreachable().is_terminator()
        assert not Phi(I32).is_terminator()
        assert not ICmp("eq", ConstantInt(I32, 0), ConstantInt(I32, 0)).is_terminator()

    def test_store_has_side_effects(self):
        mod, fn = _fn(params=[ptr(I32)])
        store = Store(ConstantInt(I32, 1), fn.args[0])
        assert store.has_side_effects()
        assert store.may_write_memory()
        assert not store.may_read_memory()

    def test_call_attribute_driven_effects(self):
        mod = Module("t")
        pure = mod.add_function("pure", FunctionType(I32, []))
        pure.attributes.add("readnone")
        ro = mod.add_function("ro", FunctionType(I32, []))
        ro.attributes.add("readonly")
        unknown = mod.add_function("unk", FunctionType(I32, []))
        check = mod.add_function("chk", FunctionType(VOID, []))
        check.attributes.update({"mi_check", "may_abort"})

        assert not Call(pure, []).has_side_effects()
        assert not Call(ro, []).has_side_effects()
        assert not Call(ro, []).may_write_memory()
        assert Call(ro, []).may_read_memory()
        assert Call(unknown, []).has_side_effects()
        assert Call(unknown, []).may_write_memory()
        # checks may abort: never removable, treated as barriers
        assert Call(check, []).has_side_effects()
        assert not Call(check, []).is_pure_call()

    def test_phi_incoming_management(self):
        mod, fn = _fn()
        a, b = fn.add_block("a"), fn.add_block("b")
        phi = Phi(I32)
        phi.add_incoming(ConstantInt(I32, 1), a)
        phi.add_incoming(ConstantInt(I32, 2), b)
        assert phi.incoming_value_for(a).value == 1
        phi.remove_incoming(a)
        assert phi.num_operands == 1
        with pytest.raises(KeyError):
            phi.incoming_value_for(a)

    def test_callee_function_direct_and_indirect(self):
        mod = Module("t")
        callee = mod.add_function("callee", FunctionType(I32, []))
        caller = mod.add_function("caller", FunctionType(I32, [ptr(FunctionType(I32, []))]))
        direct = Call(callee, [])
        assert direct.callee_function is callee
        indirect = Call(caller.args[0], [])
        assert indirect.callee_function is None

"""Tests for the IR verifier: each structural invariant is enforced."""

import pytest

from repro.ir import (
    Br,
    ConstantInt,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    Phi,
    Ret,
    Store,
    VerificationError,
    verify_module,
    ptr,
)


def _fn(ret=I32, params=()):
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(ret, list(params)))
    return mod, fn


class TestStructure:
    def test_valid_module_passes(self):
        mod, fn = _fn()
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const_i32(0))
        verify_module(mod)

    def test_missing_terminator(self):
        mod, fn = _fn()
        b = IRBuilder(fn.add_block("entry"))
        b.add(b.const_i32(1), b.const_i32(2))
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(mod)

    def test_empty_block(self):
        mod, fn = _fn()
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const_i32(0))
        fn.add_block("empty")
        with pytest.raises(VerificationError, match="empty"):
            verify_module(mod)

    def test_function_without_blocks_ok_as_declaration(self):
        mod, fn = _fn()
        # no blocks: declaration, skipped
        verify_module(mod)

    def test_return_type_mismatch(self):
        mod, fn = _fn(ret=I32)
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const_i64(0))
        with pytest.raises(VerificationError, match="return type"):
            verify_module(mod)

    def test_ret_void_in_value_function(self):
        mod, fn = _fn(ret=I32)
        b = IRBuilder(fn.add_block("entry"))
        b.ret()
        with pytest.raises(VerificationError, match="ret void"):
            verify_module(mod)


class TestPhis:
    def test_phi_missing_incoming(self):
        mod, fn = _fn()
        entry = fn.add_block("entry")
        other = fn.add_block("other")
        merge = fn.add_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("eq", b.const_i32(0), b.const_i32(0))
        b.cond_br(cond, other, merge)
        b.position_at_end(other)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32)
        phi.add_incoming(b.const_i32(1), entry)  # missing edge from other
        b.ret(phi)
        with pytest.raises(VerificationError, match="missing incoming"):
            verify_module(mod)

    def test_phi_stale_incoming(self):
        mod, fn = _fn()
        entry = fn.add_block("entry")
        stale = fn.add_block("stale")
        merge = fn.add_block("merge")
        b = IRBuilder(entry)
        b.br(merge)
        b.position_at_end(stale)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32)
        phi.add_incoming(b.const_i32(1), entry)
        phi.add_incoming(b.const_i32(2), stale)
        b.ret(phi)
        # make `stale` unreachable-but-present is fine; remove its edge
        stale.instructions[0].erase_from_parent()
        from repro.ir import Unreachable

        stale.append(Unreachable())
        with pytest.raises(VerificationError, match="stale incoming"):
            verify_module(mod)


class TestDominance:
    def test_use_before_def_across_blocks(self):
        mod, fn = _fn()
        entry = fn.add_block("entry")
        late = fn.add_block("late")
        b = IRBuilder(entry)
        cond = b.icmp("eq", b.const_i32(0), b.const_i32(0))
        exit_block = fn.add_block("exit")
        b.cond_br(cond, late, exit_block)
        b.position_at_end(late)
        value = b.add(b.const_i32(1), b.const_i32(2))
        b.br(exit_block)
        b.position_at_end(exit_block)
        b.ret(value)  # not dominated: entry->exit path skips `late`
        with pytest.raises(VerificationError, match="not dominated"):
            verify_module(mod)

    def test_use_of_erased_instruction(self):
        mod, fn = _fn()
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(b.const_i32(1), b.const_i32(2))
        b.ret(v)
        fn.entry.remove_instruction(v)  # bypass erase_from_parent
        with pytest.raises(VerificationError, match="erased"):
            verify_module(mod)

    def test_call_signature_mismatch(self):
        mod, fn = _fn()
        callee = mod.add_function("callee", FunctionType(I32, [I64]))
        b = IRBuilder(fn.add_block("entry"))
        from repro.ir import Call

        call = Call(callee, [ConstantInt(I32, 1)])
        b.insert(call)
        b.ret(b.const_i32(0))
        with pytest.raises(VerificationError, match="argument type"):
            verify_module(mod)

"""Tests for the IR text parser (printer round-trip)."""

import pytest

from repro.errors import CompileError
from repro.frontend import compile_source
from repro.ir import format_module, parse_module, verify_module
from repro.vm import VirtualMachine


def roundtrip(mod):
    text = format_module(mod)
    reparsed = parse_module(text)
    verify_module(reparsed)
    return reparsed, text


def run(mod, max_instructions=1_000_000):
    vm = VirtualMachine(mod, max_instructions=max_instructions)
    return vm.run(), vm.output


PROGRAMS = {
    "scalars": r"""
        int main() {
            long a = 6; long b = 7;
            print_i64(a * b - 2);
            return 0;
        }""",
    "control-flow": r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 10; i++)
                if (i % 2 == 0) s += i; else s -= 1;
            print_i64(s);
            return 0;
        }""",
    "structs": r"""
        struct pair { int a; long b; };
        int main() {
            struct pair p;
            p.a = 3; p.b = 400;
            print_i64(p.a + p.b);
            return 0;
        }""",
    "pointers-and-heap": r"""
        int main() {
            int *buf = (int *) malloc(sizeof(int) * 4);
            for (int i = 0; i < 4; i++) buf[i] = i * i;
            print_i64(buf[3]);
            free((void*)buf);
            return 0;
        }""",
    "floats": r"""
        int main() {
            double x = 2.0;
            print_f64(sqrt(x) + 0.5);
            return 0;
        }""",
    "strings": r"""
        int main() {
            print_str("round\ntrip");
            return 0;
        }""",
    "calls-and-recursion": r"""
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { print_i64(fib(12)); return 0; }""",
    "globals": r"""
        int counter = 5;
        int table[4];
        int main() {
            table[counter % 4] = counter;
            print_i64(table[1]);
            return 0;
        }""",
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_roundtrip_preserves_behaviour(name):
    mod = compile_source(PROGRAMS[name])
    expected = run(compile_source(PROGRAMS[name]))
    reparsed, _ = roundtrip(mod)
    assert run(reparsed) == expected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_print_parse_print_fixpoint(name):
    mod = compile_source(PROGRAMS[name])
    reparsed, text1 = roundtrip(mod)
    text2 = format_module(reparsed)
    reparsed2 = parse_module(text2)
    assert format_module(reparsed2) == text2


def test_roundtrip_after_optimization():
    from repro.opt import optimize

    src = PROGRAMS["control-flow"]
    mod = compile_source(src)
    optimize(mod, 3)
    expected = run(mod)
    reparsed, _ = roundtrip(mod)
    assert run(reparsed) == expected


def test_phi_forward_references():
    text = """
define i64 @f(i64 %n) {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%next, %loop]
  %next = add i64 %i, 1
  %done = icmp sge i64 %next, %n
  br i1 %done, %exit, %loop
exit:
  ret i64 %i
}
"""
    mod = parse_module(text)
    verify_module(mod)
    vm = VirtualMachine(mod, install_default_libc=False)
    vm.load_globals()
    assert vm.call_function(mod.get_function("f"), [5]) == 4


def test_native_declarations_preserved():
    mod = compile_source('int main() { print_i64(strlen("abc")); return 0; }')
    reparsed, _ = roundtrip(mod)
    strlen_fn = reparsed.get_function("strlen")
    assert strlen_fn.native
    assert "readonly" in strlen_fn.attributes
    assert run(reparsed) == (0, ["3"])


def test_nosize_global_flag_preserved():
    from repro.ir import Module, ArrayType, I32

    mod = Module("t")
    mod.add_global("ext", ArrayType(I32, 0), None, "external",
                   declared_without_size=True)
    text = format_module(mod)
    reparsed = parse_module(text)
    gv = reparsed.get_global("ext")
    assert gv.declared_without_size
    assert gv.is_declaration


def test_parse_errors():
    with pytest.raises(CompileError, match="unknown IR opcode"):
        parse_module("define i32 @f() {\nentry:\n  frobnicate\n}\n")
    with pytest.raises(CompileError, match="undefined global"):
        parse_module("define i32 @f() {\nentry:\n  %r = call i32 @nope()\n  ret i32 %r\n}\n")
    with pytest.raises(CompileError, match="undefined block"):
        parse_module("define i32 @f() {\nentry:\n  br %nowhere\n}\n")
    with pytest.raises(CompileError, match="cannot tokenize"):
        parse_module("define i32 @f() {\nentry:\n  ret i32 `\n}\n")

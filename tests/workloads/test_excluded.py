"""The excluded benchmarks (Section 5.1.1) fail for exactly the
documented reasons."""

import pytest

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig
from repro.workloads.excluded import EXCLUDED, excluded_by_name

CONFIGS = {
    "softbound": InstrumentationConfig.softbound(),
    "lowfat": InstrumentationConfig.lowfat(),
}
NAMES = sorted(b.name for b in EXCLUDED)


def outcome(bench, approach):
    program = compile_program(bench.sources, CONFIGS[approach],
                              CompileOptions(verify=True))
    result = run_program(program, max_instructions=2_000_000)
    if result.violation is not None:
        return result.violation.kind
    if result.fault is not None:
        return "fault"
    return "ok"


def test_five_exclusions_modelled():
    assert len(EXCLUDED) == 5
    assert set(NAMES) == {"253perlbmk", "254gap", "176gcc", "175vpr",
                          "255vortex"}


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("approach", ["softbound", "lowfat"])
def test_exclusion_reason_reproduces(name, approach):
    bench = excluded_by_name()[name]
    expected = bench.expected[approach]
    got = outcome(bench, approach)
    assert got == expected, (
        f"{name} under {approach}: expected {expected!r} "
        f"({bench.reason}), got {got!r}"
    )


def test_pseudo_base_one_is_lf_specific():
    """254gap: SoftBound reports nothing, Low-Fat rejects -- the
    asymmetry that forces exclusion rather than patching."""
    gap = excluded_by_name()["254gap"]
    assert outcome(gap, "softbound") == "ok"
    assert outcome(gap, "lowfat") == "invariant"


def test_excluded_benchmarks_run_uninstrumented():
    """The paper could still *run* these programs (the UB is silent
    without a sanitizer); only instrumentation rejects them."""
    for bench in EXCLUDED:
        if bench.name == "176gcc":
            continue   # NULL+offset traps even without a sanitizer
        program = compile_program(bench.sources,
                                  options=CompileOptions(verify=True))
        result = run_program(program, max_instructions=2_000_000)
        assert result.violation is None

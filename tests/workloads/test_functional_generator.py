"""Unit tests for the functional-corpus generator itself (the corpus
execution lives in tests/integration/test_functional_corpus.py)."""

import pytest

from repro.frontend import compile_source
from repro.ir import verify_module
from repro.lowfat import layout
from repro.workloads.functional import (
    ELEMENT_COUNT,
    generate_case,
    generate_corpus,
    _lowfat_expectation,
)


class TestGenerator:
    def test_all_sources_compile(self):
        for case in generate_corpus():
            verify_module(compile_source(case.source, case.name))

    def test_names_unique(self):
        names = [c.name for c in generate_corpus()]
        assert len(names) == len(set(names))

    def test_clean_cases_expected_ok(self):
        for case in generate_corpus():
            if case.violation == "none":
                assert case.expected == {"softbound": "ok", "lowfat": "ok"}

    def test_softbound_expected_violation_for_all_oob(self):
        for case in generate_corpus():
            if case.violation != "none":
                assert case.expected["softbound"] == "violation"


class TestLowFatPredictor:
    def test_underflow_always_violates(self):
        assert _lowfat_expectation(4, -2, 4) == "violation"

    def test_adjacent_overflow_lands_in_padding(self):
        # 24 ints = 96 bytes -> 128-byte class: arr[24] is padding
        assert _lowfat_expectation(4, ELEMENT_COUNT, 4) == "ok"

    def test_far_overflow_violates(self):
        assert _lowfat_expectation(4, ELEMENT_COUNT + 10000, 4) == "violation"

    def test_class_boundary_is_exact(self):
        # chars: 24 bytes -> 32-byte class; offset 31 ok, offset 32 not
        assert _lowfat_expectation(1, 31, 1) == "ok"
        assert _lowfat_expectation(1, 32, 1) == "violation"

    def test_predictor_matches_layout(self):
        requested = ELEMENT_COUNT * 8
        region = layout.size_class_for(requested)
        class_size = layout.allocation_size(region)
        last_ok_index = class_size // 8 - 1
        assert _lowfat_expectation(8, last_ok_index, 8) == "ok"
        assert _lowfat_expectation(8, last_ok_index + 1, 8) == "violation"

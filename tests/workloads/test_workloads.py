"""Workload suite validation.

Every workload must (a) compile and run cleanly uninstrumented, and
(b) produce *identical output* under both instrumentations in every
configuration the evaluation uses -- the reproduction's equivalent of
"the benchmark executes successfully with both approaches"
(paper Section 5.1.1).
"""

import pytest

from repro.experiments.common import Runner, config_for
from repro.workloads import all_names, all_workloads, get

RUNNER = Runner()


class TestRegistry:
    def test_twenty_workloads(self):
        assert len(all_names()) == 20

    def test_paper_benchmarks_present(self):
        expected = {
            "164gzip", "177mesa", "179art", "181mcf", "183equake",
            "186crafty", "188ammp", "197parser", "256bzip2", "300twolf",
            "401bzip2", "429mcf", "433milc", "445gobmk", "456hmmer",
            "458sjeng", "462libquantum", "464h264ref", "470lbm",
            "482sphinx3",
        }
        assert set(all_names()) == expected

    def test_size_zero_benchmarks_marked(self):
        """The paper's Table 2 bolds the size-zero-declaration set."""
        marked = {w.name for w in all_workloads() if w.has_size_zero_arrays}
        assert marked == {"164gzip", "197parser", "300twolf", "433milc",
                          "445gobmk"}

    def test_descriptions_present(self):
        for workload in all_workloads():
            assert workload.description


@pytest.mark.parametrize("name", all_names())
class TestExecution:
    def test_baseline_runs(self, name):
        result = RUNNER.baseline(get(name))
        assert result.ok, result.describe
        assert result.output  # prints a checksum

    def test_softbound_preserves_output(self, name):
        result = RUNNER.run(get(name), "softbound")
        assert result.ok, result.describe

    def test_lowfat_preserves_output(self, name):
        result = RUNNER.run(get(name), "lowfat")
        assert result.ok, result.describe

    def test_metadata_configs_preserve_output(self, name):
        for label in ("softbound-meta", "lowfat-meta"):
            result = RUNNER.run(get(name), label)
            assert result.ok, f"{label}: {result.describe}"

    def test_early_extension_point_preserves_output(self, name):
        for label in ("softbound", "lowfat"):
            result = RUNNER.run(get(name), label,
                                extension_point="ModuleOptimizerEarly")
            assert result.ok, f"{label}@early: {result.describe}"


class TestCharacteristics:
    def test_gzip_softbound_mostly_wide(self):
        result = RUNNER.run(get("164gzip"), "softbound")
        assert 40.0 < result.unsafe_percent < 85.0

    def test_gzip_lowfat_fully_checked(self):
        result = RUNNER.run(get("164gzip"), "lowfat")
        assert result.checks_wide == 0

    def test_429mcf_lowfat_mostly_wide(self):
        result = RUNNER.run(get("429mcf"), "lowfat")
        assert 35.0 < result.unsafe_percent < 75.0
        assert result.lowfat_fallbacks == 1    # the one >1GiB allocation

    def test_429mcf_softbound_fully_checked(self):
        result = RUNNER.run(get("429mcf"), "softbound")
        assert result.checks_wide == 0

    def test_milc_declares_but_never_uses_sizeless(self):
        result = RUNNER.run(get("433milc"), "softbound")
        assert result.checks_wide == 0         # declared, not accessed

    def test_equake_favours_lowfat(self):
        w = get("183equake")
        sb = RUNNER.overhead(w, "softbound")
        lf = RUNNER.overhead(w, "lowfat")
        assert lf < sb

    def test_crafty_favours_softbound(self):
        w = get("186crafty")
        sb = RUNNER.overhead(w, "softbound")
        lf = RUNNER.overhead(w, "lowfat")
        assert sb < lf

    def test_parser_trie_heavy(self):
        result = RUNNER.run(get("197parser"), "softbound")
        assert result.trie_stores > 100

    def test_h264_trie_heavy(self):
        result = RUNNER.run(get("464h264ref"), "softbound")
        assert result.trie_stores > 1000

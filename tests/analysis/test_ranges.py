"""Tests for the interprocedural value-range / pointer-provenance
analysis and the check-elimination filter built on it."""

import pytest

from repro.analysis.ranges import (
    FunctionRangeAnalysis,
    IntRange,
    PtrFact,
    ReturnSummaries,
)
from repro.core import (
    InstrumentationConfig,
    TargetKind,
    dominance_filter,
    gather_function_targets,
    range_filter,
)
from repro.driver import compile_program, run_program
from repro.frontend import compile_source
from repro.ir.instructions import Load, Ret, Store
from repro.opt import Mem2Reg, SimplifyCFG


def _prepared(src):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    return mod


def _fn(src, name="main"):
    return _prepared(src).get_function(name)


def _ret(fn):
    return next(i for i in fn.instructions() if isinstance(i, Ret))


def _range_at_return(src, name="main"):
    fn = _fn(src, name)
    ret = _ret(fn)
    return FunctionRangeAnalysis(fn).int_range_before(ret, ret.value)


class TestIntRange:
    def test_constants_and_constructors(self):
        r = IntRange.const(32, 7)
        assert r.is_constant and r.lo == r.hi == 7
        assert IntRange.full(8).is_full

    def test_clamped_rejects_wrapping(self):
        assert IntRange(8, 120, 130).clamped() is None  # exceeds i8 max
        assert IntRange(8, -10, 10).clamped() == IntRange(8, -10, 10)

    def test_join_is_the_hull(self):
        a, b = IntRange(32, 0, 3), IntRange(32, 10, 12)
        assert a.join(b) == IntRange(32, 0, 12)
        assert a.join(IntRange(64, 0, 3)) is None  # width mismatch: top

    def test_widen_pushes_unstable_bounds(self):
        old, new = IntRange(32, 0, 3), IntRange(32, 0, 4)
        widened = old.widen(new)
        assert widened.lo == 0  # stable bound kept
        assert widened.hi == IntRange.full(32).hi  # unstable: type max

    def test_intersect_and_empty(self):
        r = IntRange(32, 0, 10).intersect(5, None)
        assert (r.lo, r.hi) == (5, 10)
        assert IntRange(32, 0, 10).intersect(11, None).empty


class TestPtrFact:
    def _fact(self, lo, hi, size=16):
        return PtrFact(object(), size, IntRange(64, lo, hi))

    def test_proves_in_bounds(self):
        assert self._fact(0, 12).proves_in_bounds(4)
        assert not self._fact(0, 13).proves_in_bounds(4)  # 13+4 > 16
        assert not self._fact(-1, 0).proves_in_bounds(4)  # may underflow

    def test_unknown_size_never_proves_in_bounds(self):
        assert not self._fact(0, 0, size=None).proves_in_bounds(1)

    def test_proves_out_of_bounds(self):
        assert self._fact(16, 16).proves_out_of_bounds(1)  # past the end
        assert not self._fact(12, 12).proves_out_of_bounds(4)  # last slot
        # a negative offset is out of bounds even with unknown size
        assert self._fact(-4, -1, size=None).proves_out_of_bounds(1)


class TestRangePropagation:
    def test_arithmetic_folds_to_constant(self):
        r = _range_at_return("int main() { int x = 3; return x + 4; }")
        assert (r.lo, r.hi) == (7, 7)

    def test_phi_joins_both_arms(self):
        r = _range_at_return(r"""
        int g;
        int main() {
            int x;
            if (g > 0) x = 1; else x = 3;
            return x;
        }""")
        assert (r.lo, r.hi) == (1, 3)

    def test_mask_bounds_the_index(self):
        r = _range_at_return(r"""
        int g;
        int main() { return g & 7; }""")
        assert (r.lo, r.hi) == (0, 7)

    def test_loop_with_refinement_bounds_the_counter(self):
        # after `for (i = 0; i < 8; i++)`, the exit edge proves i >= 8
        # and widening keeps lo = 0
        r = _range_at_return(r"""
        int main() {
            int i;
            for (i = 0; i < 8; i++) {}
            return i;
        }""")
        assert r is not None and r.lo >= 0

    def test_data_dependent_bound_terminates_via_widening(self):
        # the loop bound is a function argument: no finite descending
        # chain -- only widening makes the fixpoint terminate
        fn = _fn(r"""
        int f(int n) {
            int i = 0;
            while (i < n) i = i + 1;
            return i;
        }""", "f")
        analysis = FunctionRangeAnalysis(fn)  # must not diverge
        ret = _ret(fn)
        r = analysis.int_range_before(ret, ret.value)
        # i starts at 0 and only grows: the sound result keeps lo >= 0
        assert r is None or r.lo >= 0

    def test_select_like_ternary_joins(self):
        r = _range_at_return(r"""
        int g;
        int main() { return g > 0 ? 2 : 5; }""")
        assert (r.lo, r.hi) == (2, 5)

    def test_interprocedural_return_summary(self):
        mod = _prepared(r"""
        int clamp(int x) {
            if (x < 0) return 0;
            if (x > 9) return 9;
            return x;
        }
        int main(int argc) { return clamp(argc); }""")
        fn = mod.get_function("main")
        ret = _ret(fn)
        analysis = FunctionRangeAnalysis(fn, ReturnSummaries(mod))
        r = analysis.int_range_before(ret, ret.value)
        assert (r.lo, r.hi) == (0, 9)

    def test_recursive_summary_is_top(self):
        mod = _prepared(r"""
        int f(int n) { if (n <= 0) return 0; return f(n - 1); }
        int main() { return f(5); }""")
        assert ReturnSummaries(mod).range_for(mod.get_function("f")) is None


class TestProvenance:
    def test_malloc_with_constant_index_proves_in_bounds(self):
        fn = _fn(r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            a[3] = 1;
            return 0;
        }""")
        analysis = FunctionRangeAnalysis(fn)
        store = next(i for i in fn.instructions() if isinstance(i, Store))
        fact = analysis.pointer_fact_before(store, store.pointer)
        assert fact is not None and fact.size == 32
        assert fact.proves_in_bounds(4)

    def test_unknown_index_does_not_prove(self):
        fn = _fn(r"""
        int g;
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            a[g] = 1;
            return 0;
        }""")
        analysis = FunctionRangeAnalysis(fn)
        store = next(i for i in fn.instructions() if isinstance(i, Store))
        fact = analysis.pointer_fact_before(store, store.pointer)
        assert fact is None or not fact.proves_in_bounds(4)

    def test_global_array_has_known_size(self):
        fn = _fn(r"""
        int table[10];
        int main() { table[9] = 1; return 0; }""")
        analysis = FunctionRangeAnalysis(fn)
        store = next(i for i in fn.instructions() if isinstance(i, Store))
        fact = analysis.pointer_fact_before(store, store.pointer)
        assert fact is not None and fact.size == 40
        assert fact.proves_in_bounds(4)
        assert not fact.proves_in_bounds(8)  # 36 + 8 > 40


class TestRangeFilter:
    def _targets(self, src, name="main"):
        fn = _fn(src, name)
        targets = gather_function_targets(fn)
        targets, _ = dominance_filter(fn, targets)
        return fn, targets

    def test_provable_accesses_removed(self):
        fn, targets = self._targets(r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            for (int i = 0; i < 8; i++) a[i] = i;
            return 0;
        }""")
        filtered, removed = range_filter(fn, targets)
        assert removed >= 1
        assert len(filtered) == len(targets) - removed

    def test_unprovable_accesses_kept(self):
        fn, targets = self._targets(r"""
        int take(int *p, int i) { return p[i]; }""", "take")
        filtered, removed = range_filter(fn, targets)
        assert removed == 0 and filtered == targets

    def test_invariant_targets_never_dropped(self):
        fn, targets = self._targets(r"""
        int *slot[2];
        int main() {
            int x;
            slot[0] = &x;
            slot[1] = &x;
            return 0;
        }""")
        invariants = sum(1 for t in targets if t.is_invariant())
        filtered, _ = range_filter(fn, targets)
        assert sum(1 for t in filtered if t.is_invariant()) == invariants


class TestDifferentialSoundness:
    """-mi-opt-ranges must be behaviour-preserving: same outputs, same
    verdicts, never more emitted checks, on the whole functional corpus
    under both instrumentations."""

    @staticmethod
    def _run(case, approach, opt_ranges):
        base = (InstrumentationConfig.softbound()
                if approach == "softbound"
                else InstrumentationConfig.lowfat())
        config = base.with_(opt_dominance=True, opt_ranges=opt_ranges)
        program = compile_program({"main.c": case.source}, config)
        result = run_program(program, max_instructions=2_000_000)
        return program, result

    def _check_case(self, case, approach):
        prog_off, off = self._run(case, approach, False)
        prog_on, on = self._run(case, approach, True)
        assert on.output == off.output
        assert on.exit_code == off.exit_code
        assert (on.violation is None) == (off.violation is None)
        if on.violation is not None:
            assert on.violation.kind == off.violation.kind
        assert (on.fault is None) == (off.fault is None)
        stat_on, stat_off = prog_on.instrumentation, prog_off.instrumentation
        assert stat_on.gathered_checks == stat_off.gathered_checks
        assert stat_on.filtered_checks == stat_off.filtered_checks
        assert stat_off.range_filtered_checks == 0
        assert stat_on.emitted_checks <= stat_off.emitted_checks

    def test_softbound_corpus(self):
        from repro.workloads.functional import corpus_by_name

        for case in corpus_by_name().values():
            self._check_case(case, "softbound")

    def test_lowfat_corpus(self):
        from repro.workloads.functional import corpus_by_name

        for case in corpus_by_name().values():
            self._check_case(case, "lowfat")

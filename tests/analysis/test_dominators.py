"""Tests for dominator tree construction."""

from hypothesis import given, settings, strategies as st

from repro.analysis import DominatorTree, LoopInfo, reachable_blocks, reverse_postorder
from repro.ir import (
    Br,
    CondBr,
    ConstantInt,
    FunctionType,
    I1,
    I32,
    IRBuilder,
    Module,
    Ret,
    Unreachable,
)


def _diamond():
    """entry -> {left, right} -> merge"""
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(I32, [I1]), ["c"])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    merge = fn.add_block("merge")
    b = IRBuilder(entry)
    b.cond_br(fn.args[0], left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret(b.const_i32(0))
    return fn, entry, left, right, merge


def _loop():
    """entry -> header <-> body; header -> exit"""
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(I32, [I1]), ["c"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    b.cond_br(fn.args[0], body, exit_)
    b.position_at_end(body)
    b.br(header)
    b.position_at_end(exit_)
    b.ret(b.const_i32(0))
    return fn, entry, header, body, exit_


class TestDiamond:
    def test_idoms(self):
        fn, entry, left, right, merge = _diamond()
        dt = DominatorTree(fn)
        assert dt.idom[entry] is None
        assert dt.idom[left] is entry
        assert dt.idom[right] is entry
        assert dt.idom[merge] is entry  # neither branch dominates merge

    def test_dominates_block(self):
        fn, entry, left, right, merge = _diamond()
        dt = DominatorTree(fn)
        assert dt.dominates_block(entry, merge)
        assert not dt.dominates_block(left, merge)
        assert dt.dominates_block(left, left)
        assert not dt.strictly_dominates_block(left, left)

    def test_instruction_dominance_within_block(self):
        fn, entry, *_ = _diamond()
        dt = DominatorTree(fn)
        first = entry.instructions[0]
        # a single terminator: add another instruction before it
        b = IRBuilder(entry)
        b.position_before(first)
        v = b.add(b.const_i32(1), b.const_i32(2))
        assert dt.dominates(v, first)
        assert not dt.dominates(first, v)


class TestLoop:
    def test_header_dominates_body(self):
        fn, entry, header, body, exit_ = _loop()
        dt = DominatorTree(fn)
        assert dt.dominates_block(header, body)
        assert dt.dominates_block(header, exit_)
        assert not dt.dominates_block(body, exit_)

    def test_loop_detection(self):
        fn, entry, header, body, exit_ = _loop()
        li = LoopInfo(fn)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header is header
        assert body in loop.blocks
        assert exit_ not in loop.blocks
        assert li.loop_depth(body) == 1
        assert li.loop_depth(exit_) == 0
        assert loop.exit_blocks() == [exit_]
        assert loop.preheader() is entry

    def test_nested_loops(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, [I1]), ["c"])
        entry = fn.add_block("entry")
        outer = fn.add_block("outer")
        inner = fn.add_block("inner")
        latch = fn.add_block("latch")
        done = fn.add_block("done")
        b = IRBuilder(entry)
        b.br(outer)
        b.position_at_end(outer)
        b.br(inner)
        b.position_at_end(inner)
        b.cond_br(fn.args[0], inner, latch)   # inner self-loop
        b.position_at_end(latch)
        b.cond_br(fn.args[0], outer, done)    # outer back edge
        b.position_at_end(done)
        b.ret(b.const_i32(0))
        li = LoopInfo(fn)
        assert len(li.loops) == 1
        outer_loop = li.loops[0]
        assert len(outer_loop.subloops) == 1
        assert outer_loop.subloops[0].header is inner
        assert li.loop_depth(inner) == 2
        assert li.loop_depth(latch) == 1


class TestRandomCFGs:
    """Property tests over randomly generated CFGs."""

    @staticmethod
    def _build_cfg(edges, nblocks):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, [I1]), ["c"])
        blocks = [fn.add_block(f"b{i}") for i in range(nblocks)]
        for i, block in enumerate(blocks):
            succs = sorted({t % nblocks for t in edges.get(i, [])})
            if not succs:
                block.append(Ret(ConstantInt(I32, 0)))
            elif len(succs) == 1:
                block.append(Br(blocks[succs[0]]))
            else:
                block.append(CondBr(fn.args[0], blocks[succs[0]], blocks[succs[1]]))
        return fn, blocks

    @given(
        st.dictionaries(
            st.integers(0, 7),
            st.lists(st.integers(0, 7), min_size=1, max_size=2),
            max_size=8,
        ),
        st.integers(2, 8),
    )
    @settings(max_examples=100)
    def test_entry_dominates_all_reachable(self, edges, nblocks):
        fn, blocks = self._build_cfg(edges, nblocks)
        dt = DominatorTree(fn)
        for block in reachable_blocks(fn):
            assert dt.dominates_block(fn.entry, block)

    @given(
        st.dictionaries(
            st.integers(0, 7),
            st.lists(st.integers(0, 7), min_size=1, max_size=2),
            max_size=8,
        ),
        st.integers(2, 8),
    )
    @settings(max_examples=100)
    def test_idom_is_strict_dominator(self, edges, nblocks):
        fn, blocks = self._build_cfg(edges, nblocks)
        dt = DominatorTree(fn)
        for block in reachable_blocks(fn):
            idom = dt.idom.get(block)
            if idom is not None:
                assert dt.strictly_dominates_block(idom, block)

    @given(
        st.dictionaries(
            st.integers(0, 7),
            st.lists(st.integers(0, 7), min_size=1, max_size=2),
            max_size=8,
        ),
        st.integers(2, 8),
    )
    @settings(max_examples=100)
    def test_rpo_covers_reachable_blocks(self, edges, nblocks):
        fn, blocks = self._build_cfg(edges, nblocks)
        rpo = reverse_postorder(fn)
        assert set(rpo) == reachable_blocks(fn)
        assert rpo[0] is fn.entry

"""Tests for the generic forward dataflow engine (worklist + widening)."""

import pytest

from repro.analysis.cfg import reverse_postorder
from repro.analysis.dataflow import (
    INFEASIBLE,
    DataflowClient,
    ForwardDataflow,
    State,
)
from repro.frontend import compile_source
from repro.ir.instructions import BinOp
from repro.opt import Mem2Reg, SimplifyCFG


def _fn(src, name="main"):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    return mod.get_function(name)


DIAMOND = r"""
int g;
int main() {
    int x = g;
    if (x > 0) g = 1; else g = 2;
    return g;
}"""

LOOP = r"""
int f(int n) {
    int i = 0;
    while (i < n) i = i + 1;
    return i;
}"""


class TestReachability:
    def test_every_block_gets_an_entry_state(self):
        fn = _fn(DIAMOND)
        block_in = ForwardDataflow(DataflowClient()).run(fn)
        assert set(block_in) == set(reverse_postorder(fn))

    def test_infeasible_edges_prune_successors(self):
        # A client that declares every branch edge infeasible: only the
        # entry block is ever reached.
        class DeadEnds(DataflowClient):
            def refine_edge(self, pred, succ, state):
                state[INFEASIBLE] = True
                return state

        fn = _fn(DIAMOND)
        block_in = ForwardDataflow(DeadEnds()).run(fn)
        assert list(block_in) == [reverse_postorder(fn)[0]]

    def test_loop_converges_with_default_client(self):
        fn = _fn(LOOP, "f")
        block_in = ForwardDataflow(DataflowClient()).run(fn)
        assert set(block_in) == set(reverse_postorder(fn))


class TestJoin:
    def _engine(self, client=None):
        return ForwardDataflow(client or DataflowClient())

    def test_equal_facts_survive_the_join(self):
        merged = self._engine()._merge_edges(
            [{"k": 1, "only": 2}, {"k": 1}], phi_keys=set())
        # differing presence: default keep_unmatched_key keeps "only"
        assert merged == {"k": 1, "only": 2}

    def test_conflicting_facts_drop_to_top(self):
        merged = self._engine()._merge_edges(
            [{"k": 1}, {"k": 2}], phi_keys=set())
        assert merged == {}

    def test_phi_keys_require_every_edge(self):
        key = ("v", 123)
        merged = self._engine()._merge_edges(
            [{key: 1}, {}], phi_keys={key})
        assert merged == {}

    def test_memory_keys_do_not_survive_unmatched(self):
        class MemoryClient(DataflowClient):
            def keep_unmatched_key(self, key):
                return key[0] != "m"

        merged = self._engine(MemoryClient())._merge_edges(
            [{("m", 1): 5, ("v", 1): 7}, {("v", 1): 7}], phi_keys=set())
        assert merged == {("v", 1): 7}


class CountingClient(DataflowClient):
    """A deliberately diverging client: a counter that grows by one per
    arithmetic instruction and joins via max never stabilizes on a loop
    unless widening kicks in."""

    WIDENED = "many"

    def boundary_state(self, fn) -> State:
        return {"count": 0}

    def transfer(self, inst, state):
        count = state.get("count")
        if isinstance(inst, BinOp) and isinstance(count, int):
            state["count"] = count + 1

    def join_fact(self, a, b):
        if a == self.WIDENED or b == self.WIDENED:
            return self.WIDENED
        return max(a, b)

    def widen_fact(self, old, new):
        return self.WIDENED


class TestWidening:
    def test_diverging_client_terminates_through_widening(self):
        fn = _fn(LOOP, "f")
        engine = ForwardDataflow(CountingClient(), max_iterations=200)
        block_in = engine.run(fn)  # must not hit the iteration backstop
        facts = {state.get("count") for state in block_in.values()}
        assert CountingClient.WIDENED in facts

    def test_default_widening_drops_to_top(self):
        # Same client but with the default widen_fact (= give up): the
        # unstable key is dropped instead, which also terminates.
        class Dropping(CountingClient):
            def widen_fact(self, old, new):
                return None

        fn = _fn(LOOP, "f")
        block_in = ForwardDataflow(Dropping(), max_iterations=200).run(fn)
        loop_states = [s for s in block_in.values() if "count" not in s]
        assert loop_states  # the widened (dropped) fact is really gone

    def test_acyclic_cfg_never_widens(self):
        # On a diamond the counter stays exact: no widening point fires.
        fn = _fn(DIAMOND)
        block_in = ForwardDataflow(CountingClient()).run(fn)
        assert CountingClient.WIDENED not in {
            state.get("count") for state in block_in.values()
        }


class TestReplay:
    def test_replay_visits_each_instruction_with_pre_state(self):
        fn = _fn(LOOP, "f")
        client = CountingClient()
        engine = ForwardDataflow(client)
        block_in = engine.run(fn)
        for block, entry in block_in.items():
            seen = []
            engine.replay(block, entry,
                          lambda inst, state: seen.append(dict(state)))
            assert len(seen) == len(block.instructions)
            if seen:
                assert seen[0] == entry  # state *before* the first inst

"""Tests for mi-lint: the Section 4 pitfall detectors.

The five case studies mirror ``examples/usability_case_studies.py``:
each program that misbehaves under an instrumentation at runtime must
be flagged statically, with the matching paper-section tag -- and the
repaired variants must stay clean.
"""

import json

import pytest

from repro.analysis import lint
from repro.workloads import all_workloads, get

# ---------------------------------------------------------------------
# the Section 4 case studies
# ---------------------------------------------------------------------

CASE_42_OOB_ARITHMETIC = {
    "lib.c": "long use(int *p) { return p[1]; }",
    "main.c": r"""
        long use(int *p);
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            a[0] = 5;
            print_i64(use(a - 1));
            free((void*)a);
            return 0;
        }""",
}

SWAP_SOURCES = {
    "swap.c": r"""
        void swap(double **one, double **two) {
            double *tmp = *one;
            *one = *two;
            *two = tmp;
        }""",
    "main.c": r"""
        void swap(double **one, double **two);
        double ga; double gb;
        int main() {
            double *pa = &ga; double *pb = &gb;
            ga = 1.5; gb = 2.5;
            swap(&pa, &pb);
            print_f64(*pa + *pb);
            return 0;
        }""",
}

BYTEWISE_COPY = r"""
    int main() {
        long x = 77;
        long *src = &x;
        long *dst;
        char *from = (char *) &src;
        char *to = (char *) &dst;
        for (int i = 0; i < 8; i++) to[i] = from[i];
        print_i64(*dst);
        return 0;
    }"""

MEMCPY_FIXED = BYTEWISE_COPY.replace(
    "for (int i = 0; i < 8; i++) to[i] = from[i];",
    "memcpy((void*)to, (void*)from, 8);")

SIZELESS_EXTERN = {
    "data.c": "int window[256];",
    "main.c": r"""
        extern int window[];
        int main() { return window[0]; }""",
}

HUGE_ALLOCATION = r"""
    int main() {
        char *big = (char *) malloc(1073741824);
        big[0] = 1;
        free((void*)big);
        return 0;
    }"""


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestCaseStudies:
    def test_42_oob_pointer_arithmetic(self):
        diags = lint.lint_sources(CASE_42_OOB_ARITHMETIC)
        assert codes(diags) == ["oob-pointer-arithmetic"]
        (d,) = diags
        assert d.section == "4.2"
        assert d.severity == "warning"  # legal-by-expectation C
        assert "main.c" in d.location

    def test_44_obfuscated_swap(self):
        diags = lint.lint_sources(SWAP_SOURCES, obfuscated_units=("swap.c",))
        assert codes(diags) == ["inttoptr-roundtrip"]
        (d,) = diags
        assert d.section == "4.4"
        assert d.location.startswith("swap.c")

    def test_44_control_clean_swap(self):
        assert lint.lint_sources(SWAP_SOURCES) == []

    def test_45_bytewise_pointer_copy(self):
        diags = lint.lint_sources({"main.c": BYTEWISE_COPY})
        assert codes(diags) == ["bytewise-pointer-copy"]
        (d,) = diags
        assert d.section == "4.5"

    def test_45_memcpy_fix_is_clean(self):
        assert lint.lint_sources({"main.c": MEMCPY_FIXED}) == []

    def test_43_sizeless_extern_array(self):
        diags = lint.lint_sources(SIZELESS_EXTERN)
        assert codes(diags) == ["sizeless-extern-array"]
        (d,) = diags
        assert d.section == "4.3"
        assert d.location.startswith("main.c")  # the declaring unit

    def test_46_huge_allocation(self):
        diags = lint.lint_sources({"main.c": HUGE_ALLOCATION})
        assert codes(diags) == ["huge-allocation"]
        (d,) = diags
        assert d.section == "4.6"
        assert str(lint.LOWFAT_MAX_PROTECTED) in d.message

    def test_46_protectable_allocation_is_clean(self):
        small = HUGE_ALLOCATION.replace("1073741824", "1048576")
        assert lint.lint_sources({"main.c": small}) == []


class TestDetectorPrecision:
    def test_one_past_the_end_not_flagged(self):
        # forming (not dereferencing) a one-past-the-end pointer is
        # legal C and accepted by both instrumentations
        src = r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            int *end = a + 4;
            for (int *p = a; p != end; p++) *p = 0;
            free((void*)a);
            return 0;
        }"""
        assert lint.lint_sources({"main.c": src}) == []

    def test_provable_oob_access_is_an_error(self):
        src = r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            a[-1] = 1;
            return 0;
        }"""
        diags = lint.lint_sources({"main.c": src})
        assert any(d.code == "oob-access" and d.severity == "error"
                   for d in diags)

    def test_diagnostics_have_source_lines(self):
        diags = lint.lint_sources({"main.c": HUGE_ALLOCATION})
        assert "line" in diags[0].location


class TestRendering:
    def test_format_contains_code_and_section(self):
        (d,) = lint.lint_sources({"main.c": HUGE_ALLOCATION})
        text = d.format()
        assert "huge-allocation" in text
        assert "paper section 4.6" in text

    def test_render_text_empty(self):
        assert "no findings" in lint.render_text([])

    def test_render_json_round_trips(self):
        diags = lint.lint_sources(SIZELESS_EXTERN)
        payload = json.loads(lint.render_json(diags))
        assert payload[0]["code"] == "sizeless-extern-array"
        assert payload[0]["section"] == "4.3"

    def test_sorted_by_unit_then_line(self):
        src = r"""
        extern int window[];
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            a[-1] = 1;
            return window[0];
        }"""
        diags = lint.lint_sources({"b.c": src, "a.c": src})
        keys = [(d.unit, d.line if d.line is not None else -1)
                for d in diags]
        assert keys == sorted(keys)
        assert len({d.unit for d in diags}) == 2

    def test_json_has_function_line_and_loop_depth(self):
        src = r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            for (int i = 0; i < 4; i++) {
                a[-1] = i;
            }
            return 0;
        }"""
        diags = lint.lint_sources({"main.c": src})
        payload = json.loads(lint.render_json(diags))
        oob = [d for d in payload if d["code"] == "oob-access"]
        assert oob and oob[0]["function"] == "main"
        assert oob[0]["line"] is not None
        assert oob[0]["loop_depth"] >= 1


# ---------------------------------------------------------------------
# the bundled workloads: known pitfalls, and only those
# ---------------------------------------------------------------------

#: Expected lint findings per workload.  These mirror the paper's
#: Table 2 story: 164gzip's size-less ``window``, 429mcf's huge arena,
#: the inttoptr round trips in 456hmmer/458sjeng, and clean elsewhere.
EXPECTED_WORKLOAD_FINDINGS = {
    "164gzip": {"sizeless-extern-array"},
    "197parser": {"sizeless-extern-array"},
    "300twolf": {"sizeless-extern-array"},
    "433milc": {"sizeless-extern-array"},
    "445gobmk": {"sizeless-extern-array"},
    "429mcf": {"huge-allocation"},
    "456hmmer": {"inttoptr-roundtrip"},
    "458sjeng": {"inttoptr-roundtrip"},
}


@pytest.mark.parametrize("name", sorted(w.name for w in all_workloads()))
def test_workload_known_pitfalls(name):
    expected = EXPECTED_WORKLOAD_FINDINGS.get(name, set())
    diags = lint.lint_workload(get(name))
    assert {d.code for d in diags} == expected

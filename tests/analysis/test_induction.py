"""Tests for induction-variable analysis and natural-loop structure.

Covers the counted-loop recognizer and affine pointer decomposition
behind ``-mi-opt-hoist``, plus regression tests for nested and
multi-backedge (shared-header) CFGs in :mod:`repro.analysis.loops`.
"""

from repro.analysis import DominatorTree, LoopInfo
from repro.analysis.induction import (
    AffinePointer,
    _affine_int,
    affine_pointer,
    analyze_counted_loop,
    extent_bytes,
)
from repro.analysis.ranges import FunctionRangeAnalysis
from repro.frontend import compile_source
from repro.ir import (
    FunctionType,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    PointerType,
)
from repro.opt import Mem2Reg, SimplifyCFG


def _fn(src, name):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    return mod.get_function(name)


def _counted_loops(fn):
    domtree = DominatorTree(fn)
    loopinfo = LoopInfo(fn, domtree)
    analysis = FunctionRangeAnalysis(fn)
    out = []
    for loop in loopinfo.all_loops():
        counted = analyze_counted_loop(loop, domtree, analysis)
        if counted is not None:
            out.append((counted, domtree))
    return out


class TestCountedLoopRecognition:
    def test_canonical_upward_loop(self):
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 16; i++) s = s + a[i];
            return s;
        }""", "f")
        [(counted, _)] = _counted_loops(fn)
        assert counted.init == 0
        assert counted.step == 1
        assert counted.predicate == "slt"
        assert counted.static_last == 15
        assert counted.static_trip_count() == 16

    def test_inclusive_bound_and_wide_step(self):
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 2; i <= 14; i = i + 3) s = s + a[i];
            return s;
        }""", "f")
        [(counted, _)] = _counted_loops(fn)
        assert (counted.init, counted.step) == (2, 3)
        assert counted.static_last == 14  # 2, 5, 8, 11, 14
        assert counted.static_trip_count() == 5

    def test_unknown_bound_rejected_without_min_trip_proof(self):
        # n could be <= 0: a zero-trip loop has no first access, so the
        # widened preheader check would be a false abort.
        fn = _fn(r"""
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s + a[i];
            return s;
        }""", "f")
        assert _counted_loops(fn) == []

    def test_guarded_unknown_bound_accepted(self):
        # The dominating n > 0 guard proves at least one iteration; the
        # trip count is dynamic (static_last is None).
        fn = _fn(r"""
        int f(int *a, int n) {
            int s = 0;
            if (n > 0) {
                for (int i = 0; i < n; i++) s = s + a[i];
            }
            return s;
        }""", "f")
        [(counted, _)] = _counted_loops(fn)
        assert counted.static_last is None
        assert counted.predicate == "slt"

    def test_call_in_body_rejected(self):
        # g may abort (or not return): iterations after the call are
        # not guaranteed to execute, so the extent argument fails.
        fn = _fn(r"""
        int g(int x);
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 16; i++) s = s + g(a[i]);
            return s;
        }""", "f")
        assert _counted_loops(fn) == []

    def test_counted_nest_accepts_both_levels(self):
        # The inner loop provably terminates, so the outer loop of the
        # nest is counted too (checks hoisted from it must then live in
        # the outer loop proper -- the filter's obligation).
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) {
                    s = s + a[i * 4 + j];
                }
            }
            return s;
        }""", "f")
        counted = _counted_loops(fn)
        assert sorted(c.loop.depth for c, _ in counted) == [1, 2]

    def test_unbounded_subloop_rejects_outer(self):
        # The inner while-loop's bound varies inside it, so it has no
        # termination proof and the outer loop must not be counted.
        fn = _fn(r"""
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                int j = 0;
                while (j < n) {
                    s = s + a[j];
                    n = n - 1;
                }
                s = s + a[i];
            }
            return s;
        }""", "f")
        counted = _counted_loops(fn)
        assert all(c.loop.depth != 1 for c, _ in counted)


class TestAffineDecomposition:
    def test_array_index_slope(self):
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 16; i++) s = s + a[i + 2];
            return s;
        }""", "f")
        [(counted, domtree)] = _counted_loops(fn)
        loads = [t for b in counted.loop.block_order
                 for t in b.instructions if t.opcode == "load"]
        aff = affine_pointer(loads[0].pointer, counted.iv,
                             counted.preheader.terminator, domtree,
                             counted.iv_range())
        assert isinstance(aff, AffinePointer)
        assert aff.slope == 4          # int stride
        assert aff.intercept == 8      # + 2 elements
        assert extent_bytes(aff, counted, 4) == (8, 8 + 15 * 4 + 4)

    def test_loop_invariant_pointer_has_zero_slope(self):
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 8; i++) s = s + a[3];
            return s;
        }""", "f")
        [(counted, domtree)] = _counted_loops(fn)
        loads = [t for b in counted.loop.block_order
                 for t in b.instructions if t.opcode == "load"]
        aff = affine_pointer(loads[0].pointer, counted.iv,
                             counted.preheader.terminator, domtree,
                             counted.iv_range())
        assert aff is not None and aff.slope == 0 and aff.intercept == 12


# ---------------------------------------------------------------------
# loops.py structure regressions (nested and multi-backedge CFGs)
# ---------------------------------------------------------------------


def _new_fn():
    mod = Module("t")
    return mod.add_function("f", FunctionType(I32, [I1, I1]), ["c", "d"])


class TestNestedLoops:
    def test_two_level_nest_attribution(self):
        # entry -> outer <-> (inner <-> inner.body); inner -> latch -> outer
        fn = _new_fn()
        entry = fn.add_block("entry")
        outer = fn.add_block("outer")
        inner = fn.add_block("inner")
        ibody = fn.add_block("ibody")
        latch = fn.add_block("latch")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        b.br(outer)
        b.position_at_end(outer)
        b.cond_br(fn.args[0], inner, exit_)
        b.position_at_end(inner)
        b.cond_br(fn.args[1], ibody, latch)
        b.position_at_end(ibody)
        b.br(inner)
        b.position_at_end(latch)
        b.br(outer)
        b.position_at_end(exit_)
        b.ret(b.const_i32(0))

        li = LoopInfo(fn)
        assert len(li.loops) == 1            # one top-level loop
        outer_loop = li.loops[0]
        assert outer_loop.header is outer
        assert len(outer_loop.subloops) == 1
        inner_loop = outer_loop.subloops[0]
        assert inner_loop.header is inner
        assert inner_loop.parent is outer_loop
        # Inner body blocks belong to the *inner* loop.
        assert li.loop_of(ibody) is inner_loop
        assert li.loop_of(inner) is inner_loop
        # Outer-only blocks stay with the outer loop.
        assert li.loop_of(latch) is outer_loop
        assert li.loop_of(outer) is outer_loop
        assert li.loop_depth(ibody) == 2
        assert li.loop_depth(latch) == 1
        # The outer body contains the whole inner loop.
        assert inner_loop.blocks < outer_loop.blocks

    def test_triple_nest_from_source(self):
        fn = _fn(r"""
        int f() {
            int s = 0;
            for (int i = 0; i < 2; i++)
                for (int j = 0; j < 2; j++)
                    for (int k = 0; k < 2; k++)
                        s = s + 1;
            return s;
        }""", "f")
        li = LoopInfo(fn)
        depths = sorted(loop.depth for loop in li.all_loops())
        assert depths == [1, 2, 3]
        parents = {loop.depth: loop for loop in li.all_loops()}
        assert parents[3].parent is parents[2]
        assert parents[2].parent is parents[1]
        assert parents[1].parent is None


class TestMultiBackedgeLoops:
    def test_shared_header_is_one_loop(self):
        # Two back edges to the same header (a "continue"): one loop
        # with two latches, not two loops.
        fn = _new_fn()
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        cont = fn.add_block("cont")
        tail = fn.add_block("tail")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        b.cond_br(fn.args[0], body, exit_)
        b.position_at_end(body)
        b.cond_br(fn.args[1], cont, tail)
        b.position_at_end(cont)
        b.br(header)                       # continue back edge
        b.position_at_end(tail)
        b.br(header)                       # normal back edge
        b.position_at_end(exit_)
        b.ret(b.const_i32(0))

        li = LoopInfo(fn)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header is header
        assert set(loop.latches) == {cont, tail}
        assert loop.blocks == {header, body, cont, tail}
        # Deterministic orderings: RPO, header first.
        assert loop.block_order[0] is header
        assert loop.block_order == [header, body, tail, cont]  # RPO

    def test_continue_loop_from_source(self):
        fn = _fn(r"""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i == 3) continue;
                s = s + i;
            }
            return s;
        }""", "f")
        li = LoopInfo(fn)
        assert len(li.all_loops()) == 1
        assert li.all_loops()[0].subloops == []


# ---------------------------------------------------------------------
# Wrap soundness: the VM's arithmetic is fixed-width, so the affine
# model must reject anything that could wrap (REVIEW regression).
# ---------------------------------------------------------------------


class TestWrapSoundness:
    def test_narrow_mul_that_wraps_rejected(self):
        # i * 2**28 wraps i32 from i == 8 on: the executed (wrapped)
        # address diverges from the affine model, so the pointer must
        # not decompose.
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 16; i++) s = s + a[i * 268435456];
            return s;
        }""", "f")
        [(counted, domtree)] = _counted_loops(fn)
        loads = [t for b in counted.loop.block_order
                 for t in b.instructions if t.opcode == "load"]
        assert affine_pointer(loads[0].pointer, counted.iv,
                              counted.preheader.terminator, domtree,
                              counted.iv_range()) is None

    def test_narrow_mul_in_range_accepted(self):
        # The same shape with a harmless factor still decomposes.
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 16; i++) s = s + a[i * 4];
            return s;
        }""", "f")
        [(counted, domtree)] = _counted_loops(fn)
        loads = [t for b in counted.loop.block_order
                 for t in b.instructions if t.opcode == "load"]
        aff = affine_pointer(loads[0].pointer, counted.iv,
                             counted.preheader.terminator, domtree,
                             counted.iv_range())
        assert aff is not None and aff.slope == 16

    def test_narrow_add_overflow_depends_on_iv_range(self):
        # i + 2 fits i32 for small IV ranges but wraps when the range
        # analysis cannot exclude IV values near INT_MAX.
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, [I32]), ["n"])
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        i = b.phi(I32, "i")
        t = b.add(i, b.const_i32(2))
        b.ret(b.const_i32(0))
        assert _affine_int(t, i, (0, 15)) == (1, 2)
        assert _affine_int(t, i, (0, (1 << 31) - 2)) is None

    def test_zext_requires_proven_nonnegative(self):
        # zext of a negative i32 is not value-preserving: the i64
        # index becomes a huge positive number while the model stays
        # negative.  Only a range proof of non-negativity admits it.
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, [I32]), ["n"])
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        i = b.phi(I32, "i")
        t = b.sub(i, b.const_i32(1))
        z = b.zext(t, I64)
        s = b.sext(t, I64)
        b.ret(b.const_i32(0))
        assert _affine_int(z, i, (0, 15)) is None      # i=0 -> -1
        assert _affine_int(z, i, (1, 15)) == (1, -1)   # proven >= 0
        assert _affine_int(s, i, (0, 15)) == (1, -1)   # sext always ok

    def test_shl_wider_than_type_rejected(self):
        # The VM shifts by rhs % bits, so an i32 shl by 32+ means
        # something else entirely.
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, [I32]), ["n"])
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        i = b.phi(I32, "i")
        good = b.shl(i, b.const_i32(2))
        bad = b.shl(i, b.const_i32(32))
        b.ret(b.const_i32(0))
        assert _affine_int(good, i, (0, 15)) == (4, 0)
        assert _affine_int(bad, i, (0, 15)) is None

    def test_iv_increment_that_wraps_rejected(self):
        # i <= INT_MAX never exits: the increment wraps and the IV
        # stays <= bound forever.  The recognizer must refuse it.
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i <= 2147483647; i++) s = s + a[0];
            return s;
        }""", "f")
        assert _counted_loops(fn) == []


# ---------------------------------------------------------------------
# Termination prover: ne-predicate subloops need an init <= bound
# proof (REVIEW regression).
# ---------------------------------------------------------------------


class TestTerminationProver:
    def test_ne_subloop_without_init_proof_rejects_outer(self):
        # j starts at a runtime value: j > 7 would spin ~2**32
        # iterations before the wrapped IV comes back to the bound, so
        # the subloop has no termination proof and the outer loop must
        # not be counted (hoisting from it could abort a run the
        # baseline never completes).
        fn = _fn(r"""
        int f(int *a, int n) {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                int j = n;
                while (j != 7) { s = s + a[0]; j = j + 1; }
                s = s + a[i];
            }
            return s;
        }""", "f")
        counted = _counted_loops(fn)
        assert all(c.loop.depth != 1 for c, _ in counted)

    def test_ne_subloop_with_proven_init_accepted(self):
        # With a constant init at or below the bound, step-1 ne hits
        # the bound exactly: the subloop terminates and the outer loop
        # is counted again.
        fn = _fn(r"""
        int f(int *a) {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                int j = 0;
                while (j != 7) { s = s + a[0]; j = j + 1; }
                s = s + a[i];
            }
            return s;
        }""", "f")
        counted = _counted_loops(fn)
        assert any(c.loop.depth == 1 for c, _ in counted)


# ---------------------------------------------------------------------
# Header-resident accesses: the header runs trip_count + 1 times, so
# its hull is one step wider (REVIEW regression).
# ---------------------------------------------------------------------


def _rotated_loop_fn(bound):
    """A compare-on-phi single-block loop: the store runs once per
    header entry, including the final one with iv == bound."""
    mod = Module("rot")
    fn = mod.add_function("f", FunctionType(I32, [PointerType(I32)]), ["p"])
    entry = fn.add_block("entry")
    loop = fn.add_block("loop")
    exit_ = fn.add_block("exit")
    b = IRBuilder(entry)
    b.br(loop)
    b.position_at_end(loop)
    i = b.phi(I32, "i")
    idx = b.sext(i, I64)
    slot = b.gep(fn.args[0], [idx], "slot")
    b.store(i, slot)
    inext = b.add(i, b.const_i32(1), "inext")
    cmp = b.icmp("slt", i, b.const_i32(bound), "cmp")
    b.cond_br(cmp, loop, exit_)
    i.add_incoming(b.const_i32(0), entry)
    i.add_incoming(inext, loop)
    b.position_at_end(exit_)
    b.ret(b.const_i32(0))
    return fn


class TestHeaderResidentHull:
    def test_single_block_loop_recognized(self):
        fn = _rotated_loop_fn(8)
        [(counted, _)] = _counted_loops(fn)
        assert counted.loop.header is counted.latch
        assert counted.static_last == 7
        assert counted.iv_range() == (0, 7)
        # The header also executes with iv == last + step == 8.
        assert counted.iv_range(header_resident=True) == (0, 8)

    def test_header_extent_one_step_wider(self):
        fn = _rotated_loop_fn(8)
        [(counted, domtree)] = _counted_loops(fn)
        store = next(t for t in counted.loop.header.instructions
                     if t.opcode == "store")
        aff = affine_pointer(store.pointer, counted.iv,
                             counted.preheader.terminator, domtree,
                             counted.iv_range(header_resident=True))
        assert aff is not None and aff.slope == 4 and aff.intercept == 0
        # Body hull would be bytes [0, 32); the header access also
        # touches a[8], bytes 32..36.
        assert extent_bytes(aff, counted, 4) == (0, 32)
        assert extent_bytes(aff, counted, 4, header_resident=True) == (0, 36)

"""The HTTP/JSON daemon: endpoints, caching, and parity with direct
execution."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import Instance, Target, make_server
from repro.campaign.serve import CampaignService
from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentEngine

MAX_INSTRUCTIONS = 3_000_000

SOURCE = """
int main() {
  int a[6];
  long sum = 0;
  for (int i = 0; i < 6; i++) { a[i] = i + 10; }
  for (int i = 0; i < 6; i++) { sum = sum + a[i]; }
  print_i64(sum);
  return 0;
}
"""


@pytest.fixture
def server(tmp_path):
    engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"),
                              engine_keyed_cache=True)
    server, service = make_server("127.0.0.1", 0, engine,
                                  default_max_instructions=MAX_INSTRUCTIONS)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, service
    finally:
        server.shutdown()
        server.server_close()


def _request(server, path, body=None):
    port = server.server_address[1]
    data = (json.dumps(body).encode("utf-8")
            if body is not None else None)
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", data=data, timeout=60) as r:
        return json.loads(r.read())


def _error(server, path, body=None, method=None):
    port = server.server_address[1]
    data = (json.dumps(body).encode("utf-8")
            if body is not None else None)
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method)
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=60)
    return info.value.code, json.loads(info.value.read())


class TestEndpoints:
    def test_health(self, server):
        doc = _request(server[0], "/health")
        assert doc["ok"] is True
        assert doc["executed_jobs"] == 0

    def test_instances_catalogue(self, server):
        doc = _request(server[0], "/instances")
        assert set(doc["mechanisms"]) == {"noop", "softbound", "lowfat"}
        assert "softbound-ranges" in doc["labels"]

    def test_workloads_catalogue(self, server):
        doc = _request(server[0], "/workloads")
        assert "164gzip" in doc["workloads"]

    def test_unknown_path_404(self, server):
        code, doc = _error(server[0], "/nope")
        assert code == 404 and "unknown path" in doc["error"]


class TestRun:
    def test_submitted_sources(self, server):
        doc = _request(server[0], "/run", {
            "sources": {"main.c": SOURCE},
            "instance": {"label": "softbound"},
        })
        assert doc["ok"] is True
        assert doc["cached"] is False
        assert doc["result"]["output"] == ["75"]
        assert doc["result"]["checks_executed"] > 0

    def test_named_workload(self, server):
        doc = _request(server[0], "/run", {"workload": "164gzip",
                                           "instance": "lowfat"})
        assert doc["ok"] is True
        assert doc["instance"] == "lowfat@compiled"

    def test_second_submission_is_cached_and_identical(self, server):
        body = {"sources": {"main.c": SOURCE}, "instance": "softbound"}
        first = _request(server[0], "/run", body)
        second = _request(server[0], "/run", body)
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]

    def test_stats_identical_to_direct_run(self, server):
        """The acceptance check: a served job answers with stats
        identical to running the same (sources, instance) directly."""
        doc = _request(server[0], "/run", {
            "sources": {"main.c": SOURCE},
            "instance": {"label": "softbound-ranges"},
        })
        instance = Instance.from_label("softbound-ranges")
        target = Target("submitted", sources={"main.c": SOURCE})
        direct = ExperimentEngine().run_request(
            instance.request(target, max_instructions=MAX_INSTRUCTIONS))
        assert doc["result"] == direct.to_json()


class TestErrors:
    def test_unknown_workload_400(self, server):
        code, doc = _error(server[0], "/run",
                           {"workload": "999nope", "instance": "softbound"})
        assert code == 400 and "unknown workload" in doc["error"]

    def test_unknown_instance_400(self, server):
        code, doc = _error(server[0], "/run",
                           {"workload": "164gzip",
                            "instance": {"label": "turbo"}})
        assert code == 400

    def test_both_workload_and_sources_400(self, server):
        code, doc = _error(server[0], "/run",
                           {"workload": "164gzip",
                            "sources": {"a": "b"},
                            "instance": "softbound"})
        assert code == 400 and "exactly one" in doc["error"]

    def test_unknown_body_key_400(self, server):
        code, doc = _error(server[0], "/run",
                           {"workload": "164gzip", "speed": "max"})
        assert code == 400 and "unknown request key" in doc["error"]

    def test_invalid_json_400(self, server):
        port = server[0].server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/run", data=b"{not json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=60)
        assert info.value.code == 400

    def test_post_to_unknown_path_404(self, server):
        code, _ = _error(server[0], "/health", {"x": 1})
        assert code == 404


class TestService:
    def test_service_counts_requests(self, tmp_path):
        engine = ExperimentEngine()
        service = CampaignService(engine,
                                  default_max_instructions=MAX_INSTRUCTIONS)
        doc = service.run_job({"sources": {"main.c": SOURCE},
                               "instance": "baseline"})
        assert doc["ok"] is True
        assert service.requests_served == 1
        assert service.health()["requests_served"] == 1

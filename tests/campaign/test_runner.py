"""Sharded execution, cache resumability, and overhead accounting."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    Target,
    run_campaign,
    shard_of,
    standard_instances,
)
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentEngine

MAX_INSTRUCTIONS = 3_000_000

SMALL_SOURCE = """
int main() {
  int a[8];
  long sum = 0;
  for (int i = 0; i < 8; i++) { a[i] = i * 2; }
  for (int i = 0; i < 8; i++) { sum = sum + a[i]; }
  print_i64(sum);
  return 0;
}
"""


def _spec(engines=("compiled",), labels=("baseline", "softbound"),
          targets=None):
    if targets is None:
        targets = [Target("small", sources={"main.c": SMALL_SOURCE})]
    return CampaignSpec("test", standard_instances(labels, engines),
                        targets, max_instructions=MAX_INSTRUCTIONS)


def _engine(tmp_path=None, **kwargs):
    cache = (ResultCache(tmp_path / "cache")
             if tmp_path is not None else None)
    kwargs.setdefault("engine_keyed_cache", True)
    return ExperimentEngine(cache=cache, **kwargs)


class TestRun:
    def test_basic_campaign(self):
        result = run_campaign(_spec(), _engine())
        assert result.ok
        assert len(result.cells) == 2
        assert {c.label for c in result.cells} == {"baseline", "softbound"}

    def test_mixed_engines_bit_identical(self):
        result = run_campaign(_spec(engines=("compiled", "interp")),
                              _engine())
        assert result.ok
        by_engine = {}
        for cell in result.cells:
            by_engine.setdefault(cell.engine, {})[cell.label] = cell.result
        for label in ("baseline", "softbound"):
            a = by_engine["compiled"][label]
            b = by_engine["interp"][label]
            assert a.cycles == b.cycles
            assert a.output == b.output
            assert a.checks_executed == b.checks_executed

    def test_overheads_per_instance(self):
        result = run_campaign(_spec(labels=("baseline", "softbound",
                                            "softbound-unopt")), _engine())
        overheads = result.overheads()
        assert set(overheads) == {"softbound@compiled",
                                  "softbound-unopt@compiled"}
        assert all(ratio >= 1.0 for ratio in overheads.values())

    def test_progress_callback(self):
        calls = []
        CampaignRunner(_spec(), _engine()).run(
            progress=lambda done, total: calls.append((done, total)))
        assert calls and calls[-1] == (2, 2)


class TestResume:
    def test_warm_rerun_is_all_cache_hits_and_bit_identical(self, tmp_path):
        spec = _spec(engines=("compiled", "interp"))
        cold = run_campaign(spec, _engine(tmp_path))
        assert cold.ok and cold.cache_hits == 0

        warm = run_campaign(spec, _engine(tmp_path))
        assert warm.executed_jobs == 0
        assert warm.cache_hits == len(warm.cells)
        assert ([c.to_json() for c in cold.cells]
                == [c.to_json() for c in warm.cells])

    def test_interp_cells_cached_under_their_own_engine(self, tmp_path):
        # the engine-keyed cache must never serve an interp cell a
        # compiled result: prime with compiled only, then ask for interp
        run_campaign(_spec(engines=("compiled",)), _engine(tmp_path))
        interp = run_campaign(_spec(engines=("interp",)),
                              _engine(tmp_path))
        assert interp.cache_hits == 0
        assert interp.executed_jobs > 0


class TestSharding:
    def test_shards_partition_exactly(self):
        spec = _spec(engines=("compiled", "interp"),
                     labels=("baseline", "softbound", "lowfat"),
                     targets=[Target("small",
                                     sources={"main.c": SMALL_SOURCE}),
                              Target("164gzip"), Target("181mcf")])
        engine = _engine()
        everything = {c.id for c in CampaignRunner(spec, engine).cells()}
        seen = []
        for index in range(3):
            runner = CampaignRunner(spec, engine, shard_index=index,
                                    shard_count=3)
            seen.extend(c.id for c in runner.shard_cells())
        assert sorted(seen) == sorted(everything)

    def test_shard_assignment_is_stable(self):
        assert shard_of("abc", 4) == shard_of("abc", 4)
        assert 0 <= shard_of("abc", 4) < 4

    def test_single_shard_is_everything(self):
        runner = CampaignRunner(_spec(), _engine())
        assert runner.shard_cells() == runner.cells()

    def test_bad_shard_arguments_rejected(self):
        with pytest.raises(ConfigError, match="--shard-count"):
            CampaignRunner(_spec(), _engine(), shard_count=0)
        with pytest.raises(ConfigError, match="--shard-index"):
            CampaignRunner(_spec(), _engine(), shard_index=2,
                           shard_count=2)

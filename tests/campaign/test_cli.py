"""The ``repro campaign`` subcommand end to end."""

import json

import pytest

from repro.cli import main

SPEC = {
    "name": "cli-test",
    "max_instructions": 3000000,
    "axes": {
        "mechanisms": ["baseline", "softbound"],
        "filters": ["ranges"],
        "engines": ["compiled", "interp"],
    },
    "target": [
        {
            "name": "tiny",
            "source": ("int main() { int a[4]; long s = 0; "
                       "for (int i = 0; i < 4; i++) { a[i] = i; } "
                       "for (int i = 0; i < 4; i++) { s = s + a[i]; } "
                       "print_i64(s); return 0; }"),
        }
    ],
}


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


class TestCampaignCommand:
    def test_cold_then_warm_run(self, spec_path, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", spec_path, "--jobs", "1",
                     "--cache-dir", cache]) == 0
        cold = capsys.readouterr()
        assert "4 cells" in cold.out
        assert "all cells ok" in cold.out
        assert "4 jobs executed" in cold.err

        assert main(["campaign", spec_path, "--jobs", "1",
                     "--cache-dir", cache]) == 0
        warm = capsys.readouterr()
        assert "0 jobs executed, 4 served from cache" in warm.err

    def test_dry_run_lists_cells(self, spec_path, capsys):
        assert main(["campaign", spec_path, "--dry-run",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "baseline@compiled|tiny" in out
        assert "softbound-ranges@interp|tiny" in out
        assert len(out.strip().splitlines()) == 4

    def test_json_output(self, spec_path, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert main(["campaign", spec_path, "--jobs", "1", "--no-cache",
                     "--format", "json", "--output", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["ok"] is True
        assert doc["campaign"] == "cli-test"
        assert len(doc["cells"]) == 4

    def test_history_appended(self, spec_path, tmp_path, capsys):
        history = tmp_path / "BENCH_cli.json"
        for _ in range(2):
            assert main(["campaign", spec_path, "--jobs", "1",
                         "--no-cache", "--history", str(history),
                         "--fail-on-regression"]) == 0
        doc = json.loads(history.read_text())
        assert len(doc["entries"]) == 2

    def test_sharded_dry_runs_partition(self, spec_path, capsys):
        lines = []
        for index in range(2):
            assert main(["campaign", spec_path, "--dry-run", "--no-cache",
                         "--shard-index", str(index),
                         "--shard-count", "2"]) == 0
            lines.extend(capsys.readouterr().out.strip().splitlines())
        assert len(lines) == 4
        assert len(set(lines)) == 4

    def test_missing_spec_is_exit_2(self, tmp_path, capsys):
        assert main(["campaign", str(tmp_path / "none.toml")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_bad_shard_is_exit_2(self, spec_path, capsys):
        assert main(["campaign", spec_path, "--shard-index", "9",
                     "--shard-count", "2", "--no-cache"]) == 2

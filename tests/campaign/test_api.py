"""The redesigned public API: instances, targets, expansion, and the
mechanism registry it rests on."""

import pytest

from repro.campaign import (
    FILTER_SETS,
    CampaignSpec,
    Instance,
    Target,
    axes_instances,
    standard_instances,
)
from repro.core.config import APPROACHES, InstrumentationConfig
from repro.core.mechanism import (
    MechanismRegistration,
    create_mechanism,
    get_mechanism,
    handle_mechanism_flag,
    mechanism_names,
    register_mechanism,
)
from repro.errors import ConfigError
from repro.experiments.common import CONFIG_LABELS, config_for


class TestInstance:
    def test_canonical_labels_match_experiment_harness(self):
        # every canonical CONFIG_LABELS label round-trips: label ->
        # Instance -> same label AND bit-identical configuration
        for label in CONFIG_LABELS:
            instance = Instance.from_label(label)
            assert instance.label == label
            assert instance.config() == config_for(label)

    def test_baseline_has_no_config(self):
        assert Instance("baseline").config() is None
        assert Instance("noop").is_baseline

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ConfigError, match="unknown approach"):
            Instance("boundsguard")

    def test_unknown_filter_rejected(self):
        with pytest.raises(ConfigError, match="unknown check filter"):
            Instance("softbound", filters=("alias",))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown VM engine"):
            Instance("softbound", engine="jit")

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigError, match="unknown configuration"):
            Instance.from_label("softbound-turbo")

    def test_name_includes_engine(self):
        assert Instance("softbound", filters=("dominance",),
                        engine="interp").name == "softbound@interp"

    def test_parse_label_form(self):
        instance = Instance.parse({"label": "lowfat-ranges",
                                   "engine": "interp"})
        assert instance.mechanism == "lowfat"
        assert instance.filters == ("dominance", "ranges")
        assert instance.engine == "interp"

    def test_parse_explicit_form(self):
        instance = Instance.parse({"mechanism": "softbound",
                                   "filters": "ranges",
                                   "mode": "full"})
        assert instance.label == "softbound-ranges"

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown instance key"):
            Instance.parse({"mechanism": "softbound", "turbo": True})
        with pytest.raises(ConfigError, match="cannot also set"):
            Instance.parse({"label": "softbound", "mode": "full"})

    def test_config_overrides_applied(self):
        instance = Instance("softbound", filters=("dominance",),
                            config_overrides={
                                "sb_missing_metadata_wide": True})
        config = instance.config()
        assert config.sb_missing_metadata_wide is True
        assert "sb_missing_metadata_wide=True" in instance.label


class TestExpansion:
    def test_expansion_is_deterministic_and_order_independent(self):
        instances = standard_instances(
            ("baseline", "softbound", "lowfat-ranges"),
            engines=("compiled", "interp"))
        targets = [Target("164gzip"), Target("181mcf")]
        forward = CampaignSpec("s", instances, targets).expand()
        backward = CampaignSpec("s", list(reversed(instances)),
                                list(reversed(targets))).expand()
        assert [c.id for c in forward] == [c.id for c in backward]
        assert len(forward) == 6 * 2

    def test_duplicate_cells_collapse(self):
        instances = standard_instances(("baseline", "baseline"))
        spec = CampaignSpec("s", instances, [Target("164gzip")])
        assert len(spec.expand()) == 1

    def test_axes_product_collapses_baseline(self):
        instances = axes_instances(
            mechanisms=("baseline", "softbound", "lowfat"),
            filters=("unopt", "dominance", "ranges"),
            engines=("compiled", "interp"))
        # 1 baseline + 3 softbound + 3 lowfat per engine
        assert len(instances) == 14
        names = [i.name for i in instances]
        assert names.count("baseline@compiled") == 1
        assert names.count("baseline@interp") == 1

    def test_axes_unknown_filter_rejected(self):
        with pytest.raises(ConfigError, match="unknown filter-axis"):
            axes_instances(mechanisms=("softbound",), filters=("turbo",))

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="no instances"):
            CampaignSpec("s", [], [Target("164gzip")])
        with pytest.raises(ConfigError, match="no targets"):
            CampaignSpec("s", standard_instances(("baseline",)), [])

    def test_unknown_workload_fails_at_request_time(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            Target("999nope").workload()


class TestRegistry:
    def test_every_builtin_round_trips(self):
        # the registry replaces the old APPROACHES tuple: every
        # registered name builds a working config and mechanism
        assert set(mechanism_names()) == {"noop", "softbound", "lowfat"}
        for name in mechanism_names():
            registration = get_mechanism(name)
            assert isinstance(registration, MechanismRegistration)
            config = InstrumentationConfig(approach=name)
            mechanism = create_mechanism(config)
            if name == "noop":
                assert mechanism is None
            else:
                assert mechanism is not None

    def test_approaches_attribute_still_works(self):
        # legacy import surface: config.APPROACHES is now a registry view
        assert set(APPROACHES) == set(mechanism_names())

    def test_unknown_name_is_config_error(self):
        with pytest.raises(ConfigError, match="registered mechanisms"):
            get_mechanism("boundsguard")
        with pytest.raises(ConfigError):
            InstrumentationConfig(approach="boundsguard")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mechanism("softbound", factory=lambda config: None)

    def test_flag_handlers_consulted(self):
        kwargs = {}
        assert handle_mechanism_flag("-mi-sb-size-zero-wide-upper", kwargs)
        assert kwargs["sb_size_zero_wide_upper"] is True
        assert not handle_mechanism_flag("-mi-unknown-flag", {})


class TestLegacyFlagParsing:
    """Golden test: the artifact's -mi-* flag surface parses through
    the registry exactly as the pre-registry parser did."""

    GOLDEN = {
        ("-mi-config=softbound",):
            InstrumentationConfig(approach="softbound"),
        ("-mi-config=lowfat", "-mi-opt-dominance"):
            InstrumentationConfig(approach="lowfat", opt_dominance=True),
        ("-mi-config=softbound", "-mi-opt-dominance", "-mi-opt-ranges"):
            InstrumentationConfig(approach="softbound", opt_dominance=True,
                                  opt_ranges=True),
        ("-mi-config=softbound", "-mi-mode=geninvariants"):
            InstrumentationConfig(approach="softbound",
                                  mode="geninvariants"),
        ("-mi-config=softbound", "-mi-sb-size-zero-wide-upper"):
            InstrumentationConfig(approach="softbound",
                                  sb_size_zero_wide_upper=True),
        ("-mi-config=softbound", "-mi-sb-inttoptr-wide-bounds"):
            InstrumentationConfig(approach="softbound",
                                  sb_inttoptr_wide_bounds=True),
        ("-mi-config=lowfat",
         "-mi-lf-transform-common-to-weak-linkage"):
            InstrumentationConfig(
                approach="lowfat",
                lf_transform_common_to_weak_linkage=True),
        ("-mi-config=softbound", "-mi-policy-ignore-inline-asm"):
            InstrumentationConfig(approach="softbound",
                                  policy_ignore_inline_asm=True),
        ("-mi-config=softbound", "-mi-sb-missing-metadata-wide"):
            InstrumentationConfig(approach="softbound",
                                  sb_missing_metadata_wide=True),
        ("-mi-config=softbound", "-mi-sb-wrapper-checks"):
            InstrumentationConfig(approach="softbound",
                                  sb_wrapper_checks=True),
    }

    def test_golden_flag_combinations(self):
        for flags, expected in self.GOLDEN.items():
            assert InstrumentationConfig.from_flags(list(flags)) == expected

    def test_unknown_flag_still_rejected(self):
        with pytest.raises(ConfigError, match="unknown MemInstrument"):
            InstrumentationConfig.from_flags(
                ["-mi-config=softbound", "-mi-sb-enable-turbo"])

    def test_unknown_flag_exits_2_without_traceback(self, capsys):
        from repro.cli import main

        code = main(["run", "/dev/null", "-mi-config=softbound",
                     "-mi-sb-enable-turbo"])
        assert code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert "unknown MemInstrument" in err

    def test_unknown_mechanism_name_exits_2(self, capsys):
        from repro.cli import main

        code = main(["run", "/dev/null", "-mi-config=boundsguard"])
        assert code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert "registered mechanisms" in err

"""Cross-run regression tracking over BENCH_*.json time series."""

import copy
import json

import pytest

from repro.campaign import (
    append_entry,
    compare_entries,
    find_regressions,
    load_history,
)
from repro.campaign.run import CampaignResult, CellResult
from repro.errors import ConfigError
from repro.experiments.common import BenchResult


def _bench(label, cycles, status="exit"):
    result = BenchResult.failed("w", label, "VectorizerStart", "x")
    result.cycles = cycles
    result.status = status
    result.ok = status == "exit"
    return result


def _result(cycles_by_label, spec_name="camp", shard_index=0,
            shard_count=1):
    cells = [
        CellResult(instance=f"{label}@compiled", target="w", label=label,
                   engine="compiled", result=_bench(label, cycles))
        for label, cycles in cycles_by_label.items()
    ]
    return CampaignResult(spec_name=spec_name, shard_index=shard_index,
                          shard_count=shard_count, cells=cells,
                          executed_jobs=len(cells), cache_hits=0)


class TestSeries:
    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"baseline": 100, "softbound": 200}))
        append_entry(path, _result({"baseline": 100, "softbound": 200}))
        doc = load_history(path)
        assert doc["campaign"] == "camp"
        assert [e["sequence"] for e in doc["entries"]] == [0, 1]

    def test_malformed_history_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ConfigError, match="malformed"):
            load_history(path)

    def test_entry_records_overheads(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        entry = append_entry(path,
                             _result({"baseline": 100, "softbound": 250}))
        assert entry["overheads"]["softbound@compiled"] == pytest.approx(2.5)


class TestRegressions:
    def test_identical_runs_are_clean(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        for _ in range(2):
            append_entry(path, _result({"baseline": 100,
                                        "softbound": 200}))
        assert find_regressions(path) == []

    def test_cycle_increase_flagged(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"baseline": 100, "softbound": 200}))
        append_entry(path, _result({"baseline": 100, "softbound": 201}))
        regressions = find_regressions(path)
        assert any(r.kind == "cycles"
                   and r.subject == "softbound@compiled|w"
                   for r in regressions)

    def test_cycle_decrease_is_fine(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"baseline": 100, "softbound": 200}))
        append_entry(path, _result({"baseline": 100, "softbound": 150}))
        assert find_regressions(path) == []

    def test_overhead_regression_flagged(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"baseline": 100, "softbound": 200}))
        # faster baseline, same instrumented run -> overhead ratio up
        append_entry(path, _result({"baseline": 80, "softbound": 200}))
        kinds = {r.kind for r in find_regressions(path)}
        assert "overhead" in kinds
        assert "cycles" not in kinds

    def test_status_regression_flagged(self):
        good = {"cells": {"a|w": {"cycles": 10, "checks": 0,
                                  "status": "exit"}},
                "overheads": {}}
        bad = copy.deepcopy(good)
        bad["cells"]["a|w"]["status"] = "violation"
        regressions = compare_entries(good, bad)
        assert [r.kind for r in regressions] == ["status"]

    def test_new_cells_do_not_flag(self):
        previous = {"cells": {}, "overheads": {}}
        latest = {"cells": {"a|w": {"cycles": 10, "checks": 0,
                                    "status": "exit"}},
                  "overheads": {"a": 2.0}}
        assert compare_entries(previous, latest) == []

    def test_shards_compared_against_same_shard(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"softbound": 100}, shard_index=0,
                                   shard_count=2))
        append_entry(path, _result({"softbound": 999}, shard_index=1,
                                   shard_count=2))
        # shard 1's latest entry has no same-shard predecessor with
        # those cells; shard 0's 100 cycles must not be compared
        # against shard 1's 999
        append_entry(path, _result({"softbound": 999}, shard_index=1,
                                   shard_count=2))
        assert find_regressions(path) == []

    def test_single_entry_has_no_regressions(self, tmp_path):
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"softbound": 100}))
        assert find_regressions(path) == []

    def test_live_series_round_trip(self, tmp_path):
        # history written by one process is comparable after reload
        path = tmp_path / "BENCH_camp.json"
        append_entry(path, _result({"baseline": 100, "softbound": 200}))
        document = json.loads(path.read_text())
        append_entry(path, _result({"baseline": 100, "softbound": 300}))
        kinds = sorted(r.kind for r in find_regressions(path))
        assert kinds == ["cycles", "overhead"]
        assert document["entries"][0]["cells"]

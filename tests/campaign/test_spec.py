"""TOML/JSON campaign spec parsing and validation."""

import json

import pytest

from repro.campaign import load_spec, parse_spec
from repro.campaign import spec as spec_mod
from repro.errors import ConfigError

needs_tomllib = pytest.mark.skipif(
    spec_mod.tomllib is None,
    reason="TOML specs need Python 3.11+ (tomllib)")

TOML_SPEC = """
name = "nightly"
max_instructions = 1000000

[axes]
mechanisms = ["baseline", "softbound", "lowfat"]
filters    = ["unopt", "dominance", "ranges"]
engines    = ["compiled", "interp"]

[[instance]]
label = "softbound-meta"

[targets]
workloads = ["164gzip", "181mcf"]

[[target]]
name = "inline"
source = "int main() { print_i64(1); return 0; }"
"""


@needs_tomllib
class TestToml:
    def test_full_spec(self, tmp_path):
        path = tmp_path / "nightly.toml"
        path.write_text(TOML_SPEC)
        spec = load_spec(path)
        assert spec.name == "nightly"
        assert spec.max_instructions == 1_000_000
        # 7 axis instances x 2 engines + 1 explicit = 15
        assert len(spec.instances) == 15
        assert len(spec.targets) == 3
        assert len(spec.expand()) == 15 * 3

    def test_invalid_toml_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ConfigError, match="invalid TOML"):
            load_spec(path)


class TestJson:
    def _load(self, tmp_path, doc):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        return load_spec(path)

    def test_json_spec(self, tmp_path):
        spec = self._load(tmp_path, {
            "axes": {"mechanisms": ["baseline", "softbound"]},
            "targets": {"workloads": ["164gzip"]},
        })
        assert spec.name == "spec"
        assert len(spec.expand()) == 2

    def test_workloads_all(self, tmp_path):
        from repro.workloads import all_names

        spec = self._load(tmp_path, {
            "axes": {"mechanisms": ["baseline"]},
            "targets": {"workloads": "all"},
        })
        assert len(spec.targets) == len(all_names())

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("{}")
        with pytest.raises(ConfigError, match=r"\.toml or \.json"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_spec(tmp_path / "absent.json")


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="unknown campaign spec key"):
            parse_spec({"axes": {"mechanisms": ["baseline"]},
                        "targets": {"workloads": ["164gzip"]},
                        "turbo": True})

    def test_unknown_axes_key(self):
        with pytest.raises(ConfigError, match="unknown \\[axes\\] key"):
            parse_spec({"axes": {"mechanisms": ["baseline"],
                                 "speed": ["fast"]},
                        "targets": {"workloads": ["164gzip"]}})

    def test_axes_need_mechanisms(self):
        with pytest.raises(ConfigError, match="needs at least"):
            parse_spec({"axes": {"engines": ["compiled"]},
                        "targets": {"workloads": ["164gzip"]}})

    def test_no_instances_rejected(self):
        with pytest.raises(ConfigError, match="no instances"):
            parse_spec({"targets": {"workloads": ["164gzip"]}})

    def test_no_targets_rejected(self):
        with pytest.raises(ConfigError, match="no targets"):
            parse_spec({"axes": {"mechanisms": ["baseline"]}})

    def test_target_needs_exactly_one_source_form(self):
        base = {"axes": {"mechanisms": ["baseline"]}}
        with pytest.raises(ConfigError, match="exactly one of"):
            parse_spec({**base, "target": [{"name": "x"}]})
        with pytest.raises(ConfigError, match="exactly one of"):
            parse_spec({**base, "target": [{"name": "x", "source": "s",
                                            "sources": {"a": "s"}}]})

    def test_unknown_mechanism_in_axes(self):
        with pytest.raises(ConfigError, match="unknown approach"):
            parse_spec({"axes": {"mechanisms": ["boundsguard"]},
                        "targets": {"workloads": ["164gzip"]}})

    def test_duplicate_instances_deduped(self):
        spec = parse_spec({
            "axes": {"mechanisms": ["baseline", "softbound"]},
            "instance": [{"label": "softbound"}],
            "targets": {"workloads": ["164gzip"]},
        })
        assert len(spec.instances) == 2

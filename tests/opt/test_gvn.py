"""Tests for GVN: CSE, load elimination, check deduplication."""

from repro.core import InstrumentationConfig, instrument_module
from repro.frontend import compile_source
from repro.ir import (
    BinOp,
    Call,
    FunctionType,
    I64,
    IRBuilder,
    Load,
    Module,
    VOID,
    ptr,
    verify_module,
)
from repro.opt import DCE, GVN, Mem2Reg, SimplifyCFG
from repro.vm import VirtualMachine


def _fresh(params=(I64, I64)):
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(I64, list(params)))
    b = IRBuilder(fn.add_block("entry"))
    return mod, fn, b


class TestPureCSE:
    def test_identical_binops_merged(self):
        mod, fn, b = _fresh()
        x, y = fn.args
        a1 = b.add(x, y)
        a2 = b.add(x, y)
        b.ret(b.mul(a1, a2))
        GVN().run(mod)
        adds = [i for i in fn.entry.instructions if isinstance(i, BinOp)
                and i.opcode == "add"]
        assert len(adds) == 1

    def test_commutative_operands_normalized(self):
        mod, fn, b = _fresh()
        x, y = fn.args
        a1 = b.add(x, y)
        a2 = b.add(y, x)
        b.ret(b.mul(a1, a2))
        GVN().run(mod)
        adds = [i for i in fn.entry.instructions if isinstance(i, BinOp)
                and i.opcode == "add"]
        assert len(adds) == 1

    def test_noncommutative_not_swapped(self):
        mod, fn, b = _fresh()
        x, y = fn.args
        s1 = b.sub(x, y)
        s2 = b.sub(y, x)
        b.ret(b.mul(s1, s2))
        GVN().run(mod)
        subs = [i for i in fn.entry.instructions if isinstance(i, BinOp)]
        assert len([s for s in subs if s.opcode == "sub"]) == 2

    def test_dominating_expression_reused_across_blocks(self):
        mod, fn, b = _fresh()
        x, y = fn.args
        then = fn.add_block("then")
        a1 = b.add(x, y)
        cond = b.icmp("sgt", a1, b.const_i64(0))
        done = fn.add_block("done")
        b.cond_br(cond, then, done)
        b.position_at_end(then)
        a2 = b.add(x, y)  # dominated duplicate
        b.ret(a2)
        b.position_at_end(done)
        b.ret(b.const_i64(0))
        GVN().run(mod)
        then_adds = [i for i in then.instructions if isinstance(i, BinOp)]
        assert not then_adds

    def test_sibling_blocks_not_merged(self):
        mod, fn, b = _fresh()
        x, y = fn.args
        left = fn.add_block("left")
        right = fn.add_block("right")
        cond = b.icmp("sgt", x, b.const_i64(0))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        b.ret(b.add(x, y))
        b.position_at_end(right)
        b.ret(b.add(x, y))  # no dominance: must survive
        GVN().run(mod)
        assert any(isinstance(i, BinOp) for i in left.instructions)
        assert any(isinstance(i, BinOp) for i in right.instructions)


class TestLoadElimination:
    def _compile(self, src):
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Mem2Reg().run(mod)
        return mod

    def _count_loads(self, mod, name="main"):
        return sum(1 for i in mod.get_function(name).instructions()
                   if isinstance(i, Load))

    def test_repeated_load_same_block(self):
        mod = self._compile(r"""
        int g;
        int main() { return g + g; }""")
        before = self._count_loads(mod)
        GVN().run(mod)
        assert self._count_loads(mod) == before - 1

    def test_store_invalidates_load(self):
        mod = self._compile(r"""
        int g; int h;
        int main() {
            int a = g;
            h = 1;          // may alias g (conservative)
            int b = g;
            return a + b;
        }""")
        before = self._count_loads(mod)
        GVN().run(mod)
        assert self._count_loads(mod) == before  # no elimination

    def test_store_to_load_forwarding(self):
        mod = self._compile(r"""
        int g;
        int main() { g = 7; return g; }""")
        GVN().run(mod)
        assert self._count_loads(mod) == 0

    def test_no_forwarding_across_loop_header(self):
        # Regression test: memory facts must not flow into join blocks;
        # the loop back edge carries stores.
        src = r"""
        int main() {
            int *buf = (int *) malloc(sizeof(int) * 8);
            int i = 0;
            buf[0] = 0;
            while (buf[0] < 5) {
                buf[0] = buf[0] + 1;
                i = i + 1;
            }
            print_i64(i);
            free((void*)buf);
            return 0;
        }"""
        mod = self._compile(src)
        GVN().run(mod)
        verify_module(mod)
        vm = VirtualMachine(mod, max_instructions=100_000)
        assert vm.run() == 0
        assert vm.output == ["5"]

    def test_call_clobbers_memory(self):
        mod = self._compile(r"""
        int g;
        void touch();
        int main() {
            int a = g;
            touch();
            int b = g;
            return a + b;
        }""")
        before = self._count_loads(mod)
        GVN().run(mod)
        assert self._count_loads(mod) == before


class TestCheckDeduplication:
    def _instrumented(self, src, approach="softbound"):
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Mem2Reg().run(mod)
        config = (InstrumentationConfig.softbound() if approach == "softbound"
                  else InstrumentationConfig.lowfat())
        instrument_module(mod, config)
        return mod

    def _count_checks(self, mod):
        count = 0
        for fn in mod.functions.values():
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    callee = inst.callee_function
                    if callee is not None and "mi_check" in callee.attributes:
                        count += 1
        return count

    def test_same_block_duplicate_checks_removed(self):
        mod = self._instrumented(r"""
        int g;
        int main() { g = 1; g = 2; return 0; }""")
        before = self._count_checks(mod)
        GVN().run(mod)
        after = self._count_checks(mod)
        assert after < before

    def test_same_block_reread_fully_recovered(self):
        # Same-block re-read: GVN dedups the identical check first,
        # after which no barrier separates the loads -- both the
        # duplicate check and the duplicate load disappear.
        mod = self._instrumented(r"""
        int g;
        int main() { return g + g; }""")
        GVN().run(mod)
        verify_module(mod)
        main = mod.get_function("main")
        loads = [i for i in main.instructions() if isinstance(i, Load)]
        assert len(loads) == 1
        assert self._count_checks(mod) >= 1

    def test_surviving_check_blocks_load_cse(self):
        # A check that survives (different access width -> different
        # args) is an opaque call: the second load must not be merged
        # across it.
        mod = self._instrumented(r"""
        long g;
        int main() {
            int lo = *(int *)&g;     // 4-byte access
            long full = g;           // 8-byte access: different check
            return lo + (int)full;
        }""")
        GVN().run(mod)
        verify_module(mod)
        main = mod.get_function("main")
        loads = [i for i in main.instructions() if isinstance(i, Load)]
        assert len(loads) == 2
        assert self._count_checks(mod) == 2

"""Tests for InstCombine: constant folding and peepholes.

Includes a differential property test: folding a binop must agree with
the interpreter's evaluation of the same operation.
"""

from hypothesis import given, strategies as st

from repro.frontend import compile_source
from repro.ir import (
    BinOp,
    Cast,
    ConstantInt,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    ptr,
    verify_module,
)
from repro.opt import DCE, InstCombine
from repro.opt.instcombine import fold_icmp, fold_int_binop
from repro.vm.interpreter import VirtualMachine


def _fresh(params=(I64, I64)):
    mod = Module("t")
    fn = mod.add_function("f", FunctionType(I64, list(params)))
    b = IRBuilder(fn.add_block("entry"))
    return mod, fn, b


class TestFolds:
    def test_constant_arithmetic(self):
        mod, fn, b = _fresh(())
        v = b.add(b.const_i64(20), b.const_i64(22))
        b.ret(v)
        InstCombine().run(mod)
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 42

    def test_identities(self):
        mod, fn, b = _fresh()
        x = fn.args[0]
        v = b.add(x, b.const_i64(0))          # x + 0 -> x
        w = b.mul(v, b.const_i64(1))          # x * 1 -> x
        y = b.binop("sub", w, w)              # x - x -> 0
        b.ret(y)
        InstCombine().run(mod)
        DCE().run(mod)
        assert len(fn.entry.instructions) == 1  # just the ret
        ret = fn.entry.instructions[0]
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 0

    def test_mul_zero(self):
        mod, fn, b = _fresh()
        v = b.mul(fn.args[0], b.const_i64(0))
        b.ret(v)
        InstCombine().run(mod)
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 0

    def test_constant_commutes_right(self):
        mod, fn, b = _fresh()
        v = b.add(b.const_i64(5), fn.args[0])
        w = b.add(v, b.const_i64(1))
        b.ret(w)
        InstCombine().run(mod)
        first = fn.entry.instructions[0]
        assert isinstance(first, BinOp)
        assert isinstance(first.rhs, ConstantInt)

    def test_division_by_zero_not_folded(self):
        mod, fn, b = _fresh(())
        v = b.binop("sdiv", b.const_i64(1), b.const_i64(0))
        b.ret(v)
        InstCombine().run(mod)
        assert isinstance(fn.entry.instructions[0], BinOp)  # survives

    def test_inttoptr_of_ptrtoint_folds(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(ptr(I32), [ptr(I32)]))
        b = IRBuilder(fn.add_block("entry"))
        as_int = b.ptrtoint(fn.args[0], I64)
        back = b.inttoptr(as_int, ptr(I32))
        b.ret(back)
        InstCombine().run(mod)
        DCE().run(mod)
        ret = fn.entry.instructions[-1]
        assert ret.value is fn.args[0]

    def test_trunc_of_ext_folds(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, [I32]))
        b = IRBuilder(fn.add_block("entry"))
        wide = b.sext(fn.args[0], I64)
        narrow = b.trunc(wide, I32)
        b.ret(narrow)
        InstCombine().run(mod)
        ret = fn.entry.instructions[-1]
        assert ret.value is fn.args[0]

    def test_select_constant_condition(self):
        mod, fn, b = _fresh()
        from repro.ir import I1

        sel = b.select(ConstantInt(I1, 1), fn.args[0], fn.args[1])
        b.ret(sel)
        InstCombine().run(mod)
        ret = fn.entry.instructions[-1]
        assert ret.value is fn.args[0]

    def test_icmp_same_operand(self):
        mod, fn, b = _fresh()
        c = b.icmp("sle", fn.args[0], fn.args[0])
        v = b.select(c, b.const_i64(1), b.const_i64(2))
        b.ret(v)
        InstCombine().run(mod)
        ret = fn.entry.instructions[-1]
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 1


_i64 = st.integers(0, (1 << 64) - 1)
_ops = st.sampled_from(
    ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr",
     "sdiv", "udiv", "srem", "urem"]
)


class TestFoldMatchesInterpreter:
    @given(_ops, _i64, _i64)
    def test_binop_fold_agrees_with_vm(self, op, lhs, rhs):
        folded = fold_int_binop(op, lhs, rhs, 64)
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I64, []))
        b = IRBuilder(fn.add_block("entry"))
        v = b.binop(op, b.const_i64(lhs), b.const_i64(rhs))
        b.ret(v)
        vm = VirtualMachine(mod, install_default_libc=False)
        if folded is None:
            assert rhs == 0 and op in ("sdiv", "udiv", "srem", "urem")
            return
        vm.load_globals()
        result = vm.call_function(fn, [])
        assert result == folded

    @given(
        st.sampled_from(["eq", "ne", "slt", "sle", "sgt", "sge",
                         "ult", "ule", "ugt", "uge"]),
        _i64, _i64,
    )
    def test_icmp_fold_agrees_with_vm(self, pred, lhs, rhs):
        folded = fold_icmp(pred, lhs, rhs, 64)
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I64, []))
        b = IRBuilder(fn.add_block("entry"))
        c = b.icmp(pred, b.const_i64(lhs), b.const_i64(rhs))
        b.ret(b.zext(c, I64))
        vm = VirtualMachine(mod, install_default_libc=False)
        vm.load_globals()
        assert vm.call_function(fn, []) == folded

"""Tests for mem2reg (SSA construction)."""

from repro.frontend import compile_source
from repro.ir import Alloca, Load, Phi, Store, verify_module
from repro.opt import Mem2Reg, SimplifyCFG
from repro.vm import VirtualMachine


def promote(src):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    verify_module(mod)
    return mod


def run(mod):
    vm = VirtualMachine(mod, max_instructions=2_000_000)
    return vm.run(), vm.output


class TestPromotion:
    def test_scalars_promoted(self):
        mod = promote(r"""
        int main() {
            int a = 1;
            int b = a + 2;
            return b;
        }""")
        main = mod.get_function("main")
        assert not any(isinstance(i, Alloca) for i in main.instructions())
        assert not any(isinstance(i, Load) for i in main.instructions())

    def test_address_taken_not_promoted(self):
        mod = promote(r"""
        void set(int *p) { *p = 7; }
        int main() {
            int a = 1;
            set(&a);
            return a;
        }""")
        main = mod.get_function("main")
        assert any(isinstance(i, Alloca) for i in main.instructions())
        assert run(mod)[0] == 7

    def test_arrays_not_promoted(self):
        mod = promote(r"""
        int main() {
            int a[4];
            a[0] = 3;
            return a[0];
        }""")
        main = mod.get_function("main")
        assert any(isinstance(i, Alloca) for i in main.instructions())

    def test_phi_placement_at_join(self):
        mod = promote(r"""
        int main() {
            int x = 0;
            int c = 1;
            if (c) x = 1; else x = 2;
            return x;
        }""")
        main = mod.get_function("main")
        phis = [i for i in main.instructions() if isinstance(i, Phi)]
        assert len(phis) >= 1
        assert run(mod)[0] == 1

    def test_loop_variable_phi(self):
        mod = promote(r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 10; i++) s += i;
            print_i64(s);
            return 0;
        }""")
        assert run(mod)[1] == ["45"]
        main = mod.get_function("main")
        assert not any(isinstance(i, Alloca) for i in main.instructions())

    def test_read_before_write_gets_undef(self):
        # Valid IR even when a path reads uninitialized locals.
        mod = promote(r"""
        int main() {
            int x;
            int c = 0;
            if (c) x = 1;
            return c;
        }""")
        assert run(mod)[0] == 0

    def test_semantics_preserved_complex(self):
        src = r"""
        int collatz(int n) {
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0) n = n / 2;
                else n = 3 * n + 1;
                steps++;
            }
            return steps;
        }
        int main() { print_i64(collatz(27)); return 0; }"""
        mod_plain = compile_source(src)
        mod_ssa = promote(src)
        assert run(mod_plain)[1] == run(mod_ssa)[1] == ["111"]

"""Differential tests for the full pipeline: -O3 must preserve program
behaviour, at every extension-point configuration, on a battery of
MiniC programs."""

import pytest

from repro.frontend import compile_source
from repro.ir import verify_module
from repro.opt import EXTENSION_POINTS, build_pipeline, optimize
from repro.vm import VirtualMachine

PROGRAMS = {
    "arith": r"""
        int main() {
            long acc = 0;
            for (int i = 1; i <= 20; i++) acc = acc * 3 % 1000003 + i;
            print_i64(acc);
            return 0;
        }""",
    "nested-loops": r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 10; i++)
                for (int j = 0; j < 10; j++)
                    if ((i + j) % 3 == 0) s += i * j;
            print_i64(s);
            return 0;
        }""",
    "heap-sort": r"""
        int main() {
            int n = 30;
            int *a = (int *) malloc(sizeof(int) * n);
            int seed = 5;
            for (int i = 0; i < n; i++) {
                seed = (seed * 1103515245 + 12345) & 2147483647;
                a[i] = seed % 100;
            }
            for (int i = 0; i < n; i++)
                for (int j = i + 1; j < n; j++)
                    if (a[j] < a[i]) { int t = a[i]; a[i] = a[j]; a[j] = t; }
            long check = 0;
            for (int i = 0; i < n; i++) check = check * 7 + a[i];
            print_i64(check);
            free((void*)a);
            return 0;
        }""",
    "structs-and-helpers": r"""
        struct vec { double x; double y; };
        double dot(struct vec *a, struct vec *b) {
            return a->x * b->x + a->y * b->y;
        }
        int main() {
            struct vec u; struct vec v;
            u.x = 1.5; u.y = 2.0; v.x = -0.5; v.y = 4.0;
            double total = 0.0;
            for (int i = 0; i < 8; i++) {
                total += dot(&u, &v);
                u.x += 0.25;
            }
            print_f64(total);
            return 0;
        }""",
    "recursion": r"""
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { print_i64(ack(2, 3)); return 0; }""",
    "strings": r"""
        int main() {
            char *buf = (char *) malloc(32);
            strcpy(buf, "mini");
            buf[4] = 'c'; buf[5] = 0;
            print_str(buf);
            print_i64(strlen(buf));
            free((void*)buf);
            return 0;
        }""",
    "globals-and-statics": r"""
        int counter = 3;
        int table[5];
        int bump() { counter++; return counter; }
        int main() {
            for (int i = 0; i < 5; i++) table[i] = bump();
            long s = 0;
            for (int i = 0; i < 5; i++) s = s * 10 + table[i];
            print_i64(s);
            return 0;
        }""",
    "mixed-float": r"""
        int main() {
            double acc = 1.0;
            for (int i = 1; i < 12; i++) {
                acc = acc + 1.0 / (double)i;
                if (acc > 3.0) acc = acc - 0.5;
            }
            print_f64(acc);
            print_f64(sqrt(acc));
            return 0;
        }""",
}


def execute(mod):
    vm = VirtualMachine(mod, max_instructions=5_000_000)
    return vm.run(), list(vm.output)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_o3_preserves_behaviour(name):
    src = PROGRAMS[name]
    reference = execute(compile_source(src))
    mod = compile_source(src)
    build_pipeline(3, verify_each=True).run(mod)
    verify_module(mod)
    assert execute(mod) == reference


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("level", [0, 1, 2])
def test_lower_levels_preserve_behaviour(name, level):
    src = PROGRAMS[name]
    reference = execute(compile_source(src))
    mod = compile_source(src)
    build_pipeline(level, verify_each=True).run(mod)
    assert execute(mod) == reference


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_o3_not_slower(name):
    src = PROGRAMS[name]
    mod0 = compile_source(src)
    code0, out0 = execute(mod0)
    vm0 = VirtualMachine(compile_source(src), max_instructions=5_000_000)
    vm0.run()
    mod3 = compile_source(src)
    optimize(mod3, 3)
    vm3 = VirtualMachine(mod3, max_instructions=5_000_000)
    vm3.run()
    assert vm3.stats.cycles <= vm0.stats.cycles


def test_extension_points_all_valid():
    with pytest.raises(ValueError):
        build_pipeline(3, instrument=lambda m: None, extension_point="Nope")
    for ep in EXTENSION_POINTS:
        seen = []
        pm = build_pipeline(3, instrument=seen.append, extension_point=ep)
        mod = compile_source("int main() { return 0; }")
        pm.run(mod)
        assert len(seen) == 1


def test_instrument_hook_position_matters():
    """The hook at ModuleOptimizerEarly runs before the inliner; at
    VectorizerStart it runs after (calls already inlined)."""
    from repro.ir import Call

    src = r"""
    int tiny(int x) { return x + 1; }
    int main() { return tiny(41); }"""
    observed = {}

    def snoop_calls(tag):
        def hook(mod):
            main = mod.get_function("main")
            observed[tag] = sum(
                1 for i in main.instructions()
                if isinstance(i, Call) and i.callee_function is not None
                and not i.callee_function.native
            )
        return hook

    for ep, tag in [("ModuleOptimizerEarly", "early"), ("VectorizerStart", "late")]:
        mod = compile_source(src)
        build_pipeline(3, instrument=snoop_calls(tag), extension_point=ep).run(mod)
    assert observed["early"] == 1
    assert observed["late"] == 0


def test_pipeline_is_deterministic():
    """Repeated compiles of the same unit must print identically.

    Regressions here came from Python set iteration leaking into the
    IR: mem2reg's phi placement order (names) and LICM's hoist order
    (preheader instruction order).  Check-site statistics are compared
    across independent compiles by the fuzz oracle, so the whole
    pipeline must be a pure function of the source.
    """
    src = PROGRAMS["heap-sort"]
    outputs = set()
    for _ in range(3):
        mod = compile_source(src)
        build_pipeline(3).run(mod)
        outputs.add(str(mod))
    assert len(outputs) == 1

"""Tests for SimplifyCFG, DCE, and the inliner."""

import pytest

from repro.frontend import compile_source
from repro.ir import (
    Br,
    Call,
    CondBr,
    ConstantInt,
    FunctionType,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    verify_module,
    ptr,
)
from repro.opt import DCE, GVN, Inliner, Mem2Reg, SimplifyCFG
from repro.opt.inline import inline_call
from repro.vm import VirtualMachine


def run(mod, max_instructions=1_000_000, entry="main"):
    vm = VirtualMachine(mod, max_instructions=max_instructions)
    return vm.run(entry), vm.output


class TestSimplifyCFG:
    def test_unreachable_blocks_removed(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, []))
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const_i32(1))
        dead = fn.add_block("dead")
        b.position_at_end(dead)
        b.ret(b.const_i32(2))
        SimplifyCFG().run(mod)
        assert len(fn.blocks) == 1

    def test_constant_branch_folded(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, []))
        entry = fn.add_block("entry")
        taken = fn.add_block("taken")
        untaken = fn.add_block("untaken")
        b = IRBuilder(entry)
        b.cond_br(ConstantInt(I1, 1), taken, untaken)
        b.position_at_end(taken)
        b.ret(b.const_i32(1))
        b.position_at_end(untaken)
        b.ret(b.const_i32(2))
        SimplifyCFG().run(mod)
        verify_module(mod)
        assert untaken not in fn.blocks
        assert run(mod, entry="f")[0] == 1

    def test_blocks_merged(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I32, []))
        entry = fn.add_block("entry")
        tail = fn.add_block("tail")
        b = IRBuilder(entry)
        b.br(tail)
        b.position_at_end(tail)
        b.ret(b.const_i32(3))
        SimplifyCFG().run(mod)
        assert len(fn.blocks) == 1
        assert run(mod, entry="f")[0] == 3

    def test_trivial_phi_removed(self):
        src = r"""
        int main() {
            int x = 5;
            int c = 1;
            if (c) x = 5;   // both arms same value after constprop
            return x;
        }"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Mem2Reg().run(mod)
        SimplifyCFG().run(mod)
        verify_module(mod)
        assert run(mod)[0] == 5


class TestDCE:
    def test_unused_pure_removed(self):
        mod = Module("t")
        fn = mod.add_function("f", FunctionType(I64, [I64]))
        b = IRBuilder(fn.add_block("entry"))
        dead = b.add(fn.args[0], b.const_i64(1))
        deader = b.mul(dead, dead)   # chain of dead values
        b.ret(fn.args[0])
        DCE().run(mod)
        assert len(fn.entry.instructions) == 1

    def test_stores_kept(self):
        mod = compile_source("int g; int main() { g = 1; return 0; }")
        DCE().run(mod)
        from repro.ir import Store

        assert any(isinstance(i, Store)
                   for i in mod.get_function("main").instructions())

    def test_unused_readonly_call_removed(self):
        """The Section 5.4 effect: unused metadata loads disappear."""
        mod = Module("t")
        ro = mod.add_function("__sb_trie_load_base", FunctionType(I64, [I64]))
        ro.attributes.add("readonly")
        ro.native = True
        fn = mod.add_function("f", FunctionType(I64, [I64]))
        b = IRBuilder(fn.add_block("entry"))
        b.call(ro, [fn.args[0]])     # result unused
        b.ret(fn.args[0])
        DCE().run(mod)
        assert len(fn.entry.instructions) == 1

    def test_may_abort_call_kept(self):
        mod = Module("t")
        chk = mod.add_function("__chk", FunctionType(I64, [I64]))
        chk.attributes.update({"readnone", "may_abort"})
        chk.native = True
        fn = mod.add_function("f", FunctionType(I64, [I64]))
        b = IRBuilder(fn.add_block("entry"))
        b.call(chk, [fn.args[0]])    # unused result, but may abort
        b.ret(fn.args[0])
        DCE().run(mod)
        assert len(fn.entry.instructions) == 2


class TestInliner:
    def test_simple_inline(self):
        src = r"""
        int add3(int a) { return a + 3; }
        int main() { print_i64(add3(4)); return 0; }"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Mem2Reg().run(mod)
        Inliner().run(mod)
        verify_module(mod)
        main = mod.get_function("main")
        user_calls = [
            i for i in main.instructions()
            if isinstance(i, Call) and i.callee_function is not None
            and not i.callee_function.native
        ]
        assert not user_calls
        assert run(mod) == (0, ["7"])

    def test_inline_with_control_flow(self):
        src = r"""
        int mymax(int a, int b) { if (a > b) return a; return b; }
        int main() {
            print_i64(mymax(3, 9));
            print_i64(mymax(9, 3));
            return 0;
        }"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Mem2Reg().run(mod)
        Inliner().run(mod)
        verify_module(mod)
        assert run(mod) == (0, ["9", "9"])

    def test_inline_with_loop_in_callee(self):
        src = r"""
        long total(int n) {
            long s = 0;
            for (int i = 0; i < n; i++) s += i;
            return s;
        }
        int main() { print_i64(total(10)); return 0; }"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Mem2Reg().run(mod)
        Inliner().run(mod)
        verify_module(mod)
        assert run(mod) == (0, ["45"])

    def test_recursive_not_inlined(self):
        src = r"""
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { print_i64(fib(10)); return 0; }"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Inliner().run(mod)
        verify_module(mod)
        assert run(mod) == (0, ["55"])

    def test_large_function_not_inlined(self):
        lines = "\n".join(f"    x = x + {i};" for i in range(40))
        src = f"""
        int big(int x) {{
        {lines}
            return x;
        }}
        int main() {{ print_i64(big(1)); return 0; }}"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Inliner().run(mod)
        main = mod.get_function("main")
        assert any(
            isinstance(i, Call) and i.callee_function is mod.get_function("big")
            for i in main.instructions()
        )

    def test_callee_allocas_hoisted_to_caller_entry(self):
        src = r"""
        int helper(int v) { int buf[2]; buf[0] = v; return buf[0]; }
        int main() { print_i64(helper(6)); return 0; }"""
        mod = compile_source(src)
        SimplifyCFG().run(mod)
        Inliner().run(mod)
        verify_module(mod)
        from repro.ir import Alloca

        main = mod.get_function("main")
        for block in main.blocks:
            for inst in block.instructions:
                if isinstance(inst, Alloca):
                    assert block is main.entry
        assert run(mod) == (0, ["6"])

    def test_noinline_attribute_respected(self):
        src = r"""
        int f(int a) { return a + 1; }
        int main() { return f(1); }"""
        mod = compile_source(src)
        mod.get_function("f").attributes.add("noinline")
        SimplifyCFG().run(mod)
        Inliner().run(mod)
        main = mod.get_function("main")
        assert any(isinstance(i, Call) for i in main.instructions())

"""Tests for loop-invariant code motion."""

from repro.frontend import compile_source
from repro.ir import BinOp, Call, Load, verify_module
from repro.opt import GVN, LICM, Mem2Reg, SimplifyCFG
from repro.vm import VirtualMachine
from repro.analysis import LoopInfo


def prepare(src):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    return mod


def run(mod, max_instructions=1_000_000):
    vm = VirtualMachine(mod, max_instructions=max_instructions)
    return vm.run(), vm.output


def _in_loop(mod, name, predicate):
    """Instructions matching ``predicate`` inside any loop of fn."""
    fn = mod.get_function(name)
    li = LoopInfo(fn)
    found = []
    for loop in li.all_loops():
        for block in loop.blocks:
            for inst in block.instructions:
                if predicate(inst):
                    found.append(inst)
    return found


class TestHoisting:
    def test_invariant_arithmetic_hoisted(self):
        src = r"""
        long f(long a, long b) {
            long s = 0;
            for (int i = 0; i < 10; i++) s += a * b;
            return s;
        }
        int main() { print_i64(f(6, 7)); return 0; }"""
        mod = prepare(src)
        before = run(prepare(src))
        LICM().run(mod)
        verify_module(mod)
        muls = _in_loop(mod, "f", lambda i: isinstance(i, BinOp) and i.opcode == "mul")
        assert not muls
        assert run(mod) == before == (0, ["420"])

    def test_load_hoisted_from_pure_loop(self):
        # do-while: the body dominates the exit, so the load is
        # guaranteed to execute and may be hoisted.
        src = r"""
        int g = 13;
        long f(int n) {
            long s = 0;
            int i = 0;
            do { s += g; i++; } while (i < n);
            return s;
        }
        int main() { print_i64(f(10)); return 0; }"""
        mod = prepare(src)
        LICM().run(mod)
        verify_module(mod)
        loads = _in_loop(mod, "f", lambda i: isinstance(i, Load))
        assert not loads
        assert run(mod) == (0, ["130"])

    def test_conditional_load_not_hoisted(self):
        # for-loop: the body does not dominate the exit (n could be 0),
        # so the load stays put.
        src = r"""
        int g = 13;
        long f(int n) {
            long s = 0;
            for (int i = 0; i < n; i++) s += g;
            return s;
        }
        int main() { print_i64(f(10)); return 0; }"""
        mod = prepare(src)
        LICM().run(mod)
        verify_module(mod)
        loads = _in_loop(mod, "f", lambda i: isinstance(i, Load))
        assert loads
        assert run(mod) == (0, ["130"])

    def test_load_not_hoisted_when_loop_stores(self):
        src = r"""
        int g = 13; int h;
        long f(int n) {
            long s = 0;
            for (int i = 0; i < n; i++) { h = i; s += g; }
            return s;
        }
        int main() { print_i64(f(10)); return 0; }"""
        mod = prepare(src)
        LICM().run(mod)
        loads = _in_loop(mod, "f", lambda i: isinstance(i, Load))
        assert loads  # may-alias store blocks hoisting

    def test_load_not_hoisted_past_may_abort_call(self):
        """The Section 5.5 mechanism: a possibly-aborting check in the
        loop pins loads inside it."""
        from repro.ir import FunctionType, VOID, I64

        src = r"""
        int g = 13;
        void check(long x);
        long f(int n) {
            long s = 0;
            for (int i = 0; i < n; i++) { check(s); s += g; }
            return s;
        }"""
        mod = prepare(src)
        check = mod.get_function("check")
        check.attributes.update({"mi_check", "may_abort"})
        check.native = True
        LICM().run(mod)
        loads = _in_loop(mod, "f", lambda i: isinstance(i, Load))
        assert loads

    def test_division_needs_guaranteed_execution(self):
        # division in a conditional path must not be hoisted (may trap)
        src = r"""
        long f(long a, long b, int n) {
            long s = 0;
            for (int i = 0; i < n; i++) {
                if (i > 100) s += a / b;   // never executes for n<=100
            }
            return s;
        }
        int main() { long z = 0; print_i64(f(1, z, 10)); return 0; }"""
        mod = prepare(src)
        LICM().run(mod)
        verify_module(mod)
        assert run(mod) == (0, ["0"])  # no spurious division-by-zero

    def test_readnone_call_hoisted(self):
        src = r"""
        long f(long a, int n) {
            long s = 0;
            for (int i = 0; i < n; i++) s += llabs(a);
            return s;
        }
        int main() { print_i64(f(-3, 5)); return 0; }"""
        mod = prepare(src)
        LICM().run(mod)
        verify_module(mod)
        calls = _in_loop(mod, "f", lambda i: isinstance(i, Call))
        assert not calls
        assert run(mod) == (0, ["15"])

    def test_preheader_created_and_phis_fixed(self):
        src = r"""
        long f(int n, int start) {
            long s = start;
            int i = 0;
            while (i < n) { s += i; i++; }
            return s;
        }
        int main() { print_i64(f(5, 100)); return 0; }"""
        mod = prepare(src)
        before = run(prepare(src))
        LICM().run(mod)
        verify_module(mod)
        assert run(mod) == before == (0, ["110"])

"""Tests for the SoftBound and Low-Fat mechanisms (target lowering)."""

import pytest

from repro.core import (
    InstrumentationConfig,
    MemInstrumentPass,
    instrument_module,
)
from repro.frontend import compile_source
from repro.ir import Alloca, Call, Cast, Load, Store, verify_module
from repro.opt import Mem2Reg, SimplifyCFG
from repro.vm import VirtualMachine
from repro.softbound import SoftBoundRuntime
from repro.lowfat import LowFatRuntime


def prepared(src):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    return mod


def calls_to(mod, fn_name, prefix):
    fn = mod.get_function(fn_name)
    result = []
    for inst in fn.instructions():
        if isinstance(inst, Call):
            callee = inst.callee_function
            if callee is not None and callee.name.startswith(prefix):
                result.append(callee.name)
    return result


def run_with_runtime(mod, approach, max_instructions=1_000_000):
    vm = VirtualMachine(mod, max_instructions=max_instructions)
    if approach == "softbound":
        SoftBoundRuntime().install(vm)
    else:
        LowFatRuntime().install(vm)
    code = vm.run()
    return code, vm.output, vm.stats


class TestSoftBoundLowering:
    SRC = r"""
    int g[4];
    int *identity(int *p) { return p; }
    int main() {
        int *h = (int *) malloc(sizeof(int) * 4);
        h[0] = 1;
        g[0] = 2;
        int *alias = identity(h);
        print_i64(alias[0] + g[0]);
        free((void*)h);
        return 0;
    }"""

    def test_check_calls_inserted(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        assert calls_to(mod, "main", "__sb_check")

    def test_shadow_stack_protocol_at_calls(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        names = calls_to(mod, "main", "__sb_ss")
        assert "__sb_ss_enter" in names
        assert "__sb_ss_set" in names
        assert "__sb_ss_exit" in names
        assert "__sb_ss_get_ret_base" in names
        # callee reads its argument bounds, publishes return bounds
        callee_names = calls_to(mod, "identity", "__sb_ss")
        assert "__sb_ss_get_base" in callee_names
        assert "__sb_ss_set_ret" in callee_names

    def test_wrappers_installed(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        assert calls_to(mod, "main", "__sb_wrap_malloc")
        assert calls_to(mod, "main", "__sb_wrap_free")
        assert not calls_to(mod, "main", "malloc")

    def test_pointer_store_updates_trie(self):
        src = r"""
        int *slot[1];
        int main() { int x; slot[0] = &x; return 0; }"""
        mod = prepared(src)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        assert calls_to(mod, "main", "__sb_trie_store")

    def test_pointer_load_reads_trie(self):
        src = r"""
        int *slot[1];
        int main() { int x = 0; slot[0] = &x; return *slot[0]; }"""
        mod = prepared(src)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        assert calls_to(mod, "main", "__sb_trie_load_base")
        assert calls_to(mod, "main", "__sb_trie_load_bound")

    def test_geninvariants_skips_checks_keeps_metadata(self):
        src = r"""
        int *slot[1];
        int main() { int x = 0; slot[0] = &x; return *slot[0]; }"""
        mod = prepared(src)
        cfg = InstrumentationConfig.softbound(mode="geninvariants")
        instrument_module(mod, cfg, verify=True)
        assert not calls_to(mod, "main", "__sb_check")
        assert calls_to(mod, "main", "__sb_trie_store")

    def test_instrumented_program_runs_correctly(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        verify_module(mod)
        code, output, stats = run_with_runtime(mod, "softbound")
        assert code == 0
        assert output == ["3"]
        assert stats.checks_executed > 0

    def test_statistics_collected(self):
        mod = prepared(self.SRC)
        pass_ = instrument_module(mod, InstrumentationConfig.softbound())
        assert pass_.statistics.gathered_checks > 0
        assert pass_.statistics.gathered_invariants > 0
        assert "main" in pass_.per_function


class TestLowFatLowering:
    SRC = r"""
    int g[4];
    int *identity(int *p) { return p; }
    int main() {
        int *h = (int *) malloc(sizeof(int) * 4);
        int local[2];
        local[0] = 5;
        h[0] = 1;
        g[0] = 2;
        int *alias = identity(h);
        print_i64(alias[0] + g[0] + local[0]);
        free((void*)h);
        return 0;
    }"""

    def test_allocator_calls_replaced(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.lowfat(), verify=True)
        assert calls_to(mod, "main", "__lf_malloc")
        assert calls_to(mod, "main", "__lf_free")
        assert not calls_to(mod, "main", "malloc")

    def test_allocas_replaced(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.lowfat(), verify=True)
        main = mod.get_function("main")
        assert not any(isinstance(i, Alloca) for i in main.instructions())
        assert calls_to(mod, "main", "__lf_alloca")

    def test_checks_and_invariants_inserted(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.lowfat(), verify=True)
        assert calls_to(mod, "main", "__lf_check")
        assert calls_to(mod, "main", "__lf_invariant_check")  # call args, ret
        assert calls_to(mod, "identity", "__lf_invariant_check")  # ret

    def test_no_shadow_stack_or_trie(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.lowfat(), verify=True)
        assert not calls_to(mod, "main", "__sb_")

    def test_common_linkage_transformed(self):
        src = "int g; int main() { return g; }"
        mod = prepared(src)
        assert mod.get_global("g").linkage == "common"
        instrument_module(mod, InstrumentationConfig.lowfat(), verify=True)
        assert mod.get_global("g").linkage == "weak"

    def test_instrumented_program_runs_correctly(self):
        mod = prepared(self.SRC)
        instrument_module(mod, InstrumentationConfig.lowfat(), verify=True)
        code, output, stats = run_with_runtime(mod, "lowfat")
        assert code == 0
        assert output == ["8"]
        assert stats.checks_executed > 0
        assert stats.lowfat_allocs > 0

    def test_geninvariants_keeps_escape_checks(self):
        mod = prepared(self.SRC)
        cfg = InstrumentationConfig.lowfat(mode="geninvariants")
        instrument_module(mod, cfg, verify=True)
        assert not calls_to(mod, "main", "__lf_check")
        assert calls_to(mod, "main", "__lf_invariant_check")


class TestWitnessPropagation:
    def test_phi_witnesses(self):
        """Pointers merged by phis get companion witness phis."""
        src = r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            int *b = (int *) malloc(sizeof(int) * 4);
            a[0] = 1; b[0] = 2;
            int *p = a;
            for (int i = 0; i < 4; i++) {
                p[0] = i;
                if (i == 2) p = b;      // phi merges a and b
            }
            print_i64(a[0] + b[0]);
            free((void*)a); free((void*)b);
            return 0;
        }"""
        for approach, cfg in (
            ("softbound", InstrumentationConfig.softbound()),
            ("lowfat", InstrumentationConfig.lowfat()),
        ):
            mod = prepared(src)
            instrument_module(mod, cfg, verify=True)
            verify_module(mod)
            code, output, stats = run_with_runtime(mod, approach)
            assert code == 0
            assert output == ["5"]  # a[0]=2 (last store before switch) + b[0]=3
            assert stats.checks_executed > 0

    def test_select_witnesses(self):
        src = r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            int *b = (int *) malloc(sizeof(int) * 4);
            a[0] = 10; b[0] = 20;
            int c = 1;
            int *p = c ? a : b;
            print_i64(p[0]);
            free((void*)a); free((void*)b);
            return 0;
        }"""
        for approach, cfg in (
            ("softbound", InstrumentationConfig.softbound()),
            ("lowfat", InstrumentationConfig.lowfat()),
        ):
            mod = prepared(src)
            instrument_module(mod, cfg, verify=True)
            code, output, _ = run_with_runtime(mod, approach)
            assert code == 0 and output == ["10"]

    def test_gep_chain_inherits_witness(self):
        """Deep gep/bitcast chains share one witness: the checks on a
        sliced pointer still use the original allocation's bounds."""
        src = r"""
        int main() {
            char *base = (char *) malloc(64);
            int *ints = (int *) (base + 16);
            ints[3] = 7;
            print_i64(ints[3]);
            int *oob = (int *) (base + 62);
            oob[0] = 1;              // bytes 62..65: out of bounds
            free((void*)base);
            return 0;
        }"""
        mod = prepared(src)
        instrument_module(mod, InstrumentationConfig.softbound(), verify=True)
        from repro.errors import MemSafetyViolation

        vm = VirtualMachine(mod, max_instructions=1_000_000)
        SoftBoundRuntime().install(vm)
        with pytest.raises(MemSafetyViolation):
            vm.run()

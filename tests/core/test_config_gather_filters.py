"""Tests for the framework core: config, gathering, dominance filter."""

import pytest

from repro.core import (
    InstrumentationConfig,
    TargetKind,
    dominance_filter,
    gather_function_targets,
)
from repro.core.itarget import ITarget
from repro.frontend import compile_source
from repro.ir import parse_module
from repro.opt import Mem2Reg, SimplifyCFG


class TestConfig:
    def test_defaults(self):
        cfg = InstrumentationConfig.softbound()
        assert cfg.approach == "softbound"
        assert cfg.insert_deref_checks
        assert cfg.sb_size_zero_wide_upper
        assert cfg.sb_inttoptr_wide_bounds

    def test_geninvariants_mode(self):
        cfg = InstrumentationConfig.lowfat(mode="geninvariants")
        assert not cfg.insert_deref_checks

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            InstrumentationConfig(approach="magic")
        with pytest.raises(ValueError):
            InstrumentationConfig(mode="sometimes")

    def test_with_(self):
        cfg = InstrumentationConfig.softbound()
        tuned = cfg.with_(opt_dominance=True)
        assert tuned.opt_dominance and not cfg.opt_dominance

    def test_from_flags_artifact_syntax(self):
        """The paper's artifact appendix flag set parses correctly."""
        cfg = InstrumentationConfig.from_flags([
            "-mi-config=softbound",
            "-mi-sb-size-zero-wide-upper",
            "-mi-sb-inttoptr-wide-bounds",
            "-mi-policy-ignore-inline-asm",
            "-mi-opt-dominance",
            "-mi-mode=geninvariants",
        ])
        assert cfg.approach == "softbound"
        assert cfg.opt_dominance
        assert cfg.mode == "geninvariants"
        cfg2 = InstrumentationConfig.from_flags([
            "-mi-config=lowfat",
            "-mi-lf-transform-common-to-weak-linkage",
        ])
        assert cfg2.approach == "lowfat"
        with pytest.raises(ValueError):
            InstrumentationConfig.from_flags(["-mi-frobnicate"])


def _prepared(src):
    mod = compile_source(src)
    SimplifyCFG().run(mod)
    Mem2Reg().run(mod)
    return mod


class TestGathering:
    def test_loads_and_stores_are_check_targets(self):
        mod = _prepared(r"""
        int g;
        int main() { g = 1; return g; }""")
        targets = gather_function_targets(mod.get_function("main"))
        checks = [t for t in targets if t.kind == TargetKind.CHECK_DEREF]
        assert len(checks) == 2
        widths = sorted(t.width for t in checks)
        assert widths == [4, 4]

    def test_pointer_store_is_invariant_target(self):
        mod = _prepared(r"""
        int *slot[1];
        int main() { int x; slot[0] = &x; return 0; }""")
        targets = gather_function_targets(mod.get_function("main"))
        kinds = [t.kind for t in targets]
        assert TargetKind.INVARIANT_STORE in kinds

    def test_calls_with_pointer_args(self):
        mod = _prepared(r"""
        int take(int *p) { return *p; }
        int main() { int x = 1; return take(&x); }""")
        targets = gather_function_targets(mod.get_function("main"))
        assert any(t.kind == TargetKind.INVARIANT_CALL for t in targets)

    def test_pointer_return(self):
        mod = _prepared(r"""
        int g;
        int *get() { return &g; }
        int main() { return *get(); }""")
        targets = gather_function_targets(mod.get_function("get"))
        assert any(t.kind == TargetKind.INVARIANT_RET for t in targets)

    def test_ptrtoint_is_cast_target(self):
        mod = _prepared(r"""
        int main() { int x; long a = (long)&x; return (int)a; }""")
        targets = gather_function_targets(mod.get_function("main"))
        assert any(t.kind == TargetKind.INVARIANT_CAST for t in targets)

    def test_value_only_calls_not_targets(self):
        mod = _prepared(r"""
        int f(int a) { return a; }
        int main() { return f(1); }""")
        targets = gather_function_targets(mod.get_function("main"))
        assert not any(t.kind == TargetKind.INVARIANT_CALL for t in targets)

    def test_mi_marked_code_skipped(self):
        mod = _prepared("int g; int main() { return g; }")
        main = mod.get_function("main")
        for inst in main.instructions():
            inst.meta["mi"] = True
        assert gather_function_targets(main) == []


class TestDominanceFilter:
    def test_dominated_same_pointer_removed(self):
        mod = _prepared(r"""
        int g;
        int main() { g = 1; g = g + 1; return 0; }""")
        fn = mod.get_function("main")
        targets = gather_function_targets(fn)
        checks_before = sum(1 for t in targets if t.is_check())
        filtered, removed = dominance_filter(fn, targets)
        assert removed >= 1
        checks_after = sum(1 for t in filtered if t.is_check())
        assert checks_after == checks_before - removed

    def test_narrower_dominating_check_insufficient(self):
        # a 4-byte check does not cover a later 8-byte access
        mod = _prepared(r"""
        long g;
        int main() {
            int lo = *(int *)&g;
            long full = g;
            return lo + (int)full;
        }""")
        fn = mod.get_function("main")
        targets = gather_function_targets(fn)
        filtered, removed = dominance_filter(fn, targets)
        # different pointer SSA values anyway; nothing removable
        assert removed == 0

    def test_branches_not_dominating(self):
        mod = _prepared(r"""
        int g;
        int main() {
            int c = g;
            if (c > 0) g = 1; else g = 2;
            return 0;
        }""")
        fn = mod.get_function("main")
        targets = gather_function_targets(fn)
        filtered, removed = dominance_filter(fn, targets)
        # the first load dominates both stores: both stores' checks are
        # dominated by the load's (same pointer, same width)
        assert removed == 2

    def test_loop_carried_checks_not_removed_from_outside(self):
        # the in-loop accesses are not dominated by anything outside
        # the loop body; only the within-iteration duplicate may go
        mod = _prepared(r"""
        int g;
        int main() {
            int i = 0;
            while (i < 3) { g = g + 1; i = i + 1; }
            return g;
        }""")
        fn = mod.get_function("main")
        targets = gather_function_targets(fn)
        checks = [t for t in targets if t.is_check()]
        assert len(checks) == 3  # load+store in the body, load after
        filtered, removed = dominance_filter(fn, targets)
        # only the body store (dominated by the body load of the same
        # global in the same iteration) is redundant; the load after
        # the loop is NOT dominated by the possibly-skipped body
        assert removed == 1
        survivors = [t for t in filtered if t.is_check()]
        blocks = {t.instruction.parent for t in survivors}
        assert len(blocks) == 2  # one in the loop body, one after it

    def test_unreachable_block_checks_have_no_authority(self):
        # hand-written IR: the "dead" block is unreachable.  Its check
        # must neither crash the filter nor eliminate the reachable
        # check (an unreachable "dominator" proves nothing).
        mod = parse_module(r"""
        @g = common global i32 zeroinitializer

        define i32 @main() {
        entry:
          %a = load i32, i32* @g
          ret i32 %a
        dead:
          %b = load i32, i32* @g
          br %entry
        }""")
        fn = mod.get_function("main")
        targets = gather_function_targets(fn)
        assert len([t for t in targets if t.is_check()]) == 2
        filtered, removed = dominance_filter(fn, targets)
        assert removed == 0
        reachable = [t for t in filtered
                     if t.instruction.parent.name == "entry"]
        assert len(reachable) == 1

    def test_narrow_check_never_covers_wider_access(self):
        # same pointer SSA value, distinct widths: a dominating 4-byte
        # check must not stand in for a dominated 8-byte one, while the
        # reverse direction is a valid elimination
        mod = _prepared(r"""
        long g;
        int main() { g = 1; g = 2; return 0; }""")
        fn = mod.get_function("main")
        first, second = [t.instruction for t in gather_function_targets(fn)
                         if t.is_check()]
        pointer = first.pointer
        narrow_first = [
            ITarget(TargetKind.CHECK_DEREF, first, pointer, width=4),
            ITarget(TargetKind.CHECK_DEREF, second, pointer, width=8),
        ]
        _, removed = dominance_filter(fn, narrow_first)
        assert removed == 0
        wide_first = [
            ITarget(TargetKind.CHECK_DEREF, first, pointer, width=8),
            ITarget(TargetKind.CHECK_DEREF, second, pointer, width=4),
        ]
        filtered, removed = dominance_filter(fn, wide_first)
        assert removed == 1
        assert filtered[0].width == 8  # the wider check survives

    def test_invariant_targets_unaffected(self):
        mod = _prepared(r"""
        int *slot[2];
        int main() {
            int x;
            slot[0] = &x;
            slot[0] = &x;
            return 0;
        }""")
        fn = mod.get_function("main")
        targets = gather_function_targets(fn)
        invariants_before = sum(1 for t in targets if t.is_invariant())
        filtered, _ = dominance_filter(fn, targets)
        invariants_after = sum(1 for t in filtered if t.is_invariant())
        assert invariants_before == invariants_after

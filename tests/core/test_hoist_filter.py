"""Tests for ``-mi-opt-hoist``: loop-aware check hoisting/coalescing
and the static safety verdicts that share its analysis.

The contract under test is the extremes argument: a widened preheader
check over an affine access hull is equivalent to the per-iteration
checks it replaces on every valid execution, so outputs, exit codes,
and violation verdicts must be bit-identical to ``-mi-opt-ranges``
while the number of *executed* dynamic checks only shrinks.
"""

import pytest

from repro.core import InstrumentationConfig, MemInstrumentPass
from repro.driver import CompileOptions, compile_program, run_program
from repro.errors import MemSafetyViolation
from repro.ir import (
    ArrayType,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
)
from repro.softbound import SoftBoundRuntime
from repro.vm import VirtualMachine

# Unknown-size allocation (size depends on a mutable global, so the
# range filter cannot prove the accesses safe) iterated by counted
# loops: the hoist filter's win case.
HOIST_SRC = r"""
int N = 16;

int main() {
    int *a = (int *)malloc(N * 4);
    for (int i = 0; i < 16; i++) {
        a[i] = i * 3;
    }
    int s = 0;
    for (int i = 0; i < 16; i++) {
        s = s + a[i];
    }
    int t = a[0] + a[1] + a[2];
    print_i64(s);
    print_i64(t);
    free(a);
    return 0;
}
"""

# Off-by-one inclusive bound: iteration i == 8 touches bytes 32..36 of
# a 32-byte allocation.
OOB_SRC = r"""
int N = 8;

int main() {
    int *a = (int *)malloc(N * 4);
    int s = 0;
    for (int i = 0; i <= 8; i++) {
        s = s + a[i];
    }
    print_i64(s);
    return 0;
}
"""


def _config(mechanism, variant):
    base = (InstrumentationConfig.softbound() if mechanism == "softbound"
            else InstrumentationConfig.lowfat())
    if variant == "ranges":
        return base.with_(opt_dominance=True, opt_ranges=True)
    assert variant == "hoist"
    return base.with_(opt_dominance=True, opt_ranges=True, opt_hoist=True)


def _compile(src, mechanism, variant, **options_kwargs):
    options = CompileOptions(**options_kwargs) if options_kwargs else None
    return compile_program({"main.c": src}, _config(mechanism, variant),
                           options=options)


class TestHoistStatistics:
    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    def test_hoists_and_coalesces(self, mechanism):
        prog = _compile(HOIST_SRC, mechanism, "hoist")
        stats = prog.instrumentation
        assert stats.hoisted_checks > 0
        assert stats.coalesced_checks > 0
        assert stats.synthesized_checks > 0
        # A synthesized check replaces a whole hoist group or run.
        assert stats.synthesized_checks <= (
            stats.hoisted_checks + stats.coalesced_checks)
        # Accounting stays consistent.
        removed = (stats.filtered_checks + stats.range_filtered_checks
                   + stats.hoisted_checks + stats.coalesced_checks)
        assert removed <= stats.gathered_checks
        assert stats.emitted_checks == (
            stats.gathered_checks - removed + stats.synthesized_checks)

    def test_disabled_without_flag(self):
        prog = _compile(HOIST_SRC, "softbound", "ranges")
        stats = prog.instrumentation
        assert stats.hoisted_checks == 0
        assert stats.coalesced_checks == 0
        assert stats.synthesized_checks == 0

    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    def test_static_counts_engine_independent(self, mechanism):
        # Static counters are fixed at compile time; running on either
        # engine must report the identical instrumentation statistics.
        prog = _compile(HOIST_SRC, mechanism, "hoist")
        before = prog.instrumentation
        for engine in ("compiled", "interp"):
            run_program(prog, max_instructions=2_000_000, engine=engine)
            assert prog.instrumentation == before


class TestHoistBehaviourPreserving:
    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_valid_program_identical_and_cheaper(self, mechanism, engine):
        prog_rng = _compile(HOIST_SRC, mechanism, "ranges")
        prog_hst = _compile(HOIST_SRC, mechanism, "hoist")
        rng = run_program(prog_rng, max_instructions=2_000_000, engine=engine)
        hst = run_program(prog_hst, max_instructions=2_000_000, engine=engine)
        assert hst.output == rng.output
        assert hst.exit_code == rng.exit_code
        assert hst.violation is None and rng.violation is None
        assert hst.stats.checks_executed < rng.stats.checks_executed

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_violation_still_detected(self, engine):
        # SoftBound catches the off-by-one with and without hoisting.
        prog_rng = _compile(OOB_SRC, "softbound", "ranges")
        prog_hst = _compile(OOB_SRC, "softbound", "hoist")
        rng = run_program(prog_rng, max_instructions=2_000_000, engine=engine)
        hst = run_program(prog_hst, max_instructions=2_000_000, engine=engine)
        assert rng.violation is not None
        assert hst.violation is not None
        assert hst.violation.kind == rng.violation.kind


class TestCheckVerdicts:
    def test_proven_violating_loop(self):
        # The allocation size must be statically known for the
        # loop-extent proof to conclude "proven-violating".
        src = r"""
        int main() {
            int *a = (int *)malloc(32);
            int s = 0;
            for (int i = 0; i <= 8; i++) {
                s = s + a[i];
            }
            print_i64(s);
            return 0;
        }
        """
        prog = _compile(src, "softbound", "hoist", collect_verdicts=True)
        assert "proven-violating" in prog.check_verdicts.values()
        assert prog.instrumentation.verdicts.get("proven-violating", 0) > 0

    def test_proven_safe_sites(self):
        src = r"""
        int main() {
            int a[8];
            for (int i = 0; i < 8; i++) a[i] = i;
            print_i64(a[7]);
            return 0;
        }
        """
        prog = _compile(src, "softbound", "hoist", collect_verdicts=True)
        assert "proven-safe" in prog.check_verdicts.values()

    def test_verdicts_computed_alongside_hoist(self):
        # The hoist filter's range analysis is reused for verdicts, so
        # any hoist-enabled compile reports them for free.
        prog = _compile(OOB_SRC, "softbound", "hoist")
        assert prog.check_verdicts != {}

    def test_verdicts_absent_without_range_analysis(self):
        base = InstrumentationConfig.softbound()
        prog = compile_program({"main.c": OOB_SRC}, base)
        assert prog.check_verdicts == {}


class TestHoistCorpusDifferential:
    """-mi-opt-hoist must be behaviour-preserving on the whole
    functional corpus under both instrumentations."""

    def _check_case(self, case, mechanism):
        prog_rng = compile_program({"main.c": case.source},
                                   _config(mechanism, "ranges"))
        prog_hst = compile_program({"main.c": case.source},
                                   _config(mechanism, "hoist"))
        rng = run_program(prog_rng, max_instructions=2_000_000)
        hst = run_program(prog_hst, max_instructions=2_000_000)
        assert hst.output == rng.output
        assert hst.exit_code == rng.exit_code
        assert (hst.violation is None) == (rng.violation is None)
        if hst.violation is not None:
            assert hst.violation.kind == rng.violation.kind
        assert (hst.fault is None) == (rng.fault is None)
        stat_h, stat_r = prog_hst.instrumentation, prog_rng.instrumentation
        assert stat_h.gathered_checks == stat_r.gathered_checks
        assert stat_h.emitted_checks <= stat_r.emitted_checks
        assert hst.stats.checks_executed <= rng.stats.checks_executed

    def test_softbound_corpus(self):
        from repro.workloads.functional import corpus_by_name

        for case in corpus_by_name().values():
            self._check_case(case, "softbound")

    def test_lowfat_corpus(self):
        from repro.workloads.functional import corpus_by_name

        for case in corpus_by_name().values():
            self._check_case(case, "lowfat")


class TestRotatedLoopHoist:
    """REVIEW regression: a compare-on-phi single-block loop
    (``do { a[i] } while (i < bound)``) keeps its store in the loop
    *header*, which executes trip_count + 1 times -- the final entry
    accesses ``a[bound]`` before the exit test fails.  The hoisted
    hull must cover that extra step: an OOB at ``iv == last + step``
    that the baseline catches must still abort, and the valid variant
    must stay byte-identical."""

    @staticmethod
    def _rotated_main(n_elems, bound):
        mod = Module("rot")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        entry = fn.add_block("entry")
        loop = fn.add_block("loop")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        buf = b.alloca(ArrayType(I32, n_elems), name="buf")
        base = b.gep(buf, [b.const_i64(0), b.const_i64(0)], "base")
        b.br(loop)
        b.position_at_end(loop)
        i = b.phi(I32, "i")
        idx = b.sext(i, I64)
        slot = b.gep(base, [idx], "slot")
        b.store(i, slot)
        inext = b.add(i, b.const_i32(1), "inext")
        cmp = b.icmp("slt", i, b.const_i32(bound), "cmp")
        b.cond_br(cmp, loop, exit_)
        i.add_incoming(b.const_i32(0), entry)
        i.add_incoming(inext, loop)
        b.position_at_end(exit_)
        b.ret(b.const_i32(0))
        return mod

    @staticmethod
    def _dynamic_rotated_main(n_elems, bound):
        # Same loop, but the bound is loaded from a mutable global
        # behind an ``n > 0`` guard: the hull must be synthesized from
        # the *runtime* bound (plus the header's extra step).
        from repro.ir import ConstantInt

        mod = Module("rotdyn")
        mod.add_global("N", I32, ConstantInt(I32, bound))
        fn = mod.add_function("main", FunctionType(I32, []), [])
        entry = fn.add_block("entry")
        pre = fn.add_block("pre")
        loop = fn.add_block("loop")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        buf = b.alloca(ArrayType(I32, n_elems), name="buf")
        base = b.gep(buf, [b.const_i64(0), b.const_i64(0)], "base")
        n = b.load(mod.get_global("N"), "n")
        guard = b.icmp("sgt", n, b.const_i32(0), "guard")
        b.cond_br(guard, pre, exit_)
        b.position_at_end(pre)
        b.br(loop)
        b.position_at_end(loop)
        i = b.phi(I32, "i")
        idx = b.sext(i, I64)
        slot = b.gep(base, [idx], "slot")
        b.store(i, slot)
        inext = b.add(i, b.const_i32(1), "inext")
        cmp = b.icmp("slt", i, n, "cmp")
        b.cond_br(cmp, loop, exit_)
        i.add_incoming(b.const_i32(0), pre)
        i.add_incoming(inext, loop)
        b.position_at_end(exit_)
        b.ret(b.const_i32(0))
        return mod

    @staticmethod
    def _instrument(mod, hoist, collect_verdicts=False):
        config = InstrumentationConfig.softbound()
        if hoist:
            config = config.with_(opt_hoist=True)
        pass_ = MemInstrumentPass(config, verify=True,
                                  collect_verdicts=collect_verdicts)
        pass_.run(mod)
        return pass_

    @staticmethod
    def _run(mod, engine):
        vm = VirtualMachine(mod, max_instructions=1_000_000, engine=engine)
        SoftBoundRuntime().install(vm)
        try:
            code = vm.run()
            return code, None, vm.stats
        except MemSafetyViolation as violation:
            return None, violation, vm.stats

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_final_entry_oob_still_detected(self, engine):
        # 8 elements, bound 8: the final header entry stores a[8].
        base_mod = self._rotated_main(8, 8)
        hoist_mod = self._rotated_main(8, 8)
        self._instrument(base_mod, hoist=False)
        hoist_pass = self._instrument(hoist_mod, hoist=True)
        # The header check must still be hoisted (with a widened hull),
        # not silently dropped or left behind.
        assert hoist_pass.statistics.hoisted_checks >= 1
        _, base_violation, _ = self._run(base_mod, engine)
        _, hoist_violation, _ = self._run(hoist_mod, engine)
        assert base_violation is not None
        assert hoist_violation is not None

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_valid_variant_identical_and_cheaper(self, engine):
        # 9 elements, bound 8: accesses a[0..8] are all in bounds.
        base_mod = self._rotated_main(9, 8)
        hoist_mod = self._rotated_main(9, 8)
        self._instrument(base_mod, hoist=False)
        self._instrument(hoist_mod, hoist=True)
        base_code, base_violation, base_stats = self._run(base_mod, engine)
        hoist_code, hoist_violation, hoist_stats = self._run(
            hoist_mod, engine)
        assert base_violation is None and hoist_violation is None
        assert base_code == hoist_code == 0
        assert hoist_stats.checks_executed < base_stats.checks_executed

    @pytest.mark.parametrize("n_elems,bound,expect_violation",
                             [(8, 8, True), (9, 8, False)])
    def test_runtime_bound_header_hull(self, n_elems, bound,
                                       expect_violation):
        # The dynamic-bound path synthesizes last-IV arithmetic in the
        # preheader; header residency must add one step there too.
        base_mod = self._dynamic_rotated_main(n_elems, bound)
        hoist_mod = self._dynamic_rotated_main(n_elems, bound)
        self._instrument(base_mod, hoist=False)
        hoist_pass = self._instrument(hoist_mod, hoist=True)
        assert hoist_pass.statistics.hoisted_checks >= 1
        _, base_violation, _ = self._run(base_mod, "compiled")
        _, hoist_violation, _ = self._run(hoist_mod, "compiled")
        assert (base_violation is not None) == expect_violation
        assert (hoist_violation is not None) == expect_violation

    def test_header_verdict_not_proven_safe(self):
        # Before the header fix the loop-extent argument "proved" the
        # 8-element variant safe -- while it provably violates on the
        # final header entry.
        oob = self._rotated_main(8, 8)
        verdicts = self._instrument(
            oob, hoist=True, collect_verdicts=True).check_verdicts
        assert "proven-violating" in verdicts.values()
        assert "proven-safe" not in verdicts.values()
        ok = self._rotated_main(9, 8)
        verdicts = self._instrument(
            ok, hoist=True, collect_verdicts=True).check_verdicts
        assert "proven-safe" in verdicts.values()


class TestFilterChainMonotonicity:
    """Satellite: along unopt -> dominance -> ranges -> hoist, the
    number of emitted (static) checks must never grow, on every
    bundled workload and under both mechanisms."""

    CHAIN = (
        {},
        {"opt_dominance": True},
        {"opt_dominance": True, "opt_ranges": True},
        {"opt_dominance": True, "opt_ranges": True, "opt_hoist": True},
    )

    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    def test_all_workloads(self, mechanism):
        from repro.workloads import all_workloads

        base = (InstrumentationConfig.softbound() if mechanism == "softbound"
                else InstrumentationConfig.lowfat())
        workloads = all_workloads()
        assert len(workloads) == 20
        for workload in workloads:
            emitted = []
            for overrides in self.CHAIN:
                prog = compile_program(workload.sources,
                                       base.with_(**overrides))
                emitted.append(prog.instrumentation.emitted_checks)
            assert emitted == sorted(emitted, reverse=True), (
                f"{workload.name}: emitted checks not monotone "
                f"along the filter chain: {emitted}")

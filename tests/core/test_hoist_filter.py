"""Tests for ``-mi-opt-hoist``: loop-aware check hoisting/coalescing
and the static safety verdicts that share its analysis.

The contract under test is the extremes argument: a widened preheader
check over an affine access hull is equivalent to the per-iteration
checks it replaces on every valid execution, so outputs, exit codes,
and violation verdicts must be bit-identical to ``-mi-opt-ranges``
while the number of *executed* dynamic checks only shrinks.
"""

import pytest

from repro.core import InstrumentationConfig
from repro.driver import CompileOptions, compile_program, run_program

# Unknown-size allocation (size depends on a mutable global, so the
# range filter cannot prove the accesses safe) iterated by counted
# loops: the hoist filter's win case.
HOIST_SRC = r"""
int N = 16;

int main() {
    int *a = (int *)malloc(N * 4);
    for (int i = 0; i < 16; i++) {
        a[i] = i * 3;
    }
    int s = 0;
    for (int i = 0; i < 16; i++) {
        s = s + a[i];
    }
    int t = a[0] + a[1] + a[2];
    print_i64(s);
    print_i64(t);
    free(a);
    return 0;
}
"""

# Off-by-one inclusive bound: iteration i == 8 touches bytes 32..36 of
# a 32-byte allocation.
OOB_SRC = r"""
int N = 8;

int main() {
    int *a = (int *)malloc(N * 4);
    int s = 0;
    for (int i = 0; i <= 8; i++) {
        s = s + a[i];
    }
    print_i64(s);
    return 0;
}
"""


def _config(mechanism, variant):
    base = (InstrumentationConfig.softbound() if mechanism == "softbound"
            else InstrumentationConfig.lowfat())
    if variant == "ranges":
        return base.with_(opt_dominance=True, opt_ranges=True)
    assert variant == "hoist"
    return base.with_(opt_dominance=True, opt_ranges=True, opt_hoist=True)


def _compile(src, mechanism, variant, **options_kwargs):
    options = CompileOptions(**options_kwargs) if options_kwargs else None
    return compile_program({"main.c": src}, _config(mechanism, variant),
                           options=options)


class TestHoistStatistics:
    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    def test_hoists_and_coalesces(self, mechanism):
        prog = _compile(HOIST_SRC, mechanism, "hoist")
        stats = prog.instrumentation
        assert stats.hoisted_checks > 0
        assert stats.coalesced_checks > 0
        assert stats.synthesized_checks > 0
        # A synthesized check replaces a whole hoist group or run.
        assert stats.synthesized_checks <= (
            stats.hoisted_checks + stats.coalesced_checks)
        # Accounting stays consistent.
        removed = (stats.filtered_checks + stats.range_filtered_checks
                   + stats.hoisted_checks + stats.coalesced_checks)
        assert removed <= stats.gathered_checks
        assert stats.emitted_checks == (
            stats.gathered_checks - removed + stats.synthesized_checks)

    def test_disabled_without_flag(self):
        prog = _compile(HOIST_SRC, "softbound", "ranges")
        stats = prog.instrumentation
        assert stats.hoisted_checks == 0
        assert stats.coalesced_checks == 0
        assert stats.synthesized_checks == 0

    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    def test_static_counts_engine_independent(self, mechanism):
        # Static counters are fixed at compile time; running on either
        # engine must report the identical instrumentation statistics.
        prog = _compile(HOIST_SRC, mechanism, "hoist")
        before = prog.instrumentation
        for engine in ("compiled", "interp"):
            run_program(prog, max_instructions=2_000_000, engine=engine)
            assert prog.instrumentation == before


class TestHoistBehaviourPreserving:
    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_valid_program_identical_and_cheaper(self, mechanism, engine):
        prog_rng = _compile(HOIST_SRC, mechanism, "ranges")
        prog_hst = _compile(HOIST_SRC, mechanism, "hoist")
        rng = run_program(prog_rng, max_instructions=2_000_000, engine=engine)
        hst = run_program(prog_hst, max_instructions=2_000_000, engine=engine)
        assert hst.output == rng.output
        assert hst.exit_code == rng.exit_code
        assert hst.violation is None and rng.violation is None
        assert hst.stats.checks_executed < rng.stats.checks_executed

    @pytest.mark.parametrize("engine", ["compiled", "interp"])
    def test_violation_still_detected(self, engine):
        # SoftBound catches the off-by-one with and without hoisting.
        prog_rng = _compile(OOB_SRC, "softbound", "ranges")
        prog_hst = _compile(OOB_SRC, "softbound", "hoist")
        rng = run_program(prog_rng, max_instructions=2_000_000, engine=engine)
        hst = run_program(prog_hst, max_instructions=2_000_000, engine=engine)
        assert rng.violation is not None
        assert hst.violation is not None
        assert hst.violation.kind == rng.violation.kind


class TestCheckVerdicts:
    def test_proven_violating_loop(self):
        # The allocation size must be statically known for the
        # loop-extent proof to conclude "proven-violating".
        src = r"""
        int main() {
            int *a = (int *)malloc(32);
            int s = 0;
            for (int i = 0; i <= 8; i++) {
                s = s + a[i];
            }
            print_i64(s);
            return 0;
        }
        """
        prog = _compile(src, "softbound", "hoist", collect_verdicts=True)
        assert "proven-violating" in prog.check_verdicts.values()
        assert prog.instrumentation.verdicts.get("proven-violating", 0) > 0

    def test_proven_safe_sites(self):
        src = r"""
        int main() {
            int a[8];
            for (int i = 0; i < 8; i++) a[i] = i;
            print_i64(a[7]);
            return 0;
        }
        """
        prog = _compile(src, "softbound", "hoist", collect_verdicts=True)
        assert "proven-safe" in prog.check_verdicts.values()

    def test_verdicts_computed_alongside_hoist(self):
        # The hoist filter's range analysis is reused for verdicts, so
        # any hoist-enabled compile reports them for free.
        prog = _compile(OOB_SRC, "softbound", "hoist")
        assert prog.check_verdicts != {}

    def test_verdicts_absent_without_range_analysis(self):
        base = InstrumentationConfig.softbound()
        prog = compile_program({"main.c": OOB_SRC}, base)
        assert prog.check_verdicts == {}


class TestHoistCorpusDifferential:
    """-mi-opt-hoist must be behaviour-preserving on the whole
    functional corpus under both instrumentations."""

    def _check_case(self, case, mechanism):
        prog_rng = compile_program({"main.c": case.source},
                                   _config(mechanism, "ranges"))
        prog_hst = compile_program({"main.c": case.source},
                                   _config(mechanism, "hoist"))
        rng = run_program(prog_rng, max_instructions=2_000_000)
        hst = run_program(prog_hst, max_instructions=2_000_000)
        assert hst.output == rng.output
        assert hst.exit_code == rng.exit_code
        assert (hst.violation is None) == (rng.violation is None)
        if hst.violation is not None:
            assert hst.violation.kind == rng.violation.kind
        assert (hst.fault is None) == (rng.fault is None)
        stat_h, stat_r = prog_hst.instrumentation, prog_rng.instrumentation
        assert stat_h.gathered_checks == stat_r.gathered_checks
        assert stat_h.emitted_checks <= stat_r.emitted_checks
        assert hst.stats.checks_executed <= rng.stats.checks_executed

    def test_softbound_corpus(self):
        from repro.workloads.functional import corpus_by_name

        for case in corpus_by_name().values():
            self._check_case(case, "softbound")

    def test_lowfat_corpus(self):
        from repro.workloads.functional import corpus_by_name

        for case in corpus_by_name().values():
            self._check_case(case, "lowfat")


class TestFilterChainMonotonicity:
    """Satellite: along unopt -> dominance -> ranges -> hoist, the
    number of emitted (static) checks must never grow, on every
    bundled workload and under both mechanisms."""

    CHAIN = (
        {},
        {"opt_dominance": True},
        {"opt_dominance": True, "opt_ranges": True},
        {"opt_dominance": True, "opt_ranges": True, "opt_hoist": True},
    )

    @pytest.mark.parametrize("mechanism", ["softbound", "lowfat"])
    def test_all_workloads(self, mechanism):
        from repro.workloads import all_workloads

        base = (InstrumentationConfig.softbound() if mechanism == "softbound"
                else InstrumentationConfig.lowfat())
        workloads = all_workloads()
        assert len(workloads) == 20
        for workload in workloads:
            emitted = []
            for overrides in self.CHAIN:
                prog = compile_program(workload.sources,
                                       base.with_(**overrides))
                emitted.append(prog.instrumentation.emitted_checks)
            assert emitted == sorted(emitted, reverse=True), (
                f"{workload.name}: emitted checks not monotone "
                f"along the filter chain: {emitted}")

"""Indirect calls (function pointers) through the instrumentation.

Table 1's call rows apply to indirect calls too: the callee is unknown
statically, but pointer arguments still escape (shadow-stack pushes /
Low-Fat escape checks), and the callee -- whichever it is -- reads its
argument bounds the usual way.
"""

import pytest

from repro.core import InstrumentationConfig, instrument_module
from repro.errors import MemSafetyViolation
from repro.ir import (
    Call,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    ptr,
    verify_module,
)
from repro.lowfat import LowFatRuntime
from repro.softbound import SoftBoundRuntime
from repro.vm import VirtualMachine


def _build_indirect_module(oob: bool):
    """main() picks poke() through a function pointer and calls it with
    a heap array; poke writes in (or out of) bounds."""
    mod = Module("t")
    poke_ty = FunctionType(I32, [ptr(I32)])

    poke = mod.add_function("poke", poke_ty, ["p"])
    b = IRBuilder(poke.add_block("entry"))
    index = 6 if oob else 3
    slot = b.gep(poke.args[0], [b.const_i64(index)])
    b.store(b.const_i32(1), slot)
    b.ret(b.const_i32(0))

    from repro.ir import I8

    malloc = mod.add_function("malloc", FunctionType(ptr(I8), [I64]))
    malloc.native = True

    main = mod.add_function("main", FunctionType(I32, []))
    b = IRBuilder(main.add_block("entry"))
    raw = b.call(malloc, [b.const_i64(16)])        # 4 ints
    arr = b.bitcast(raw, ptr(I32))
    fn_ptr_slot = b.alloca(ptr(poke_ty), name="fp")
    b.store(poke, fn_ptr_slot)
    callee = b.load(fn_ptr_slot)                   # indirect callee
    result = b.call(callee, [arr])
    b.ret(result)
    verify_module(mod)
    return mod


@pytest.mark.parametrize("approach", ["softbound", "lowfat"])
class TestIndirectCalls:
    def _run(self, approach, oob):
        mod = _build_indirect_module(oob)
        config = (InstrumentationConfig.softbound() if approach == "softbound"
                  else InstrumentationConfig.lowfat())
        instrument_module(mod, config, verify=True)
        vm = VirtualMachine(mod, max_instructions=100_000)
        if approach == "softbound":
            SoftBoundRuntime().install(vm)
        else:
            LowFatRuntime().install(vm)
        return vm

    def test_in_bounds_indirect_call_runs(self, approach):
        vm = self._run(approach, oob=False)
        assert vm.run() == 0
        assert vm.stats.checks_executed > 0

    def test_oob_through_indirect_call_reported(self, approach):
        # 16-byte allocation; poke writes int index 6 = bytes 24..27.
        # SoftBound: exact bounds -> report.  Low-Fat: 16+1 -> 32-byte
        # class, bytes 24..27 are inside padding -> NOT reported (the
        # padding blind spot); push further out for Low-Fat.
        vm = self._run(approach, oob=True)
        if approach == "softbound":
            with pytest.raises(MemSafetyViolation):
                vm.run()
        else:
            assert vm.run() == 0   # swallowed by padding

    def test_far_oob_reported_by_lowfat_too(self, approach):
        mod = _build_indirect_module(oob=False)
        # rewrite the poke index to escape any class slot
        poke = mod.get_function("poke")
        from repro.ir import GEP, ConstantInt, I64 as I64t

        for inst in list(poke.instructions()):
            if isinstance(inst, GEP):
                inst.set_operand(1, ConstantInt(I64t, 1000))
        config = (InstrumentationConfig.softbound() if approach == "softbound"
                  else InstrumentationConfig.lowfat())
        instrument_module(mod, config, verify=True)
        vm = VirtualMachine(mod, max_instructions=100_000)
        if approach == "softbound":
            SoftBoundRuntime().install(vm)
        else:
            LowFatRuntime().install(vm)
        with pytest.raises(MemSafetyViolation):
            vm.run()

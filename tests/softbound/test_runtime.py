"""Tests for the SoftBound runtime natives and wrappers on the VM."""

import pytest

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig
from repro.driver import make_vm
from repro.errors import MemSafetyViolation

SB = InstrumentationConfig.softbound()
OPTS = CompileOptions(verify=True)


def run_sb(src, config=SB, **kw):
    return run_program(compile_program(src, config, OPTS),
                       max_instructions=2_000_000, **kw)


class TestMallocWrapper:
    def test_bounds_published_via_return_slot(self):
        result = run_sb(r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            a[3] = 1;       // last valid slot
            print_i64(a[3]);
            free((void*)a);
            return 0;
        }""")
        assert result.ok and result.output == ["1"]
        assert result.stats.checks_wide == 0  # exact bounds known

    def test_exact_bound_enforced(self):
        result = run_sb(r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            a[4] = 1;       // one past: SoftBound uses exact bounds
            return 0;
        }""")
        assert result.violation is not None
        assert result.violation.kind == "deref"

    def test_calloc_and_realloc_bounds(self):
        result = run_sb(r"""
        int main() {
            int *a = (int *) calloc(4, sizeof(int));
            a[3] = 7;
            a = (int *) realloc((void*)a, sizeof(int) * 8);
            a[7] = 9;       // new bound honoured
            print_i64(a[3] + a[7]);
            free((void*)a);
            return 0;
        }""")
        assert result.ok and result.output == ["16"]

    def test_realloc_shrink_rejects_old_range(self):
        result = run_sb(r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            a = (int *) realloc((void*)a, sizeof(int) * 2);
            a[5] = 1;       // beyond the shrunk bound
            return 0;
        }""")
        assert result.violation is not None


class TestMemcpyWrapper:
    def test_metadata_copied_with_pointers(self):
        result = run_sb(r"""
        int main() {
            int x = 5;
            int *src[2];
            int *dst[2];
            src[0] = &x; src[1] = &x;
            memcpy((void*)dst, (void*)src, sizeof(int*) * 2);
            print_i64(*dst[0] + *dst[1]);
            return 0;
        }""")
        assert result.ok and result.output == ["10"]

    def test_wrapper_checks_disabled_by_default(self):
        # Paper Section 5.1.2: wrapper checks are off for comparability;
        # an oversized memcpy corrupts/faults but is not *reported*.
        result = run_sb(r"""
        int main() {
            char *a = (char *) malloc(8);
            char *b = (char *) malloc(8);
            memcpy((void*)a, (void*)b, 64);
            return 0;
        }""")
        assert result.violation is None     # no wrapper report
        assert result.fault is not None      # the guard gap catches it

    def test_wrapper_checks_enabled(self):
        config = SB.with_(sb_wrapper_checks=True)
        result = run_sb(r"""
        int main() {
            char *a = (char *) malloc(8);
            char *b = (char *) malloc(8);
            memcpy((void*)a, (void*)b, 64);
            return 0;
        }""", config=config)
        assert result.violation is not None
        assert result.violation.kind == "wrapper"


class TestMissingMetadataPolicy:
    SRC = r"""
    int main() {
        long raw[1];
        raw[0] = 0;
        int **as_pp = (int **) raw;
        int x = 5;
        // store the pointer through the integer view: no trie update
        long addr = (long) &x;
        raw[0] = addr;
        int *p = as_pp[0];      // pointer load: trie miss
        print_i64(*p);
        return 0;
    }"""

    def test_null_bounds_report(self):
        result = run_sb(self.SRC)
        assert result.violation is not None   # missing metadata -> NULL

    def test_wide_bounds_tolerate(self):
        tolerant = SB.with_(sb_missing_metadata_wide=True)
        result = run_sb(self.SRC, config=tolerant)
        assert result.ok
        assert result.output == ["5"]
        assert result.stats.checks_wide > 0


class TestShadowStackAcrossCalls:
    def test_callee_checks_with_caller_bounds(self):
        result = run_sb(r"""
        void poke(int *p, int i) { p[i] = 1; }
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            poke(a, 3);     // fine
            poke(a, 6);     // OOB inside the callee
            return 0;
        }""")
        assert result.violation is not None
        assert result.violation.kind == "deref"

    def test_returned_pointer_bounds_propagate(self):
        result = run_sb(r"""
        int *make() { return (int *) malloc(sizeof(int) * 2); }
        int main() {
            int *p = make();
            p[1] = 1;       // ok
            p[2] = 2;       // past the bound the callee published
            return 0;
        }""")
        assert result.violation is not None

"""Tests for SoftBound's metadata trie and shadow stack."""

from hypothesis import given, strategies as st

from repro.softbound import MetadataTrie, ShadowStack, WIDE_BASE, WIDE_BOUND


class TestTrie:
    def test_store_load_roundtrip(self):
        trie = MetadataTrie()
        trie.store(0x1000, 0x2000, 0x2040)
        assert trie.load(0x1000) == (0x2000, 0x2040)

    def test_missing_entry_is_none(self):
        trie = MetadataTrie()
        assert trie.load(0x1000) is None

    def test_overwrite(self):
        trie = MetadataTrie()
        trie.store(0x1000, 1, 2)
        trie.store(0x1000, 3, 4)
        assert trie.load(0x1000) == (3, 4)
        assert trie.entry_count == 1

    def test_slot_granularity(self):
        # metadata is tracked per 8-byte-aligned pointer slot
        trie = MetadataTrie()
        trie.store(0x1000, 1, 2)
        assert trie.load(0x1004) == (1, 2)   # same slot
        assert trie.load(0x1008) is None      # next slot

    def test_entries_in_different_secondary_tables(self):
        trie = MetadataTrie()
        far_apart = 1 << 40
        trie.store(0x1000, 1, 2)
        trie.store(0x1000 + far_apart, 3, 4)
        assert trie.load(0x1000) == (1, 2)
        assert trie.load(0x1000 + far_apart) == (3, 4)

    def test_copy_range_moves_metadata(self):
        """The memcpy wrapper's copy_metadata (paper Figure 6)."""
        trie = MetadataTrie()
        trie.store(0x1000, 11, 22)
        trie.store(0x1008, 33, 44)
        copied = trie.copy_range(0x5000, 0x1000, 16)
        assert copied == 2
        assert trie.load(0x5000) == (11, 22)
        assert trie.load(0x5008) == (33, 44)

    def test_copy_range_without_metadata(self):
        trie = MetadataTrie()
        assert trie.copy_range(0x5000, 0x1000, 64) == 0

    def test_bytewise_copy_bypasses_trie(self):
        """The Section 4.5 failure mode: byte-level copies do not move
        metadata, so the destination slot stays stale/empty."""
        trie = MetadataTrie()
        trie.store(0x1000, 11, 22)
        # a byte-by-byte copy performs no trie operations at all;
        # the destination keeps whatever was there before
        assert trie.load(0x5000) is None

    def test_copy_range_overlap_forward(self):
        """Regression: overlapping copy with dest > src must walk the
        slots descending (memmove semantics).  An ascending walk reads
        slots it has already overwritten and smears the first entry
        across the whole destination range."""
        trie = MetadataTrie()
        trie.store(0x1000, 1, 2)
        trie.store(0x1008, 3, 4)
        trie.store(0x1010, 5, 6)
        copied = trie.copy_range(0x1008, 0x1000, 24)
        assert copied == 3
        assert trie.load(0x1008) == (1, 2)
        assert trie.load(0x1010) == (3, 4)
        assert trie.load(0x1018) == (5, 6)

    def test_copy_range_overlap_backward(self):
        """dest < src overlap: ascending order is the correct one."""
        trie = MetadataTrie()
        trie.store(0x1008, 1, 2)
        trie.store(0x1010, 3, 4)
        trie.store(0x1018, 5, 6)
        copied = trie.copy_range(0x1000, 0x1008, 24)
        assert copied == 3
        assert trie.load(0x1000) == (1, 2)
        assert trie.load(0x1008) == (3, 4)
        assert trie.load(0x1010) == (5, 6)

    def test_copy_range_clears_stale_destination_slots(self):
        """Regression: a source slot without metadata overwrites the
        destination *bytes*, so the destination's old trie entry must
        be cleared -- otherwise the copy resurrects stale bounds for
        whatever non-pointer data just landed there (Section 4.5)."""
        trie = MetadataTrie()
        trie.store(0x5000, 11, 22)      # stale entry at the destination
        trie.store(0x5008, 33, 44)
        trie.store(0x1008, 7, 8)        # source: slot 0 empty, slot 1 set
        copied = trie.copy_range(0x5000, 0x1000, 16)
        assert copied == 1
        assert trie.load(0x5000) is None        # cleared, not stale
        assert trie.load(0x5008) == (7, 8)

    def test_copy_range_clear_does_not_count_as_copied(self):
        trie = MetadataTrie()
        trie.store(0x5000, 1, 2)
        assert trie.copy_range(0x5000, 0x1000, 8) == 0
        assert trie.load(0x5000) is None

    @given(st.lists(st.tuples(st.integers(0, 1 << 47),
                              st.integers(0, 1 << 47),
                              st.integers(0, 1 << 47)),
                    min_size=1, max_size=50))
    def test_last_store_wins(self, entries):
        trie = MetadataTrie()
        expected = {}
        for loc, base, bound in entries:
            trie.store(loc, base, bound)
            expected[loc >> 3] = (base, bound)
        for slot, value in expected.items():
            assert trie.load(slot << 3) == value


class TestShadowStack:
    def test_args_roundtrip(self):
        ss = ShadowStack()
        ss.enter(2)
        ss.set_slot(0, 10, 20)
        ss.set_slot(1, 30, 40)
        assert ss.get_slot(0) == (10, 20)
        assert ss.get_slot(1) == (30, 40)
        ss.exit()

    def test_nested_frames(self):
        ss = ShadowStack()
        ss.enter(1)
        ss.set_slot(0, 1, 2)
        ss.enter(1)
        ss.set_slot(0, 3, 4)
        assert ss.get_slot(0) == (3, 4)
        ss.exit()
        assert ss.get_slot(0) == (1, 2)
        ss.exit()

    def test_no_frame_returns_wide(self):
        ss = ShadowStack()
        assert ss.get_slot(0) == (WIDE_BASE, WIDE_BOUND)

    def test_return_slot(self):
        ss = ShadowStack()
        ss.set_ret(100, 200)
        assert ss.get_ret() == (100, 200)

    def test_return_slot_staleness(self):
        """The Section 4.3 failure mode: an uninstrumented callee does
        not write the return slot, so the caller reads *stale* bounds
        from the previous call."""
        ss = ShadowStack()
        ss.set_ret(100, 200)        # instrumented call happened earlier
        # ... uninstrumented library call returns a pointer; nothing
        # updates the slot ...
        assert ss.get_ret() == (100, 200)   # stale!

    def test_slot_memory_not_cleared(self):
        """Frames alias raw slot memory: deeper garbage shows through
        when a caller pushes fewer slots than it reads."""
        ss = ShadowStack()
        ss.enter(2)
        ss.set_slot(0, 7, 8)
        ss.set_slot(1, 9, 10)
        ss.exit()
        ss.enter(2)                 # same raw slots, not cleared
        assert ss.get_slot(0) == (7, 8)
        assert ss.get_slot(1) == (9, 10)

    def test_exit_on_empty_is_safe(self):
        ss = ShadowStack()
        ss.exit()
        assert ss.depth == 0

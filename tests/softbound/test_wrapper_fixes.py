"""Regression tests for the SoftBound libc-wrapper fixes.

Three historical wrapper bugs, each with a test that fails on the
pre-fix code:

* ``strcpy`` performed no ``check_abort`` even with wrapper checks
  enabled (paper Figure 6 checks *both* arguments against strlen+1);
* ``realloc`` never migrated trie entries when the allocation moved,
  so pointers stored in a reallocated buffer lost their metadata;
* ``copy_range`` direction/staleness (covered in
  test_trie_shadow_stack.py).

The engine-differential cases pin the contract that the fixes keep
compiled-tier stats bit-identical to the tree-walker.
"""

import dataclasses

import pytest

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig

SB = InstrumentationConfig.softbound()
SB_WRAP = SB.with_(sb_wrapper_checks=True)
OPTS = CompileOptions(verify=True)


def run_sb(src, config=SB, **kw):
    return run_program(compile_program(src, config, OPTS),
                       max_instructions=2_000_000, **kw)


STRCPY_OVERFLOW = r"""
int main() {
    char *dst = (char *) malloc(4);
    char *src = (char *) malloc(16);
    src[0] = 'a'; src[1] = 'b'; src[2] = 'c'; src[3] = 'd';
    src[4] = 'e'; src[5] = 'f'; src[6] = 'g'; src[7] = 0;
    strcpy(dst, src);           // 8 bytes into a 4-byte buffer
    return 0;
}"""


class TestStrcpyWrapperCheck:
    def test_overflow_reported_with_wrapper_checks(self):
        """Pre-fix, strcpy had no _wrapper_check call at all: the
        overflow either faulted in the guard gap or went unreported.
        With the fix it is a 'wrapper' violation naming strcpy."""
        result = run_sb(STRCPY_OVERFLOW, config=SB_WRAP)
        assert result.violation is not None
        assert result.violation.kind == "wrapper"
        assert "strcpy" in str(result.violation)

    def test_source_over_read_reported(self):
        # src's NUL lies beyond its allocation's bound: reading
        # strlen+1 bytes over-reads the *source* argument.
        result = run_sb(r"""
        int main() {
            char *big = (char *) malloc(16);
            char *src = big;            // pretend-short buffer below
            int i;
            for (i = 0; i < 15; i = i + 1) src[i] = 'x';
            src[15] = 0;
            char *dst = (char *) malloc(32);
            char *tail = (char *) malloc(4);
            tail[0] = 'y'; tail[1] = 0;
            strcpy(dst, src);           // fits: no report
            strcpy(dst, tail);          // fits: no report
            print_i64(dst[0]);
            return 0;
        }""", config=SB_WRAP)
        assert result.ok

    def test_in_bounds_strcpy_clean(self):
        result = run_sb(r"""
        int main() {
            char *dst = (char *) malloc(8);
            char *src = (char *) malloc(8);
            src[0] = 'h'; src[1] = 'i'; src[2] = 0;
            strcpy(dst, src);
            print_i64(dst[1]);
            return 0;
        }""", config=SB_WRAP)
        assert result.ok and result.output == [str(ord("i"))]

    def test_disabled_by_default_no_report(self):
        """Paper Section 5.1.2: wrapper checks default off; the strcpy
        overflow is not *reported* (the guard gap may still fault)."""
        result = run_sb(STRCPY_OVERFLOW)
        assert result.violation is None

    def test_default_config_stats_unaffected(self):
        """The fix must not perturb default-config stats: strlen of the
        source is only computed when wrapper checks are on."""
        src = r"""
        int main() {
            char *dst = (char *) malloc(8);
            char *s = (char *) malloc(8);
            s[0] = 'a'; s[1] = 0;
            strcpy(dst, s);
            print_i64(dst[0]);
            return 0;
        }"""
        plain = run_sb(src)
        checked = run_sb(src, config=SB_WRAP)
        assert plain.ok and checked.ok
        assert plain.stats.checks_executed == checked.stats.checks_executed
        # wrapper checks charge cycles; the default config must not
        assert checked.stats.cycles > plain.stats.cycles


REALLOC_MOVE = r"""
int main() {
    int x = 7;
    int **arr = (int **) malloc(sizeof(int*) * 2);
    arr[0] = &x;
    /* Grow enough that the allocator must move the block; the
       wrapper has to migrate arr[0]'s trie entry to the new home. */
    arr = (int **) realloc((void*)arr, sizeof(int*) * 64);
    print_i64(*arr[0]);
    return 0;
}"""


class TestReallocMetadataMigration:
    def test_pointer_metadata_survives_move(self):
        """Pre-fix, realloc published bounds for the new block but left
        the trie entries at the old addresses: dereferencing a pointer
        loaded from the moved buffer saw NULL bounds and violated."""
        result = run_sb(REALLOC_MOVE)
        assert result.ok, result.describe()
        assert result.output == ["7"]

    def test_migration_bounded_by_old_size(self):
        # Only min(old, new) bytes of metadata move; slots beyond the
        # old size keep whatever the destination had (nothing).
        result = run_sb(r"""
        int main() {
            int x = 1;
            int **arr = (int **) malloc(sizeof(int*) * 2);
            arr[0] = &x;
            arr[1] = &x;
            arr = (int **) realloc((void*)arr, sizeof(int*) * 64);
            print_i64(*arr[0] + *arr[1]);
            return 0;
        }""")
        assert result.ok and result.output == ["2"]

    def test_shrinking_realloc_migrates_prefix(self):
        result = run_sb(r"""
        int main() {
            int x = 3;
            int **arr = (int **) malloc(sizeof(int*) * 8);
            arr[0] = &x;
            arr = (int **) realloc((void*)arr, sizeof(int*) * 1);
            print_i64(*arr[0]);
            return 0;
        }""")
        assert result.ok and result.output == ["3"]

    def test_migration_charges_trie_stores(self):
        grown = run_sb(REALLOC_MOVE)
        assert grown.ok
        # at least the migrated slot shows up as a trie store
        assert grown.stats.trie_stores > 0


class TestFixesKeepEnginesIdentical:
    """The wrapper fixes ride inside native wrappers, whose charging
    differs between the tree-walker and the compiled tier; the stats
    must still agree field for field."""

    @pytest.mark.parametrize("src,config", [
        (STRCPY_OVERFLOW, SB_WRAP),
        (REALLOC_MOVE, SB),
        (r"""
        int main() {
            int x = 9;
            int *src[4];
            int *dst[4];
            src[0] = &x; src[1] = &x; src[2] = &x; src[3] = &x;
            memcpy((void*)dst, (void*)src, sizeof(int*) * 4);
            memmove((void*)(src + 1), (void*)src, sizeof(int*) * 3);
            print_i64(*dst[3] + *src[3]);
            return 0;
        }""", SB),
    ], ids=["strcpy-overflow", "realloc-move", "memcpy-memmove"])
    def test_stats_bit_identical(self, src, config):
        program = compile_program(src, config, OPTS)
        interp = run_program(program, max_instructions=2_000_000,
                             engine="interp")
        compiled = run_program(program, max_instructions=2_000_000,
                               engine="compiled")
        assert interp.output == compiled.output
        assert dataclasses.asdict(interp.stats) == \
            dataclasses.asdict(compiled.stats)

"""Detection matrix: which violations does each approach report?

Mirrors the artifact's functional test suite (paper Appendix A.5):
programs with heap/stack/global out-of-bounds reads and writes must be
rejected, programs without violations must run unmodified.
"""

import pytest

from repro import CompileOptions, compile_and_run
from repro.core import InstrumentationConfig

SB = InstrumentationConfig.softbound()
LF = InstrumentationConfig.lowfat()
OPTS = CompileOptions(verify=True)


def outcome(src, config, **kw):
    result = compile_and_run(src, config, OPTS, max_instructions=2_000_000, **kw)
    if result.violation is not None:
        return f"violation:{result.violation.kind}"
    if result.fault is not None:
        return "fault"
    return "ok"


CLEAN_PROGRAMS = {
    "heap": r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            for (int i = 0; i < 8; i++) a[i] = i;
            long s = 0;
            for (int i = 0; i < 8; i++) s += a[i];
            print_i64(s);
            free((void*)a);
            return 0;
        }""",
    "stack": r"""
        int main() {
            int a[8];
            for (int i = 0; i < 8; i++) a[i] = i * 2;
            print_i64(a[7]);
            return 0;
        }""",
    "global": r"""
        int g[8];
        int main() {
            for (int i = 0; i < 8; i++) g[i] = i;
            print_i64(g[0] + g[7]);
            return 0;
        }""",
    "one-past-end-pointer": r"""
        int main() {
            int a[4];
            int *end = &a[4];       // one past the end: legal to form
            int *p = a;
            int n = 0;
            while (p != end) { *p = n; p++; n++; }
            print_i64(a[3]);
            return 0;
        }""",
    "interior-pointers": r"""
        struct item { int key; int value; };
        int main() {
            struct item *items =
                (struct item *) malloc(sizeof(struct item) * 4);
            for (int i = 0; i < 4; i++) {
                items[i].key = i; items[i].value = i * i;
            }
            int *vp = &items[2].value;
            print_i64(*vp);
            free((void*)items);
            return 0;
        }""",
}

VIOLATING_PROGRAMS = {
    # (source, SB outcome, LF outcome)
    "heap-overflow-write": (r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            a[100] = 1;             // far out of bounds
            return (int)a[100];
        }""", "violation:deref", "violation:deref"),
    "heap-overflow-read": (r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            int x = a[100];
            free((void*)a);
            return x;
        }""", "violation:deref", "violation:deref"),
    "heap-underflow": (r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            int *p = a - 2;
            *p = 5;                 // below the allocation
            return *p;
        }""", "violation:deref", "violation:deref"),
    "global-overflow": (r"""
        int g[4];
        int pad[4096];
        int main() {
            int *p = g;
            p[2000] = 9;            // way past g
            return p[2000];
        }""", "violation:deref", "violation:deref"),
    "stack-overflow": (r"""
        int main() {
            int a[4];
            int *p = &a[0];
            p[500] = 1;
            return p[500];
        }""", "violation:deref", "violation:deref"),
    # Classic off-by-one: 64*4 = 256 B requests a 512 B low-fat class
    # (the +1 pad), so the overflow lands in padding -- SoftBound
    # reports it, Low-Fat does NOT (the paper's padding blind spot).
    "off-by-one-write": (r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 64);
            for (int i = 0; i <= 64; i++) a[i] = i;   // classic <=
            return a[0];
        }""", "violation:deref", "ok"),
}


class TestCleanPrograms:
    @pytest.mark.parametrize("name", sorted(CLEAN_PROGRAMS))
    @pytest.mark.parametrize("config", [SB, LF], ids=["softbound", "lowfat"])
    def test_no_false_positive(self, name, config):
        assert outcome(CLEAN_PROGRAMS[name], config) == "ok"

    @pytest.mark.parametrize("name", sorted(CLEAN_PROGRAMS))
    @pytest.mark.parametrize("config", [SB, LF], ids=["softbound", "lowfat"])
    def test_output_matches_baseline(self, name, config):
        baseline = compile_and_run(CLEAN_PROGRAMS[name], options=OPTS,
                                   max_instructions=2_000_000)
        sanitized = compile_and_run(CLEAN_PROGRAMS[name], config, OPTS,
                                    max_instructions=2_000_000)
        assert sanitized.output == baseline.output


class TestViolatingPrograms:
    @pytest.mark.parametrize("name", sorted(VIOLATING_PROGRAMS))
    def test_softbound_detects(self, name):
        src, sb_expected, _ = VIOLATING_PROGRAMS[name]
        assert outcome(src, SB) == sb_expected

    @pytest.mark.parametrize("name", sorted(VIOLATING_PROGRAMS))
    def test_lowfat_detects(self, name):
        src, _, lf_expected = VIOLATING_PROGRAMS[name]
        assert outcome(src, LF) == lf_expected


class TestWidthAwareChecks:
    def test_wide_access_at_boundary(self):
        """An 8-byte access whose first byte is in bounds but whose
        last byte is not must be rejected (checks are width-aware)."""
        src = r"""
        int main() {
            char *a = (char *) malloc(12);
            long *p = (long *) (a + 8);
            *p = 1;                 // bytes 8..15, but only 12 exist
            return 0;
        }"""
        assert outcome(src, SB) == "violation:deref"
        # Low-Fat: 12+1 -> 16-byte class; bytes 8..15 are inside the
        # padded slot, so this is exactly the padding blind spot.
        assert outcome(src, LF) == "ok"

    def test_wide_access_past_padding_rejected_by_lowfat(self):
        src = r"""
        int main() {
            char *a = (char *) malloc(12);
            long *p = (long *) (a + 12);
            *p = 1;                 // bytes 12..19: crosses the 16B slot
            return 0;
        }"""
        assert outcome(src, LF) == "violation:deref"


class TestModes:
    def test_geninvariants_mode_does_not_check_derefs(self):
        src = r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            a[9] = 1;               // OOB into padding/neighbour gap
            return 0;
        }"""
        meta = InstrumentationConfig.softbound(mode="geninvariants")
        # no deref checks: the access hits the heap guard gap -> fault,
        # not a reported violation
        assert outcome(src, meta) in ("fault", "ok")

    def test_noop_config_runs_unchecked(self):
        from repro import NOOP

        src = "int main() { print_i64(1); return 0; }"
        result = compile_and_run(src, NOOP, OPTS, max_instructions=100_000)
        assert result.ok and result.output == ["1"]
        assert result.stats.checks_executed == 0

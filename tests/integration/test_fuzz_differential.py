"""Differential fuzzing: randomly generated well-defined MiniC programs
must produce identical output

* at -O0 and -O3 (compiler soundness),
* under SoftBound and Low-Fat instrumentation (instrumentation
  transparency: a sanitizer must not change defined behaviour),
* through the cached parallel experiment engine (harness soundness:
  worker transport and the disk cache must not change any observable
  result).

The generator only emits defined behaviour: array indices are masked
into bounds, divisors are forced nonzero, shift amounts are masked, and
loops have constant trip counts.
"""

import hashlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompileOptions, compile_and_run, compile_program, run_program
from repro.core import InstrumentationConfig
from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentEngine, JobRequest
from repro.workloads import Workload

VARS = ["v0", "v1", "v2", "v3"]
ARRAYS = [("arr", 16), ("grid", 8)]


@st.composite
def expressions(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 3 else 1))
    if choice == 0:
        return str(draw(st.integers(-100, 100)))
    if choice == 1:
        return draw(st.sampled_from(VARS))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({left} {op} {right})"
    if choice == 3:
        op = draw(st.sampled_from(["/", "%"]))
        return f"({left} {op} (({right} & 15) + 1))"   # nonzero divisor
    if choice == 4:
        op = draw(st.sampled_from(["<<", ">>"]))
        return f"({left} {op} ({right} & 7))"          # bounded shift
    name, size = draw(st.sampled_from(ARRAYS))
    return f"{name}[({left}) & {size - 1}]"            # in-bounds index


@st.composite
def statements(draw, depth=0):
    choice = draw(st.integers(0, 3 if depth < 2 else 1))
    if choice == 0:
        var = draw(st.sampled_from(VARS))
        return f"{var} = {draw(expressions())};"
    if choice == 1:
        name, size = draw(st.sampled_from(ARRAYS))
        idx = draw(expressions())
        return f"{name}[({idx}) & {size - 1}] = {draw(expressions())};"
    if choice == 2:
        cond = draw(expressions())
        then = draw(statements(depth=depth + 1))
        other = draw(statements(depth=depth + 1))
        return f"if (({cond}) > 0) {{ {then} }} else {{ {other} }}"
    trip = draw(st.integers(1, 6))
    body = draw(statements(depth=depth + 1))
    loop_var = f"it{depth}"
    return (f"for (int {loop_var} = 0; {loop_var} < {trip}; {loop_var}++) "
            f"{{ {body} v0 = v0 + {loop_var}; }}")


@st.composite
def programs(draw):
    body = "\n    ".join(draw(st.lists(statements(), min_size=3, max_size=10)))
    decls = "\n    ".join(f"int {v} = {draw(st.integers(-50, 50))};"
                          for v in VARS)
    arrays = "\n    ".join(
        f"int {name}[{size}];" for name, size in ARRAYS
    )
    fills = "\n    ".join(
        f"for (int i = 0; i < {size}; i++) {name}[i] = i * {draw(st.integers(1, 9))};"
        for name, size in ARRAYS
    )
    prints = "\n    ".join(f"print_i64({v});" for v in VARS)
    array_sums = "\n    ".join(
        f"{{ long s = 0; for (int i = 0; i < {size}; i++) s += {name}[i]; "
        f"print_i64(s); }}"
        for name, size in ARRAYS
    )
    return f"""
int main() {{
    {arrays}
    {decls}
    {fills}
    {body}
    {prints}
    {array_sums}
    return 0;
}}
"""


FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(programs())
@FUZZ_SETTINGS
def test_o0_equals_o3(source):
    o0 = compile_and_run(source, options=CompileOptions(opt_level=0),
                         max_instructions=3_000_000)
    o3 = compile_and_run(source, options=CompileOptions(opt_level=3),
                         max_instructions=3_000_000)
    assert o0.ok, o0.describe()
    assert o3.ok, o3.describe()
    assert o0.output == o3.output


@given(programs())
@FUZZ_SETTINGS
def test_instrumentation_transparency(source):
    baseline = compile_and_run(source, max_instructions=3_000_000)
    assert baseline.ok, baseline.describe()
    for config in (InstrumentationConfig.softbound(opt_dominance=True),
                   InstrumentationConfig.lowfat(opt_dominance=True)):
        result = compile_and_run(source, config, max_instructions=5_000_000)
        assert result.ok, f"{config.approach}: {result.describe()}"
        assert result.output == baseline.output


#: Shared across all fuzz examples: worker pool startup and the disk
#: cache are part of what this oracle exercises.
_FUZZ_ENGINE = ExperimentEngine(
    jobs=2,
    cache=ResultCache(tempfile.mkdtemp(prefix="repro-fuzz-cache-")),
)

_ENGINE_FUZZ_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(programs())
@_ENGINE_FUZZ_SETTINGS
def test_engine_oracle(source):
    """Third oracle: the cached parallel engine must agree with a
    direct ``compile_and_run`` on output *and* every counter."""
    workload = Workload(
        name=f"fuzz-{hashlib.sha256(source.encode()).hexdigest()[:12]}",
        sources={"fuzz.c": source},
        description="generated fuzz program",
    )
    results = _FUZZ_ENGINE.run_many([
        JobRequest(workload, label)
        for label in ("baseline", "softbound", "lowfat")
    ])
    for engine_result in results:
        assert engine_result.ok, \
            f"{engine_result.label}: {engine_result.describe}"
        if engine_result.label == "baseline":
            direct = compile_and_run(source, max_instructions=5_000_000)
        else:
            config = (InstrumentationConfig.softbound(opt_dominance=True)
                      if engine_result.label == "softbound"
                      else InstrumentationConfig.lowfat(opt_dominance=True))
            direct = compile_and_run(source, config,
                                     max_instructions=5_000_000)
        assert engine_result.output == direct.output
        assert engine_result.cycles == direct.stats.cycles
        assert engine_result.instructions == direct.stats.instructions
        assert engine_result.checks_executed == direct.stats.checks_executed
        assert engine_result.checks_wide == direct.stats.checks_wide


@given(programs())
@FUZZ_SETTINGS
def test_early_extension_point_transparency(source):
    baseline = compile_and_run(source, max_instructions=3_000_000)
    assert baseline.ok
    options = CompileOptions(extension_point="ModuleOptimizerEarly")
    result = compile_and_run(
        source, InstrumentationConfig.softbound(), options,
        max_instructions=5_000_000,
    )
    assert result.ok, result.describe()
    assert result.output == baseline.output

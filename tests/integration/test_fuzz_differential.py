"""Differential fuzzing: the standing correctness gate.

A bounded, *seeded* corpus of generated MiniC programs (see
:mod:`repro.fuzz.generator`; every program has fully defined
behaviour) runs through the complete
{VM engine} x {mechanism} x {check filter} matrix and must agree on
every observable and counter invariant:

* instrumentation transparency: SoftBound / Low-Fat, with and without
  the dominance and value-range check-elimination filters, must
  reproduce the baseline's output exactly;
* engine equivalence: the closure-compiled tier and the reference
  tree-walker must agree bit-for-bit on outputs *and* statistics;
* filter soundness: dynamic check counts obey
  ranges <= dominance <= unfiltered, and the baseline executes zero
  checks.

Unlike its hypothesis-based predecessor this corpus is deterministic:
a failure here names a ``(seed, index)`` pair anyone can replay with
``python -m repro fuzz`` and shrink with ``repro.fuzz.reduce``.
"""

import os

import pytest

from repro.fuzz import FULL_MATRIX, DifferentialOracle, generate_corpus

#: ~100 programs as the standing gate; override (e.g. smoke-size) via
#: the environment without editing the test.
CORPUS_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
CORPUS_SIZE = int(os.environ.get("REPRO_FUZZ_COUNT", "100"))
CHUNK = 20

_CORPUS = generate_corpus(CORPUS_SEED, CORPUS_SIZE)
_CHUNKS = [_CORPUS[i:i + CHUNK] for i in range(0, len(_CORPUS), CHUNK)]


@pytest.fixture(scope="module")
def oracle():
    jobs = min(4, os.cpu_count() or 1)
    return DifferentialOracle(matrix=FULL_MATRIX, jobs=jobs,
                              max_instructions=5_000_000)


@pytest.mark.parametrize("chunk", range(len(_CHUNKS)))
def test_full_matrix_agreement(oracle, chunk):
    programs = _CHUNKS[chunk]
    report = oracle.run(programs, seed=CORPUS_SEED)
    assert report.ok, (
        "differential mismatches (replay: python -m repro fuzz "
        f"--seed {CORPUS_SEED} --count {CORPUS_SIZE}):\n"
        + "\n".join(m.headline() for m in report.mismatches))
    assert report.cells_per_program == len(FULL_MATRIX)


def test_corpus_is_seeded_and_stable():
    again = generate_corpus(CORPUS_SEED, CORPUS_SIZE)
    assert [p.sources for p in again] == [p.sources for p in _CORPUS]

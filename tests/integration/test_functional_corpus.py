"""The artifact's functional suite (Appendix A.5), generated.

~200 executions: every corpus program is instrumented with SoftBound
and Low-Fat Pointers and must match the model's predicted verdict --
violating programs are reported (except where they land in Low-Fat's
class padding), clean programs run unmodified with baseline-identical
output.
"""

import pytest

from repro import CompileOptions, compile_and_run
from repro.core import InstrumentationConfig
from repro.workloads.functional import corpus_by_name, generate_corpus

CONFIGS = {
    "softbound": InstrumentationConfig.softbound(),
    "lowfat": InstrumentationConfig.lowfat(),
}
CORPUS = corpus_by_name()
ALL_NAMES = sorted(CORPUS)
CLEAN_NAMES = sorted(n for n, c in CORPUS.items() if c.violation == "none")


def observed(case, approach):
    result = compile_and_run(
        case.source, CONFIGS[approach], max_instructions=2_000_000
    )
    if result.violation is not None:
        return "violation", result
    # An unreported OOB may silently corrupt or trap; for verdict
    # purposes only *reported* violations count (as in the artifact).
    return "ok", result


class TestCorpusShape:
    def test_corpus_size(self):
        # 3 regions x 4 types x (1 clean + 2 accesses x 3 violations)
        assert len(generate_corpus()) == 3 * 4 * 7 == 84

    def test_all_dimensions_covered(self):
        regions = {c.region for c in CORPUS.values()}
        elements = {c.element for c in CORPUS.values()}
        violations = {c.violation for c in CORPUS.values()}
        assert regions == {"heap", "stack", "global"}
        assert elements == {"char", "int", "long", "double"}
        assert violations == {"none", "adjacent", "far", "underflow"}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_softbound_verdict(name):
    case = CORPUS[name]
    verdict, result = observed(case, "softbound")
    assert verdict == case.expected["softbound"], result.describe()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_lowfat_verdict(name):
    case = CORPUS[name]
    verdict, result = observed(case, "lowfat")
    assert verdict == case.expected["lowfat"], result.describe()


@pytest.mark.parametrize("name", CLEAN_NAMES)
def test_clean_programs_output_is_baseline_identical(name):
    case = CORPUS[name]
    baseline = compile_and_run(case.source, max_instructions=2_000_000)
    assert baseline.ok
    for approach in CONFIGS:
        verdict, result = observed(case, approach)
        assert verdict == "ok"
        assert result.output == baseline.output

"""The paper's Section 4 usability case studies, as executable tests.

Each test reproduces one of the paper's findings about how valid C
programs are unexpectedly rejected, or violations remain unnoticed:

* 4.2  out-of-bounds pointer arithmetic -> Low-Fat invariant reports;
* 4.3  uninstrumented libraries -> stale shadow-stack return bounds;
* 4.3  size-less extern arrays -> SoftBound wide bounds;
* 4.4  integer-obfuscated pointer copies (Figure 7's swap) -> SoftBound
       stale trie metadata, spurious report;
* 4.5  byte-wise pointer copies -> same;
* 4.6  >1 GiB allocations -> Low-Fat fallback, unchecked accesses;
* Appendix B: intra-object overflow folded away by the frontend.
"""

import pytest

from repro import CompileOptions, compile_program, compile_and_run, run_program
from repro.core import InstrumentationConfig

SB = InstrumentationConfig.softbound()
LF = InstrumentationConfig.lowfat()


def classify(result):
    if result.violation is not None:
        return f"violation:{result.violation.kind}"
    if result.fault is not None:
        return "fault"
    return "ok"


class TestOutOfBoundsPointerArithmetic:
    """Section 4.2: 73% of C programmers expect OOB pointer arithmetic
    to work when brought back in bounds before the access."""

    USE_TU = "long use(int *p) { return p[1]; }\n"
    MAIN_TU = r"""
    long use(int *p);
    int main() {
        int *a = (int *) malloc(sizeof(int) * 8);
        a[0] = 5;
        long v = use(a - 1);       // OOB pointer, back in bounds inside
        print_i64(v);
        free((void*)a);
        return 0;
    }"""

    def _run(self, config):
        program = compile_program(
            {"use.c": self.USE_TU, "main.c": self.MAIN_TU}, config,
            CompileOptions(verify=True),
        )
        return run_program(program, max_instructions=1_000_000)

    def test_softbound_accepts(self):
        result = self._run(SB)
        assert classify(result) == "ok"
        assert result.output == ["5"]

    def test_lowfat_rejects_at_escape(self):
        result = self._run(LF)
        assert classify(result) == "violation:invariant"

    def test_pseudo_base_one_array(self):
        """The perl/254gap pattern (Section 5.1.1): a pointer one
        element before an array's start."""
        src = r"""
        long consume(int *base1) { return base1[1] + base1[3]; }
        int main() {
            int *a = (int *) malloc(sizeof(int) * 8);
            for (int i = 0; i < 8; i++) a[i] = i * 10;
            long v = consume(a - 1);  // pseudo base-one array
            print_i64(v);
            free((void*)a);
            return 0;
        }"""
        sources = {"lib.c": "long consume(int *base1) { return base1[1] + base1[3]; }",
                   "main.c": src.replace(
                       "long consume(int *base1) { return base1[1] + base1[3]; }",
                       "long consume(int *base1);")}
        lf = run_program(compile_program(sources, LF, CompileOptions(verify=True)),
                         max_instructions=1_000_000)
        assert classify(lf) == "violation:invariant"
        sb = run_program(compile_program(sources, SB, CompileOptions(verify=True)),
                         max_instructions=1_000_000)
        assert classify(sb) == "ok"


class TestObfuscatedSwap:
    """Section 4.4 / Figure 7: one translation unit moves pointers
    through i64 loads/stores (the LLVM-12-style translation)."""

    SWAP_TU = r"""
    void swap(double **one, double **two) {
        double *tmp = *one;
        *one = *two;
        *two = tmp;
    }"""
    MAIN_TU = r"""
    void swap(double **one, double **two);
    double ga; double gb;
    int main() {
        double *pa = &ga; double *pb = &gb;
        ga = 1.5; gb = 2.5;
        swap(&pa, &pb);
        print_f64(*pa + *pb);
        return 0;
    }"""

    def _run(self, config, obfuscate):
        options = CompileOptions(
            verify=True,
            obfuscate_pointer_copies=["swap.c"] if obfuscate else False,
        )
        program = compile_program(
            {"swap.c": self.SWAP_TU, "main.c": self.MAIN_TU}, config, options
        )
        return run_program(program, max_instructions=1_000_000)

    def test_clean_translation_fine_for_both(self):
        assert classify(self._run(SB, False)) == "ok"
        assert classify(self._run(LF, False)) == "ok"

    def test_softbound_false_positive_on_obfuscated(self):
        """The stores through i64 bypass the trie; main later loads the
        pointer with *stale* metadata and reports a spurious error."""
        result = self._run(SB, True)
        assert classify(result) == "violation:deref"

    def test_lowfat_unaffected(self):
        result = self._run(LF, True)
        assert classify(result) == "ok"
        assert result.output == ["4.000000"]


class TestByteWiseCopy:
    """Section 4.5: copying a pointer byte-by-byte (legal C) leaves
    SoftBound's metadata behind."""

    SRC = r"""
    int main() {
        long x = 77;
        long *src = &x;
        long *dst;
        char *from = (char *) &src;
        char *to = (char *) &dst;
        for (int i = 0; i < 8; i++) to[i] = from[i];
        print_i64(*dst);
        return 0;
    }"""

    def test_softbound_spurious_report(self):
        result = compile_and_run(self.SRC, SB, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert classify(result) == "violation:deref"

    def test_lowfat_fine(self):
        result = compile_and_run(self.SRC, LF, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert classify(result) == "ok"
        assert result.output == ["77"]

    def test_memcpy_fixes_softbound(self):
        """The paper's fix for 300twolf: memcpy instead of the manual
        loop -- the wrapper copies the metadata (Figure 6)."""
        fixed = self.SRC.replace(
            "for (int i = 0; i < 8; i++) to[i] = from[i];",
            "memcpy((void*)to, (void*)from, 8);",
        )
        result = compile_and_run(fixed, SB, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert classify(result) == "ok"
        assert result.output == ["77"]


class TestSizeLessExternArrays:
    """Section 4.3: size-less declarations under separate compilation."""

    DATA_TU = "int shared[16];\n"
    USE_TU = r"""
    extern int shared[];
    long total() {
        long t = 0;
        for (int i = 0; i < 16; i++) t += shared[i];
        return t;
    }"""
    MAIN_TU = r"""
    long total();
    extern int shared[];
    int main() {
        for (int i = 0; i < 16; i++) shared[i] = i;
        print_i64(total());
        return 0;
    }"""

    def _program(self, config):
        return compile_program(
            {"data.c": self.DATA_TU, "use.c": self.USE_TU,
             "main.c": self.MAIN_TU},
            config, CompileOptions(verify=True),
        )

    def test_softbound_wide_bounds(self):
        result = run_program(self._program(SB), max_instructions=1_000_000)
        assert result.ok
        assert result.stats.checks_wide > 0

    def test_lowfat_fully_checked(self):
        result = run_program(self._program(LF), max_instructions=1_000_000)
        assert result.ok
        assert result.stats.checks_wide == 0

    def test_softbound_null_upper_rejects(self):
        """Without -mi-sb-size-zero-wide-upper, NULL bounds cause
        spurious reports (the paper's other option)."""
        strict = SB.with_(sb_size_zero_wide_upper=False)
        result = run_program(self._program(strict), max_instructions=1_000_000)
        assert classify(result) == "violation:deref"

    def test_softbound_overflow_through_sizeless_missed(self):
        """The security cost of wide bounds: a real overflow through
        the size-less array goes undetected by SoftBound but is caught
        by Low-Fat (Table 2's 164gzip column)."""
        bad_use = self.USE_TU.replace("i < 16", "i < 600000")
        sources = {"data.c": self.DATA_TU, "use.c": bad_use,
                   "main.c": self.MAIN_TU}
        sb = run_program(
            compile_program(sources, SB, CompileOptions(verify=True)),
            max_instructions=20_000_000,
        )
        assert sb.violation is None     # missed (faults eventually)
        lf = run_program(
            compile_program(sources, LF, CompileOptions(verify=True)),
            max_instructions=20_000_000,
        )
        assert classify(lf) == "violation:deref"


class TestUninstrumentedLibraries:
    """Section 4.3: calls into code that was never recompiled."""

    def test_stale_return_bounds_cause_spurious_report(self):
        # `mystery` is declared but never defined/instrumented; the VM
        # provides a native implementation (the "binary-only library").
        sources = {"main.c": r"""
        int *mystery();
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);   // sets ret slot
            a[0] = 1;
            int *p = mystery();     // does NOT update the ret slot
            p[9] = 5;               // checked against malloc's bounds!
            return 0;
        }"""}
        program = compile_program(sources, SB, CompileOptions(verify=True))

        from repro.driver import make_vm
        from repro.vm.memory import Allocation

        vm = make_vm(program, max_instructions=1_000_000)

        def mystery(vm_, args):
            alloc = vm_.heap.malloc(64, "library-object")
            return alloc.base

        vm.register_native("mystery", mystery)
        program.module.get_function("mystery").native = True
        from repro.errors import MemSafetyViolation

        with pytest.raises(MemSafetyViolation):
            vm.run()


class TestHugeAllocations:
    """Section 4.6: Low-Fat cannot track objects above 1 GiB."""

    SRC = r"""
    int main() {
        char *big = (char *) malloc(1073741824);
        big[0] = 1;
        big[1073741823] = 2;
        print_i64(big[0] + big[1073741823]);
        free((void*)big);
        return 0;
    }"""

    def test_lowfat_falls_back_and_goes_wide(self):
        result = compile_and_run(self.SRC, LF, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert result.ok
        assert result.stats.lowfat_fallback_allocs == 1
        assert result.stats.checks_wide > 0

    def test_softbound_tracks_huge_allocations(self):
        result = compile_and_run(self.SRC, SB, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert result.ok
        assert result.stats.checks_wide == 0

    def test_softbound_detects_overflow_of_huge_allocation(self):
        bad = self.SRC.replace("big[1073741823] = 2;", "big[1073741830] = 2;")
        result = compile_and_run(bad, SB, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert classify(result) == "violation:deref"


class TestIntraObjectOverflow:
    """Appendix B / Figure 14: &P.y - 1 folds to &P.x at -O1, so there
    is no issue left to report at the IR level."""

    SRC = r"""
    struct simple_pair { int x; int y; };
    struct simple_pair P;
    int main() {
        int *p = &P.y - 1;      // intra-object: points at P.x
        *p = 42;
        print_i64(P.x);
        return 0;
    }"""

    @pytest.mark.parametrize("config", [SB, LF], ids=["softbound", "lowfat"])
    def test_folded_away_not_reported(self, config):
        result = compile_and_run(self.SRC, config, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert classify(result) == "ok"
        assert result.output == ["42"]


class TestIntToPtrCasts:
    """Section 4.4: integer-to-pointer casts."""

    # The intervening store keeps GVN from forwarding `stash` back to
    # the cast (which would fold inttoptr(ptrtoint(a)) away entirely).
    SRC = r"""
    long stash;
    int main() {
        int *a = (int *) malloc(sizeof(int) * 4);
        stash = (long) a;
        a[0] = 9;
        int *back = (int *) stash;
        print_i64(back[0]);
        free((void*)a);
        return 0;
    }"""

    def test_softbound_wide_bounds_accepts(self):
        result = compile_and_run(self.SRC, SB, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert result.ok
        assert result.stats.checks_wide > 0   # unchecked, though

    def test_softbound_null_bounds_rejects(self):
        strict = SB.with_(sb_inttoptr_wide_bounds=False)
        result = compile_and_run(self.SRC, strict, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert classify(result) == "violation:deref"

    def test_lowfat_recovers_base_from_value(self):
        result = compile_and_run(self.SRC, LF, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert result.ok
        assert result.stats.checks_wide == 0  # base derived from value

    def test_lowfat_misses_corruption_through_int(self):
        """Low-Fat's invariant blind spot: the integer is corrupted to
        point into a *different* object; the base is recomputed from
        the corrupted value, so the access is 'in bounds' of the wrong
        object."""
        src = r"""
        long stash;
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            int *b = (int *) malloc(sizeof(int) * 4);
            b[0] = 1;
            stash = (long) a;
            stash = stash + ((long) b - (long) a);   // corrupted!
            int *p = (int *) stash;
            *p = 99;                 // silently writes b[0]
            print_i64(b[0]);
            free((void*)a); free((void*)b);
            return 0;
        }"""
        result = compile_and_run(src, LF, CompileOptions(verify=True),
                                 max_instructions=1_000_000)
        assert result.ok                     # undetected
        assert result.output == ["99"]       # silent corruption

"""Tests for the IR interpreter: semantics of every instruction class."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault, ProgramAbort, VMError
from repro.frontend import compile_source
from repro.ir import (
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
    ptr,
)
from repro.vm import VirtualMachine


def run_minic(src: str, max_instructions=2_000_000):
    mod = compile_source(src)
    vm = VirtualMachine(mod, max_instructions=max_instructions)
    code = vm.run()
    return code, vm.output, vm


class TestArithmetic:
    def test_int_ops(self):
        code, out, _ = run_minic(r"""
        int main() {
            print_i64(7 + 3); print_i64(7 - 3); print_i64(7 * 3);
            print_i64(7 / 3); print_i64(7 % 3);
            print_i64(-7 / 3); print_i64(-7 % 3);
            print_i64(7 & 3); print_i64(7 | 8); print_i64(7 ^ 5);
            print_i64(1 << 4); print_i64(-8 >> 1);
            return 0;
        }""")
        assert out == ["10", "4", "21", "2", "1", "-2", "-1",
                       "3", "15", "2", "16", "-4"]

    def test_unsigned_ops(self):
        code, out, _ = run_minic(r"""
        int main() {
            unsigned a = 3000000000;
            unsigned b = 3;
            print_i64(a / b);
            print_i64(a >> 1);
            print_i64((long)(a < b));
            return 0;
        }""")
        assert out == ["1000000000", "1500000000", "0"]

    def test_int_overflow_wraps(self):
        code, out, _ = run_minic(r"""
        int main() {
            int x = 2147483647;
            x = x + 1;
            print_i64(x);
            return 0;
        }""")
        assert out == ["-2147483648"]

    def test_float_ops(self):
        code, out, _ = run_minic(r"""
        int main() {
            double a = 7.5; double b = 2.0;
            print_f64(a + b); print_f64(a - b); print_f64(a * b);
            print_f64(a / b);
            print_i64((long)(a > b));
            return 0;
        }""")
        assert out == ["9.500000", "5.500000", "15.000000", "3.750000", "1"]

    def test_division_by_zero_faults(self):
        mod = compile_source(r"""
        int main() { int z = 0; return 1 / z; }""")
        vm = VirtualMachine(mod)
        with pytest.raises(MemoryFault, match="division by zero"):
            vm.run()

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    def test_add_matches_c_semantics(self, a, b):
        code, out, _ = run_minic(f"""
        int main() {{
            int a = {a}; int b = {b};
            print_i64(a + b);
            return 0;
        }}""")
        expected = ((a + b + 2**31) % 2**32) - 2**31
        assert out == [str(expected)]


class TestControlFlow:
    def test_recursion(self):
        code, out, _ = run_minic(r"""
        int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
        int main() { print_i64(fact(10)); return 0; }""")
        assert out == ["3628800"]

    def test_loops_and_break_continue(self):
        code, out, _ = run_minic(r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 50) break;
                s += i;
            }
            print_i64(s);
            return 0;
        }""")
        assert out == [str(sum(i for i in range(1, 51) if i % 2))]

    def test_do_while(self):
        code, out, _ = run_minic(r"""
        int main() {
            int n = 0;
            do { n++; } while (n < 5);
            print_i64(n);
            int m = 10;
            do { m++; } while (m < 5);
            print_i64(m);   // body runs once
            return 0;
        }""")
        assert out == ["5", "11"]

    def test_short_circuit(self):
        code, out, _ = run_minic(r"""
        int bomb() { int *p = NULL; return *p; }
        int main() {
            int x = 0;
            if (x != 0 && bomb()) print_i64(-1);
            if (x == 0 || bomb()) print_i64(1);
            return 0;
        }""")
        assert out == ["1"]

    def test_exit_code(self):
        code, out, _ = run_minic("int main() { return 42; }")
        assert code == 42

    def test_exit_builtin(self):
        code, out, _ = run_minic(r"""
        int main() { exit(7); print_i64(1); return 0; }""")
        assert code == 7
        assert out == []

    def test_abort(self):
        mod = compile_source("int main() { abort(); return 0; }")
        with pytest.raises(ProgramAbort):
            VirtualMachine(mod).run()

    def test_instruction_budget(self):
        mod = compile_source("int main() { while (1) {} return 0; }")
        vm = VirtualMachine(mod, max_instructions=10_000)
        with pytest.raises(VMError, match="budget"):
            vm.run()


class TestMemorySemantics:
    def test_pointer_roundtrip_through_int(self):
        code, out, _ = run_minic(r"""
        int main() {
            int *p = (int *) malloc(sizeof(int));
            *p = 99;
            long addr = (long) p;
            int *q = (int *) addr;
            print_i64(*q);
            free((void*)p);
            return 0;
        }""")
        assert out == ["99"]

    def test_pointer_difference(self):
        code, out, _ = run_minic(r"""
        int main() {
            int a[10];
            print_i64(&a[7] - &a[2]);
            return 0;
        }""")
        assert out == ["5"]

    def test_struct_layout_in_memory(self):
        code, out, _ = run_minic(r"""
        struct mixed { char c; long l; int i; };
        int main() {
            print_i64(sizeof(struct mixed));
            struct mixed m;
            m.c = 'x'; m.l = 1000000; m.i = -5;
            print_i64(m.c); print_i64(m.l); print_i64(m.i);
            return 0;
        }""")
        assert out == ["24", "120", "1000000", "-5"]

    def test_global_initialization(self):
        code, out, _ = run_minic(r"""
        int g_scalar = 17;
        double g_float = 2.5;
        int g_zero[4];
        int main() {
            print_i64(g_scalar);
            print_f64(g_float);
            print_i64(g_zero[0] + g_zero[3]);
            return 0;
        }""")
        assert out == ["17", "2.500000", "0"]

    def test_memcpy_memset(self):
        code, out, _ = run_minic(r"""
        int main() {
            char *a = (char *) malloc(16);
            char *b = (char *) malloc(16);
            memset((void*)a, 65, 15);
            a[15] = 0;
            memcpy((void*)b, (void*)a, 16);
            print_str(b);
            print_i64(strlen(b));
            return 0;
        }""")
        assert out == ["A" * 15, "15"]

    def test_string_functions(self):
        code, out, _ = run_minic(r"""
        int main() {
            char *s = "hello";
            char *buf = (char *) malloc(16);
            strcpy(buf, s);
            print_i64(strcmp(buf, s));
            print_i64(strlen(buf));
            return 0;
        }""")
        assert out == ["0", "5"]

    def test_oob_heap_write_faults_or_corrupts(self):
        # Far out-of-bounds hits unmapped memory: the simulated hardware
        # traps (no sanitizer needed for this one).
        mod = compile_source(r"""
        int main() {
            int *p = (int *) malloc(sizeof(int) * 4);
            p[1000000] = 1;
            return 0;
        }""")
        with pytest.raises(MemoryFault):
            VirtualMachine(mod).run()

    def test_dangling_stack_pointer_faults(self):
        mod = compile_source(r"""
        int *escape() { int local = 5; return &local; }
        int main() {
            int *p = escape();
            return *p;
        }""")
        with pytest.raises(MemoryFault):
            VirtualMachine(mod).run()


class TestStats:
    def test_cycle_accounting_deterministic(self):
        src = r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 100; i++) s += i;
            print_i64(s);
            return 0;
        }"""
        _, _, vm1 = run_minic(src)
        _, _, vm2 = run_minic(src)
        assert vm1.stats.cycles == vm2.stats.cycles
        assert vm1.stats.instructions == vm2.stats.instructions
        assert vm1.stats.cycles > 0

    def test_load_store_counting(self):
        _, _, vm = run_minic(r"""
        int g;
        int main() { g = 1; return g; }""")
        assert vm.stats.stores >= 1
        assert vm.stats.loads >= 1

"""Corpus-wide engine differential: compiled tier == tree-walker.

The closure-compiled execution tier promises *bit-identical* results
to the reference tree-walker -- same program output, same exit status,
same ``RuntimeStats`` field for field (``cycles``, ``instructions``,
``opcode_counts``, every check counter, ``per_site``).  That contract
is what lets cached experiment results replay under either engine
without a cache-version bump, so it is enforced here over the full
matrix: all 20 workloads under uninstrumented, SoftBound, and Low-Fat
configurations.

Each cell compiles once and runs each engine once; the whole matrix is
the most expensive test module in the suite, which is the point -- any
stats divergence anywhere in the corpus fails loudly.
"""

import dataclasses
from typing import Dict, Tuple

import pytest

from repro.driver import CompileOptions, CompiledProgram, compile_program, run_program
from repro.experiments.common import config_for
from repro.workloads import get
from repro.workloads.registry import all_names

LABELS = ("baseline", "softbound", "lowfat")
MAX_INSTRUCTIONS = 100_000_000

_PROGRAMS: Dict[Tuple[str, str], CompiledProgram] = {}


def _compiled_program(name: str, label: str) -> CompiledProgram:
    key = (name, label)
    program = _PROGRAMS.get(key)
    if program is None:
        workload = get(name)
        config = config_for(label)
        options = CompileOptions(
            obfuscate_pointer_copies=tuple(workload.obfuscated_units)
        )
        if config is None:
            program = compile_program(workload.sources, options=options)
        else:
            program = compile_program(workload.sources, config, options)
        _PROGRAMS[key] = program
    return program


def _diff_stats(a, b) -> str:
    lines = []
    da, db = dataclasses.asdict(a), dataclasses.asdict(b)
    for field in da:
        if da[field] == db[field]:
            continue
        if isinstance(da[field], dict):
            ka, kb = set(da[field]), set(db[field])
            lines.append(
                f"  {field}: only-interp={sorted(ka - kb)[:5]} "
                f"only-compiled={sorted(kb - ka)[:5]} "
                f"diverging={[k for k in sorted(ka & kb) if da[field][k] != db[field][k]][:5]}"
            )
        else:
            lines.append(f"  {field}: interp={da[field]} compiled={db[field]}")
    return "\n".join(lines)


@pytest.mark.parametrize("label", LABELS)
@pytest.mark.parametrize("name", all_names())
def test_engines_bit_identical(name, label):
    program = _compiled_program(name, label)
    interp = run_program(program, max_instructions=MAX_INSTRUCTIONS,
                         engine="interp")
    compiled = run_program(program, max_instructions=MAX_INSTRUCTIONS,
                           engine="compiled")

    assert compiled.output == interp.output, f"{name}/{label}: output differs"
    assert compiled.exit_code == interp.exit_code
    assert compiled.describe() == interp.describe()
    assert dataclasses.asdict(compiled.stats) == \
        dataclasses.asdict(interp.stats), (
            f"{name}/{label}: RuntimeStats diverge\n"
            + _diff_stats(interp.stats, compiled.stats))

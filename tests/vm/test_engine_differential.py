"""Corpus-wide engine differential: all execution tiers agree.

The closure-compiled and codegen execution tiers promise
*bit-identical* results to the reference tree-walker -- same program
output, same exit status, same ``RuntimeStats`` field for field
(``cycles``, ``instructions``, ``opcode_counts``, every check counter,
``per_site``).  That contract is what lets cached experiment results
replay under any engine without a cache-version bump, so it is
enforced here over the full matrix: all 20 workloads under
uninstrumented, SoftBound, and Low-Fat configurations, for each
non-reference engine.

Each cell compiles once and runs each engine once (the tree-walker
reference run is memoized per cell); the whole matrix is the most
expensive test module in the suite, which is the point -- any stats
divergence anywhere in the corpus fails loudly.
"""

import dataclasses
from typing import Dict, Tuple

import pytest

from repro.driver import CompileOptions, CompiledProgram, compile_program, run_program
from repro.experiments.common import config_for
from repro.vm.engines import ENGINES
from repro.workloads import get
from repro.workloads.registry import all_names

LABELS = ("baseline", "softbound", "lowfat")
MAX_INSTRUCTIONS = 100_000_000

#: Every engine checked against the tree-walker reference.
CANDIDATE_ENGINES = tuple(e for e in ENGINES if e != "interp")

_PROGRAMS: Dict[Tuple[str, str], CompiledProgram] = {}
_REFERENCE: Dict[Tuple[str, str], object] = {}


def _compiled_program(name: str, label: str) -> CompiledProgram:
    key = (name, label)
    program = _PROGRAMS.get(key)
    if program is None:
        workload = get(name)
        config = config_for(label)
        options = CompileOptions(
            obfuscate_pointer_copies=tuple(workload.obfuscated_units)
        )
        if config is None:
            program = compile_program(workload.sources, options=options)
        else:
            program = compile_program(workload.sources, config, options)
        _PROGRAMS[key] = program
    return program


def _reference_run(name: str, label: str):
    key = (name, label)
    result = _REFERENCE.get(key)
    if result is None:
        result = run_program(_compiled_program(name, label),
                             max_instructions=MAX_INSTRUCTIONS,
                             engine="interp")
        _REFERENCE[key] = result
    return result


def _diff_stats(a, b, engine: str) -> str:
    lines = []
    da, db = dataclasses.asdict(a), dataclasses.asdict(b)
    for field in da:
        if da[field] == db[field]:
            continue
        if isinstance(da[field], dict):
            ka, kb = set(da[field]), set(db[field])
            lines.append(
                f"  {field}: only-interp={sorted(ka - kb)[:5]} "
                f"only-{engine}={sorted(kb - ka)[:5]} "
                f"diverging={[k for k in sorted(ka & kb) if da[field][k] != db[field][k]][:5]}"
            )
        else:
            lines.append(
                f"  {field}: interp={da[field]} {engine}={db[field]}")
    return "\n".join(lines)


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
@pytest.mark.parametrize("label", LABELS)
@pytest.mark.parametrize("name", all_names())
def test_engines_bit_identical(name, label, engine):
    program = _compiled_program(name, label)
    interp = _reference_run(name, label)
    candidate = run_program(program, max_instructions=MAX_INSTRUCTIONS,
                            engine=engine)

    assert candidate.output == interp.output, \
        f"{name}/{label}/{engine}: output differs"
    assert candidate.exit_code == interp.exit_code
    assert candidate.describe() == interp.describe()
    assert dataclasses.asdict(candidate.stats) == \
        dataclasses.asdict(interp.stats), (
            f"{name}/{label}/{engine}: RuntimeStats diverge\n"
            + _diff_stats(interp.stats, candidate.stats, engine))

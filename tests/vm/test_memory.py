"""Tests for the simulated address space."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault, VMError
from repro.vm.memory import (
    Allocation,
    GlobalsAllocator,
    HEAP_BASE,
    Memory,
    SparsePages,
    StackAllocator,
    StandardAllocator,
)


class TestMemoryMapping:
    def test_map_and_find(self):
        mem = Memory()
        alloc = mem.map(Allocation(0x10000, 64, "heap"))
        assert mem.find(0x10000) is alloc
        assert mem.find(0x1003F) is alloc
        assert mem.find(0x10040) is None
        assert mem.find(0xFFFF) is None

    def test_overlap_rejected(self):
        mem = Memory()
        mem.map(Allocation(0x10000, 64, "heap"))
        with pytest.raises(VMError, match="overlap"):
            mem.map(Allocation(0x10020, 64, "heap"))
        with pytest.raises(VMError, match="overlap"):
            mem.map(Allocation(0xFFE0, 64, "heap"))

    def test_null_page_unmappable(self):
        mem = Memory()
        with pytest.raises(VMError, match="NULL page"):
            mem.map(Allocation(0x10, 8, "heap"))

    def test_unmap(self):
        mem = Memory()
        alloc = mem.map(Allocation(0x10000, 64, "heap"))
        mem.unmap(alloc)
        assert mem.find(0x10000) is None
        # space can be reused after unmap
        mem.map(Allocation(0x10000, 32, "heap"))


class TestAccess:
    def _mem(self):
        mem = Memory()
        mem.map(Allocation(0x10000, 64, "heap", name="obj"))
        return mem

    def test_read_write_roundtrip(self):
        mem = self._mem()
        mem.write_int(0x10000, 0xDEADBEEF, 4)
        assert mem.read_int(0x10000, 4) == 0xDEADBEEF

    def test_little_endian(self):
        mem = self._mem()
        mem.write_int(0x10000, 0x0102030405060708, 8)
        assert mem.read_bytes(0x10000, 1) == b"\x08"

    def test_float_roundtrip(self):
        mem = self._mem()
        mem.write_float(0x10008, 3.25, 8)
        assert mem.read_float(0x10008, 8) == 3.25
        mem.write_float(0x10010, 1.5, 4)
        assert mem.read_float(0x10010, 4) == 1.5

    def test_null_dereference_faults(self):
        mem = self._mem()
        with pytest.raises(MemoryFault, match="null pointer"):
            mem.read_int(0, 8)

    def test_unmapped_access_faults(self):
        mem = self._mem()
        with pytest.raises(MemoryFault, match="unmapped"):
            mem.read_int(0x20000, 4)

    def test_straddling_access_faults(self):
        mem = self._mem()
        with pytest.raises(MemoryFault, match="straddles"):
            mem.read_int(0x1003E, 4)

    def test_use_after_free_faults(self):
        mem = self._mem()
        mem.find(0x10000).freed = True
        with pytest.raises(MemoryFault, match="use after free"):
            mem.read_int(0x10000, 4)

    def test_in_bounds_of_wrong_object_succeeds(self):
        """The key substrate property: OOB into *another mapped
        allocation* silently corrupts -- no fault (paper Section 2)."""
        mem = Memory()
        mem.map(Allocation(0x10000, 64, "heap", name="a"))
        mem.map(Allocation(0x10040, 64, "heap", name="b"))
        # overrun of `a` by one lands in `b`
        mem.write_int(0x10040, 7, 4)
        assert mem.read_int(0x10040, 4) == 7


class TestAllocators:
    def test_malloc_unique_and_aligned(self):
        mem = Memory()
        heap = StandardAllocator(mem)
        a = heap.malloc(10)
        b = heap.malloc(10)
        assert a.base % 16 == 0 and b.base % 16 == 0
        assert a.end <= b.base  # guard gap between allocations

    def test_malloc_guard_gap_faults(self):
        mem = Memory()
        heap = StandardAllocator(mem)
        a = heap.malloc(16)
        heap.malloc(16)
        with pytest.raises(MemoryFault):
            mem.read_int(a.end, 4)  # linear overrun hits the gap

    def test_free_and_uaf(self):
        mem = Memory()
        heap = StandardAllocator(mem)
        a = heap.malloc(16)
        heap.free(a.base)
        with pytest.raises(MemoryFault, match="use after free"):
            mem.read_int(a.base, 4)

    def test_free_invalid_pointer(self):
        mem = Memory()
        heap = StandardAllocator(mem)
        a = heap.malloc(16)
        with pytest.raises(MemoryFault, match="free of invalid"):
            heap.free(a.base + 4)

    def test_free_null_is_noop(self):
        heap = StandardAllocator(Memory())
        heap.free(0)

    def test_stack_frames(self):
        mem = Memory()
        stack = StackAllocator(mem)
        stack.push_frame()
        a = stack.alloca(32)
        stack.push_frame()
        b = stack.alloca(32)
        assert b.base < a.base  # grows down
        stack.pop_frame()
        with pytest.raises(MemoryFault):
            mem.read_int(b.base, 4)  # popped frame is gone
        mem.read_int(a.base, 4)      # outer frame still live
        stack.pop_frame()

    def test_alloca_outside_frame_rejected(self):
        stack = StackAllocator(Memory())
        with pytest.raises(VMError):
            stack.alloca(8)

    def test_globals_allocator(self):
        mem = Memory()
        ga = GlobalsAllocator(mem)
        a = ga.allocate(100, "g1")
        b = ga.allocate(4, "g2")
        assert a.end <= b.base


class TestSparsePages:
    def test_default_zero(self):
        sp = SparsePages(1 << 30)
        assert sp[12345] == 0
        assert sp[0:16] == bytes(16)

    def test_write_read_roundtrip(self):
        sp = SparsePages(1 << 30)
        sp[1000:1008] = b"abcdefgh"
        assert sp[1000:1008] == b"abcdefgh"
        assert sp[999] == 0

    def test_cross_page_slice(self):
        sp = SparsePages(1 << 30)
        boundary = SparsePages.PAGE_SIZE - 4
        sp[boundary : boundary + 8] = b"12345678"
        assert sp[boundary : boundary + 8] == b"12345678"

    @given(
        st.integers(0, (1 << 22) - 64),
        st.binary(min_size=1, max_size=64),
    )
    def test_random_offsets_roundtrip(self, offset, data):
        sp = SparsePages(1 << 22)
        sp[offset : offset + len(data)] = data
        assert sp[offset : offset + len(data)] == data

    def test_huge_allocation_is_cheap(self):
        alloc = Allocation(HEAP_BASE, 1 << 31, "heap")
        assert isinstance(alloc.data, SparsePages)
        alloc.data[1 << 30] = 42
        assert alloc.data[1 << 30] == 42

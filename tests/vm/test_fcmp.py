"""Floating-point comparison semantics: the full LLVM predicate set.

``fcmp`` has 14 predicates with precise NaN behaviour: *ordered*
predicates (``o??``) are false whenever either operand is NaN,
*unordered* ones (``u??``) are true.  Historically only the six
ordered predicates existed, so every test here runs against an
independent reference implementation (not ``FCMP_EVAL`` itself) on
both execution engines, plus through the MiniC frontend and the
constant folder.
"""

import math

import pytest

from repro.driver import compile_and_run, NOOP
from repro.frontend import compile_source
from repro.ir import (
    ConstantFloat,
    F64,
    FunctionType,
    I32,
    IRBuilder,
    Module,
)
from repro.ir.instructions import FCMP_EVAL, FCMP_PREDICATES
from repro.vm import VirtualMachine

NAN = float("nan")
INF = float("inf")
OPERANDS = [NAN, INF, -INF, -0.0, 0.0, 1.5, -2.5]
PREDICATES = sorted(FCMP_PREDICATES)


def reference(pred: str, a: float, b: float) -> int:
    """LLVM LangRef semantics, written independently of FCMP_EVAL."""
    unordered = math.isnan(a) or math.isnan(b)
    if pred == "ord":
        return int(not unordered)
    if pred == "uno":
        return int(unordered)
    relation = {
        "eq": a == b, "ne": a != b,
        "lt": a < b, "le": a <= b,
        "gt": a > b, "ge": a >= b,
    }[pred[1:]]
    if pred.startswith("o"):
        return int(not unordered and relation)
    return int(unordered or relation)


def _fcmp_module(pred: str, a: float, b: float,
                 through_memory: bool) -> Module:
    """``main`` returning ``zext(fcmp pred a, b)``.

    ``through_memory`` routes the operands through an alloca so they
    reach the fcmp as register values rather than folded constants --
    exercising the compiled engine's slot-operand specialization too.
    """
    mod = Module("fcmp")
    fn = mod.add_function("main", FunctionType(I32, []), [])
    builder = IRBuilder(fn.add_block("entry"))
    lhs, rhs = ConstantFloat(F64, a), ConstantFloat(F64, b)
    if through_memory:
        slot = builder.alloca(F64)
        builder.store(lhs, slot)
        lhs = builder.load(slot)
        builder.store(rhs, slot)
        rhs = builder.load(slot)
    cmp = builder.fcmp(pred, lhs, rhs)
    builder.ret(builder.zext(cmp, I32))
    return mod


class TestPredicateTable:
    def test_eval_table_is_complete(self):
        assert set(FCMP_EVAL) == FCMP_PREDICATES
        assert len(FCMP_PREDICATES) == 14

    @pytest.mark.parametrize("pred", PREDICATES)
    def test_eval_matches_reference(self, pred):
        for a in OPERANDS:
            for b in OPERANDS:
                assert FCMP_EVAL[pred](a, b) == reference(pred, a, b), \
                    f"fcmp {pred} {a}, {b}"


class TestBothEngines:
    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    @pytest.mark.parametrize("pred", PREDICATES)
    def test_all_predicates_all_operands(self, engine, pred):
        for through_memory in (False, True):
            for a in OPERANDS:
                for b in OPERANDS:
                    mod = _fcmp_module(pred, a, b, through_memory)
                    vm = VirtualMachine(mod, engine=engine)
                    assert vm.run() == reference(pred, a, b), (
                        f"fcmp {pred} {a}, {b} "
                        f"(memory={through_memory}, engine={engine})")


class TestMiniCNaNSemantics:
    # inf - inf is the portable NaN here: this VM defines x / 0.0 as
    # inf (including 0/0), so division cannot produce one.
    NAN_PROLOGUE = r"""
    double mk(double a, double b) { double c[1]; c[0] = a; return c[0] - b; }
    """

    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    def test_nan_is_truthy(self, engine):
        result = compile_and_run({"t.c": self.NAN_PROLOGUE + r"""
        int main() {
          double i = 1.0 / 0.0;
          double n = mk(i, i);
          if (n) { return 1; }
          return 0;
        }"""}, NOOP, engine=engine)
        assert result.exit_code == 1

    @pytest.mark.parametrize("engine", ["interp", "compiled"])
    def test_not_equal_is_unordered(self, engine):
        result = compile_and_run({"t.c": self.NAN_PROLOGUE + r"""
        int main() {
          double i = 1.0 / 0.0;
          double n = mk(i, i);
          int r = 0;
          if (n != n) { r = r + 1; }    /* une: true on NaN */
          if (n == n) { r = r + 10; }   /* oeq: false on NaN */
          if (n < 1.0) { r = r + 100; } /* olt: false on NaN */
          return r;
        }"""}, NOOP, engine=engine)
        assert result.exit_code == 1

    def test_folded_nan_comparisons_match_runtime(self):
        # Same program with the NaN visible to the constant folder:
        # instcombine's fcmp fold must agree with runtime evaluation
        # (it used to KeyError on any unordered predicate).
        folded = compile_and_run({"t.c": r"""
        int main() {
          double i = 1.0 / 0.0;
          double n = i - i;
          int r = 0;
          if (n != n) { r = r + 1; }
          if (n == n) { r = r + 10; }
          if (n) { r = r + 100; }
          return r;
        }"""}, NOOP)
        assert folded.exit_code == 101


class TestUnorderedInFrontendIR:
    def test_float_truthiness_emits_une(self):
        mod = compile_source(r"""
        int main() { double x = 0.5; if (x) { return 1; } return 0; }
        """)
        predicates = [
            inst.predicate
            for fn in mod.functions.values()
            for block in fn.blocks
            for inst in block.instructions
            if inst.opcode == "fcmp"
        ]
        assert "une" in predicates

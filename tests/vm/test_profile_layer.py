"""Tests for the per-check-site profiling layer.

The layer's contract has three legs:

* **conservation** -- per-site executed/wide counts sum exactly to the
  aggregate ``checks_executed``/``checks_wide`` under both engines;
* **observer neutrality** -- running with ``profile=True`` changes no
  pre-existing stats field: cycles, instructions, opcode counts and
  check counters are bit-identical to an unprofiled run;
* **engine identity** -- the compiled tier's batched block charging
  (plus mi-native delta attribution and rollback) produces the same
  ``instrumentation_cycles`` as the tree-walker's per-instruction
  attribution.
"""

import dataclasses

import pytest

from repro import CompileOptions, compile_program, run_program
from repro.core import InstrumentationConfig
from repro.experiments.common import config_for
from repro.workloads import get

SB = InstrumentationConfig.softbound()
LF = InstrumentationConfig.lowfat()
OPTS = CompileOptions(verify=True)

SRC = r"""
int g[0];
int main() {
    int *a = (int *) malloc(sizeof(int) * 8);
    int i;
    int acc = 0;
    for (i = 0; i < 8; i = i + 1) a[i] = i;
    for (i = 0; i < 8; i = i + 1) acc = acc + a[i];
    print_i64(acc);
    free((void*)a);
    return 0;
}"""

WORKLOADS = ("164gzip", "429mcf")
LABELS = ("softbound", "lowfat")
ENGINES = ("interp", "compiled")


def _run(program, engine, profile):
    return run_program(program, max_instructions=50_000_000,
                       engine=engine, profile=profile)


def _core_fields(stats):
    d = dataclasses.asdict(stats)
    d.pop("profile")
    d.pop("instrumentation_cycles")
    d.pop("per_site")
    return d


class TestConservation:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("label", LABELS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_per_site_sums_match_aggregates(self, name, label, engine):
        workload = get(name)
        program = compile_program(
            workload.sources, config_for(label),
            CompileOptions(
                obfuscate_pointer_copies=tuple(workload.obfuscated_units)),
        )
        stats = _run(program, engine, profile=True).stats
        assert sum(c.get("executed", 0) for c in stats.per_site.values()) \
            == stats.checks_executed
        assert sum(c.get("wide", 0) for c in stats.per_site.values()) \
            == stats.checks_wide
        assert sum(c.get("invariant", 0) for c in stats.per_site.values()) \
            == stats.invariant_checks

    def test_every_dynamic_site_has_static_info(self):
        program = compile_program(SRC, SB, OPTS)
        stats = _run(program, "interp", profile=True).stats
        assert stats.per_site       # the loops execute checks
        for site in stats.per_site:
            assert site in program.check_sites
            info = program.check_sites[site]
            assert info.mechanism == "softbound"
            assert info.kind in ("deref", "invariant")


class TestObserverNeutrality:
    @pytest.mark.parametrize("config", [SB, LF], ids=["sb", "lf"])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_profile_changes_no_preexisting_stat(self, config, engine):
        program = compile_program(SRC, config, OPTS)
        plain = _run(program, engine, profile=False)
        profiled = _run(program, engine, profile=True)
        assert plain.output == profiled.output
        assert _core_fields(plain.stats) == _core_fields(profiled.stats)
        # per_site executed/wide are recorded either way; profiling only
        # adds cycles/reason keys on top
        for site, counter in plain.stats.per_site.items():
            prof = profiled.stats.per_site[site]
            assert counter["executed"] == prof["executed"]
            assert counter.get("wide", 0) == prof.get("wide", 0)

    def test_profile_flag_off_means_no_attribution(self):
        program = compile_program(SRC, SB, OPTS)
        stats = _run(program, "interp", profile=False).stats
        assert stats.profile is False
        assert stats.instrumentation_cycles == 0
        assert all("cycles" not in c for c in stats.per_site.values())


class TestEngineIdentity:
    @pytest.mark.parametrize("config", [SB, LF], ids=["sb", "lf"])
    def test_attribution_identical_across_engines(self, config):
        program = compile_program(SRC, config, OPTS)
        interp = _run(program, "interp", profile=True)
        compiled = _run(program, "compiled", profile=True)
        assert dataclasses.asdict(interp.stats) == \
            dataclasses.asdict(compiled.stats)
        assert interp.stats.instrumentation_cycles > 0

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("label", LABELS)
    def test_workload_attribution_identical(self, name, label):
        workload = get(name)
        program = compile_program(
            workload.sources, config_for(label),
            CompileOptions(
                obfuscate_pointer_copies=tuple(workload.obfuscated_units)),
        )
        interp = _run(program, "interp", profile=True).stats
        compiled = _run(program, "compiled", profile=True).stats
        assert interp.instrumentation_cycles \
            == compiled.instrumentation_cycles
        assert {k: dict(v) for k, v in interp.per_site.items()} \
            == {k: dict(v) for k, v in compiled.per_site.items()}

    def test_attribution_bounded_by_cycles(self):
        program = compile_program(SRC, LF, OPTS)
        stats = _run(program, "compiled", profile=True).stats
        assert 0 < stats.instrumentation_cycles < stats.cycles

"""Unit tests for the codegen execution tier (``--engine codegen``).

The codegen tier compiles each IR function to one generated Python
source string.  Everything observable -- return values, output, and
field-for-field ``RuntimeStats`` including the exact state at raise
points -- must match the other two engines; these tests pin down the
mechanisms that make that work: the while-loop block dispatch, phi
tuple assignments (including swap cycles), exact cycle rollback on
raising steps, per-predicate fcmp NaN semantics, the profile
fallback, source dumping, and the per-function emission cache.
"""

import dataclasses

import pytest

from repro.ir import (
    FunctionType,
    I32,
    I64,
    IRBuilder,
    Module,
)
from repro.vm import VirtualMachine
from repro.vm.codegen import CodegenFunction
from repro.errors import VMError

from .test_fcmp import OPERANDS, PREDICATES, _fcmp_module, reference


def _stats_dict(vm):
    return dataclasses.asdict(vm.stats)


def _run_engines(module_factory, engines=("interp", "compiled", "codegen")):
    """Run the same module on each engine; return {engine: (exit, stats)}."""
    out = {}
    for engine in engines:
        vm = VirtualMachine(module_factory(), engine=engine)
        out[engine] = (vm.run(), _stats_dict(vm))
    return out


class TestBlockDispatch:
    """Multi-block control flow through the while-loop jump table."""

    @staticmethod
    def _diamond(n):
        mod = Module("diamond")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        other = fn.add_block("else")
        join = fn.add_block("join")
        b = IRBuilder(entry)
        cond = b.icmp("slt", b.const_i32(n), b.const_i32(10))
        b.cond_br(cond, then, other)
        b = IRBuilder(then)
        b.br(join)
        b = IRBuilder(other)
        b.br(join)
        b = IRBuilder(join)
        phi = b.phi(I32)
        phi.add_incoming(b.const_i32(1), then)
        phi.add_incoming(b.const_i32(2), other)
        b.ret(phi)
        return mod

    @pytest.mark.parametrize("n,expected", [(3, 1), (30, 2)])
    def test_diamond_selects_correct_arm(self, n, expected):
        results = _run_engines(lambda: self._diamond(n))
        assert results["codegen"][0] == expected
        assert results["codegen"] == results["interp"]
        assert results["codegen"] == results["compiled"]

    def test_loop_backedge(self):
        # Counting loop: exercises a dispatch label with two
        # predecessors plus the instruction-budget backedge check.
        def build():
            mod = Module("loop")
            fn = mod.add_function("main", FunctionType(I32, []), [])
            entry = fn.add_block("entry")
            header = fn.add_block("header")
            body = fn.add_block("body")
            done = fn.add_block("done")
            b = IRBuilder(entry)
            b.br(header)
            b = IRBuilder(header)
            i = b.phi(I32, "i")
            acc = b.phi(I32, "acc")
            i.add_incoming(b.const_i32(0), entry)
            acc.add_incoming(b.const_i32(0), entry)
            b.cond_br(b.icmp("slt", i, b.const_i32(10)), body, done)
            b = IRBuilder(body)
            inext = b.add(i, b.const_i32(1))
            anext = b.add(acc, i)
            i.add_incoming(inext, body)
            acc.add_incoming(anext, body)
            b.br(header)
            b = IRBuilder(done)
            b.ret(acc)
            return mod

        results = _run_engines(build)
        assert results["codegen"][0] == 45
        assert results["codegen"] == results["interp"]
        assert results["codegen"] == results["compiled"]


class TestPhiTupleAssignment:
    """Parallel phi moves become one tuple assignment; ordering must
    be simultaneous, not sequential."""

    @staticmethod
    def _swap_module(iterations):
        # a, b = b, a each iteration: a sequential compile would
        # collapse both to the same value after one trip.
        mod = Module("swap")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        done = fn.add_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b = IRBuilder(header)
        i = b.phi(I32, "i")
        a = b.phi(I32, "a")
        bb = b.phi(I32, "b")
        i.add_incoming(b.const_i32(0), entry)
        a.add_incoming(b.const_i32(1), entry)
        bb.add_incoming(b.const_i32(2), entry)
        b.cond_br(b.icmp("slt", i, b.const_i32(iterations)), body, done)
        b2 = IRBuilder(body)
        inext = b2.add(i, b2.const_i32(1))
        i.add_incoming(inext, body)
        a.add_incoming(bb, body)    # a' = b
        bb.add_incoming(a, body)    # b' = a  (swap cycle)
        b2.br(header)
        b3 = IRBuilder(done)
        b3.ret(a)
        return mod

    @pytest.mark.parametrize("iterations,expected", [(0, 1), (1, 2),
                                                     (2, 1), (5, 2)])
    def test_swap_cycle(self, iterations, expected):
        results = _run_engines(lambda: self._swap_module(iterations))
        assert results["codegen"][0] == expected
        assert results["codegen"] == results["interp"]

    def test_fibonacci_phis(self):
        # a, b = b, a + b: a value used by another phi's incoming
        # expression in the same parallel step.
        def build():
            mod = Module("fib")
            fn = mod.add_function("main", FunctionType(I64, []), [])
            entry = fn.add_block("entry")
            header = fn.add_block("header")
            body = fn.add_block("body")
            done = fn.add_block("done")
            b = IRBuilder(entry)
            b.br(header)
            b = IRBuilder(header)
            i = b.phi(I64, "i")
            a = b.phi(I64, "a")
            bb = b.phi(I64, "b")
            i.add_incoming(b.const_i64(0), entry)
            a.add_incoming(b.const_i64(0), entry)
            bb.add_incoming(b.const_i64(1), entry)
            b.cond_br(b.icmp("slt", i, b.const_i64(10)), body, done)
            b2 = IRBuilder(body)
            inext = b2.add(i, b2.const_i64(1))
            anext = bb
            bnext = b2.add(a, bb)
            i.add_incoming(inext, body)
            a.add_incoming(anext, body)
            bb.add_incoming(bnext, body)
            b2.br(header)
            b3 = IRBuilder(done)
            b3.ret(a)
            return mod

        results = _run_engines(build)
        assert results["codegen"][0] == 55  # fib(10)
        assert results["codegen"] == results["interp"]
        assert results["codegen"] == results["compiled"]


class TestCycleRollback:
    """A raising step must unroll the block batch so stats reflect
    exactly the instructions the tree-walker would have charged."""

    @staticmethod
    def _div_by_zero_module():
        # Several charged instructions, then sdiv %x, 0 mid-block,
        # then more instructions that must NOT be charged.
        mod = Module("divzero")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32)
        b.store(b.const_i32(7), slot)
        x = b.load(slot)
        q = b.binop("sdiv", x, b.const_i32(0))
        y = b.add(q, b.const_i32(1))
        b.ret(y)
        return mod

    @pytest.mark.parametrize("engine", ["compiled", "codegen"])
    def test_stats_identical_to_interp_at_raise(self, engine):
        vms = {}
        for eng in ("interp", engine):
            vm = VirtualMachine(self._div_by_zero_module(), engine=eng)
            with pytest.raises(VMError):
                vm.run()
            vms[eng] = _stats_dict(vm)
        assert vms[engine] == vms["interp"]

    def test_budget_exceeded_stats_identical(self):
        def build():
            mod = Module("spin")
            fn = mod.add_function("main", FunctionType(I32, []), [])
            entry = fn.add_block("entry")
            loop = fn.add_block("loop")
            b = IRBuilder(entry)
            b.br(loop)
            b = IRBuilder(loop)
            i = b.phi(I32)
            i.add_incoming(b.const_i32(0), entry)
            inext = b.add(i, b.const_i32(1))
            i.add_incoming(inext, loop)
            b.br(loop)
            return mod

        stats = {}
        for engine in ("interp", "compiled", "codegen"):
            vm = VirtualMachine(build(), engine=engine,
                                max_instructions=10_000)
            with pytest.raises(VMError, match="budget"):
                vm.run()
            stats[engine] = _stats_dict(vm)
        assert stats["codegen"] == stats["interp"]
        assert stats["codegen"] == stats["compiled"]


class TestFcmpNaN:
    """Per-predicate fcmp on the codegen tier, reusing the reference
    oracle and operand corpus of the engine-wide fcmp suite."""

    @pytest.mark.parametrize("pred", PREDICATES)
    def test_all_predicates_all_operands(self, pred):
        for through_memory in (False, True):
            for a in OPERANDS:
                for b in OPERANDS:
                    mod = _fcmp_module(pred, a, b, through_memory)
                    vm = VirtualMachine(mod, engine="codegen")
                    assert vm.run() == reference(pred, a, b), (
                        f"fcmp {pred} {a}, {b} "
                        f"(memory={through_memory}, engine=codegen)")


class TestProfileFallback:
    def test_profile_run_falls_back_and_records_reason(self):
        mod = Module("p")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const_i32(5))

        vm = VirtualMachine(mod, engine="codegen", profile=True)
        assert vm.run() == 5
        assert vm.codegen_fallback_reason is not None
        assert "profile" in vm.codegen_fallback_reason
        # The closure tier actually ran: no codegen compilation happened.
        assert not vm._codegen
        assert vm._compiled

    def test_non_profile_run_has_no_fallback(self):
        mod = Module("p")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const_i32(5))
        vm = VirtualMachine(mod, engine="codegen")
        assert vm.run() == 5
        assert vm.codegen_fallback_reason is None
        assert vm._codegen


class TestSourceDump:
    def test_dump_writes_numbered_files_with_block_comments(self, tmp_path):
        mod = Module("d")
        callee = mod.add_function("helper", FunctionType(I32, [I32]), ["x"])
        b = IRBuilder(callee.add_block("entry"))
        b.ret(b.add(callee.args[0], b.const_i32(1)))
        fn = mod.add_function("main", FunctionType(I32, []), [])
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.call(callee, [b.const_i32(41)]))

        vm = VirtualMachine(mod, engine="codegen")
        vm.codegen_dump_dir = str(tmp_path)
        assert vm.run() == 42
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["000_main.py", "001_helper.py"]
        source = (tmp_path / "000_main.py").read_text()
        assert "# codegen tier source for function @main" in source
        assert "# entry:" in source


class TestEmissionCache:
    """Emission is cached on the Function keyed by the VM-environment
    signature: fresh VMs over the same program skip the emitter."""

    @staticmethod
    def _module():
        mod = Module("c")
        fn = mod.add_function("main", FunctionType(I32, []), [])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I32)
        b.store(b.const_i32(3), slot)
        b.ret(b.load(slot))
        return mod

    def test_fresh_vm_reuses_source_and_code(self):
        mod = self._module()
        vm1 = VirtualMachine(mod, engine="codegen")
        assert vm1.run() == 3
        fn = mod.functions["main"]
        cached = fn._codegen_cache
        assert cached is not None
        vm2 = VirtualMachine(mod, engine="codegen")
        assert vm2.run() == 3
        assert fn._codegen_cache is cached  # no re-emission
        cg1 = vm1._codegen[fn]
        cg2 = vm2._codegen[fn]
        assert cg1 is not cg2              # per-VM compiled object
        assert cg1.source == cg2.source    # shared emission
        assert _stats_dict(vm1) == _stats_dict(vm2)

    def test_reused_emission_state_is_pristine(self):
        # The second VM must not observe the first VM's inline-cache
        # state (allocation objects belong to the first VM's memory).
        mod = self._module()
        results = []
        for _ in range(3):
            vm = VirtualMachine(mod, engine="codegen")
            results.append((vm.run(), _stats_dict(vm)))
        assert results[0] == results[1] == results[2]


class TestExecuteArgumentFixing:
    def test_extra_and_missing_arguments(self):
        mod = Module("a")
        fn = mod.add_function("f", FunctionType(I64, [I64, I64]), ["a", "b"])
        b = IRBuilder(fn.add_block("entry"))
        b.ret(fn.args[0])
        vm = VirtualMachine(mod, engine="codegen")
        vm.load_globals()
        compiled = CodegenFunction(vm, fn)
        assert compiled.execute([7, 8]) == 7        # exact
        assert compiled.execute([7, 8, 9]) == 7     # extra dropped
        assert compiled.execute([7]) == 7           # missing -> None

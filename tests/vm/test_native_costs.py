"""Tests for the libc natives and the cycle cost model."""

import pytest

from repro.errors import MemoryFault
from repro.frontend import compile_source
from repro.vm import VirtualMachine
from repro.vm import costs


def run(src, max_instructions=2_000_000):
    vm = VirtualMachine(compile_source(src), max_instructions=max_instructions)
    code = vm.run()
    return code, vm.output, vm


class TestLibcSemantics:
    def test_calloc_zeroes(self):
        _, out, _ = run(r"""
        int main() {
            int *a = (int *) calloc(8, sizeof(int));
            long s = 0;
            for (int i = 0; i < 8; i++) s += a[i];
            print_i64(s);
            free((void*)a);
            return 0;
        }""")
        assert out == ["0"]

    def test_realloc_preserves_prefix(self):
        _, out, _ = run(r"""
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            for (int i = 0; i < 4; i++) a[i] = i + 1;
            a = (int *) realloc((void*)a, sizeof(int) * 8);
            a[7] = 100;
            print_i64(a[0] + a[3] + a[7]);
            free((void*)a);
            return 0;
        }""")
        assert out == ["105"]

    def test_realloc_null_acts_as_malloc(self):
        _, out, _ = run(r"""
        int main() {
            int *a = (int *) realloc(NULL, sizeof(int) * 2);
            a[0] = 3; a[1] = 4;
            print_i64(a[0] * a[1]);
            free((void*)a);
            return 0;
        }""")
        assert out == ["12"]

    def test_memmove_overlapping(self):
        _, out, _ = run(r"""
        int main() {
            char *buf = (char *) malloc(16);
            for (int i = 0; i < 8; i++) buf[i] = (char)(65 + i);
            memmove((void*)(buf + 2), (void*)buf, 8);
            buf[10] = 0;
            print_str(buf);
            return 0;
        }""")
        assert out == ["ABABCDEFGH"]

    def test_strcmp_ordering(self):
        _, out, _ = run(r"""
        int main() {
            print_i64(strcmp("abc", "abc"));
            print_i64(strcmp("abd", "abc") > 0);
            print_i64(strcmp("abb", "abc") != 0);
            return 0;
        }""")
        assert out == ["0", "1", "1"]

    def test_math_builtins(self):
        _, out, _ = run(r"""
        int main() {
            print_f64(sqrt(16.0));
            print_f64(fabs(0.0 - 2.5));
            print_i64(llabs(0 - 42));
            return 0;
        }""")
        assert out == ["4.000000", "2.500000", "42"]

    def test_unterminated_string_guarded(self):
        # strlen over memory with no NUL eventually faults rather than
        # spinning forever
        src = r"""
        int main() {
            char *buf = (char *) malloc(16);
            memset((void*)buf, 65, 16);
            return (int) strlen(buf);
        }"""
        vm = VirtualMachine(compile_source(src))
        with pytest.raises(MemoryFault):
            vm.run()


class TestCostModel:
    def test_check_cost_ordering(self):
        """The paper's Section 5.2 facts, encoded as invariants."""
        # SoftBound's check (Figure 2) is cheaper than Low-Fat's (Fig 5)
        assert costs.call_cost("__sb_check") < costs.call_cost("__lf_check")
        # a trie lookup is dearer than recomputing a low-fat base
        trie = costs.call_cost("__sb_trie_load_base") + costs.call_cost(
            "__sb_trie_load_bound"
        )
        assert trie > costs.call_cost("__lf_compute_base")

    def test_intrinsics_have_no_call_overhead(self):
        assert costs.call_cost("__sb_check") == costs.INTRINSIC_COSTS["__sb_check"]

    def test_wrappers_cost_wrapped_function_plus_overhead(self):
        assert costs.call_cost("__sb_wrap_malloc") > costs.call_cost("malloc") \
            - costs.INSTRUCTION_COSTS["call"]
        assert (
            costs.call_cost("__sb_wrap_memcpy")
            == costs.NATIVE_COSTS["memcpy"]
            + costs.INSTRUCTION_COSTS["call"]
            + costs.SB_WRAPPER_OVERHEAD
        )

    def test_unknown_call_costs_call_overhead(self):
        assert costs.call_cost("user_function") == costs.INSTRUCTION_COSTS["call"]

    def test_bulk_natives_charge_per_byte(self):
        small = run(r"""
        int main() {
            char *a = (char *) malloc(4096);
            memset((void*)a, 0, 16);
            return 0;
        }""")[2].stats.cycles
        large = run(r"""
        int main() {
            char *a = (char *) malloc(4096);
            memset((void*)a, 0, 4096);
            return 0;
        }""")[2].stats.cycles
        assert large > small

    def test_free_casts_are_free(self):
        for op in ("ptrtoint", "inttoptr", "bitcast"):
            assert costs.INSTRUCTION_COSTS[op] == 0

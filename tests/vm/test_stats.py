"""Tests for RuntimeStats bookkeeping."""

from repro.vm.stats import RuntimeStats


class TestCharging:
    def test_charge_accumulates(self):
        stats = RuntimeStats()
        stats.charge("add", 1)
        stats.charge("add", 1)
        stats.charge("load", 3)
        assert stats.cycles == 5
        assert stats.instructions == 3
        assert stats.opcode_counts["add"] == 2
        assert stats.opcode_counts["load"] == 1


class TestCheckRecording:
    def test_record_check_classification(self):
        stats = RuntimeStats()
        stats.record_check("f:bb:1", wide=False)
        stats.record_check("f:bb:1", wide=False)
        stats.record_check("f:bb:2", wide=True)
        assert stats.checks_executed == 3
        assert stats.checks_wide == 1
        assert stats.per_site["f:bb:1"]["executed"] == 2
        assert stats.per_site["f:bb:1"]["wide"] == 0
        assert stats.per_site["f:bb:2"]["wide"] == 1

    def test_unsafe_percent(self):
        stats = RuntimeStats()
        assert stats.unsafe_percent == 0.0  # no division by zero
        for i in range(3):
            stats.record_check("s", wide=(i == 0))
        assert round(stats.unsafe_percent, 2) == 33.33

    def test_summary_mentions_key_counters(self):
        stats = RuntimeStats()
        stats.record_check("s", wide=True)
        stats.invariant_checks = 4
        stats.trie_loads = 2
        text = stats.summary()
        assert "deref checks" in text
        assert "1 wide" in text
        assert "invariant checks:  4" in text
        assert "2 loads" in text


class TestProfiling:
    def test_cost_and_reason_only_recorded_when_profiling(self):
        stats = RuntimeStats()
        stats.record_check("s", wide=True, cost=9, reason="oversized")
        counter = stats.per_site["s"]
        assert counter["executed"] == 1 and counter["wide"] == 1
        assert "cycles" not in counter
        assert "reason:oversized" not in counter

    def test_profiled_check_attributes_cost_and_reason(self):
        stats = RuntimeStats()
        stats.profile = True
        stats.record_check("s", wide=True, cost=9, reason="oversized")
        stats.record_check("s", wide=False, cost=9)
        counter = stats.per_site["s"]
        assert counter["executed"] == 2
        assert counter["wide"] == 1
        assert counter["cycles"] == 18
        assert counter["reason:oversized"] == 1

    def test_record_invariant_per_site_is_profile_gated(self):
        stats = RuntimeStats()
        stats.record_invariant("s", cost=9)
        assert stats.invariant_checks == 1
        assert "s" not in stats.per_site      # unprofiled: aggregate only
        stats.profile = True
        stats.record_invariant("s", cost=9)
        assert stats.invariant_checks == 2
        assert stats.per_site["s"]["invariant"] == 1
        assert stats.per_site["s"]["cycles"] == 9

    def test_summary_shows_instrumentation_cycles_when_profiling(self):
        stats = RuntimeStats()
        stats.instrumentation_cycles = 12
        assert "instr. cycles" not in stats.summary()
        stats.profile = True
        assert "instr. cycles" in stats.summary()

"""Determinism: same seed => byte-identical sources and results.

The generator must be a pure function of (seed, index); the VM and the
experiment engine must produce bit-identical ``BenchResult`` documents
(every counter included) no matter how many worker processes execute
the jobs.  JSON documents are compared, because that is the exact
representation results travel through (worker transport and the disk
cache).
"""

from repro.experiments.runner import ExperimentEngine, JobRequest
from repro.fuzz.generator import generate_program
from repro.workloads import Workload


def _workload():
    program = generate_program(99, 2)
    return Workload(name=program.name, sources=program.sources,
                    description="determinism probe")


_LABELS = ("baseline", "softbound", "lowfat")


def _run(jobs: int, vm_engine: str = "compiled"):
    engine = ExperimentEngine(jobs=jobs, max_instructions=5_000_000,
                              vm_engine=vm_engine)
    workload = _workload()
    results = engine.run_many(
        [JobRequest(workload, label) for label in _LABELS])
    return [r.to_json() for r in results]


class TestRuntimeDeterminism:
    def test_rerun_byte_identical(self):
        assert _run(jobs=1) == _run(jobs=1)

    def test_jobs_1_equals_jobs_4(self):
        """Worker-process transport must not perturb a single counter."""
        assert _run(jobs=1) == _run(jobs=4)

    def test_engines_agree_on_everything(self):
        """The closure-compiled tier and the reference tree-walker are
        bit-identical on results *and* statistics."""
        assert _run(jobs=1, vm_engine="compiled") == \
            _run(jobs=1, vm_engine="interp")

    def test_results_have_real_content(self):
        docs = _run(jobs=1)
        assert docs[0]["status"] == "exit"
        assert docs[0]["output"][-1] == "done"
        assert docs[1]["checks_executed"] > 0
        assert docs[2]["checks_executed"] > 0

"""Reducer: ddmin correctness and mismatch minimization."""

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import Mismatch
from repro.fuzz.reduce import (
    _balanced,
    ddmin,
    minimize_mismatch,
    mismatch_signature,
    reduce_source,
)


class TestBalanced:
    def test_balanced(self):
        assert _balanced("int main() { if (x) { y(); } }")

    def test_unbalanced_open(self):
        assert not _balanced("int main() {")

    def test_close_before_open(self):
        assert not _balanced("} {")

    def test_bracket_kinds_tracked_separately(self):
        assert not _balanced("a[0)")


class TestDdmin:
    def test_converges_to_needles(self):
        lines = [f"l{i}" for i in range(50)]
        lines[13] = "KEEP-A"
        lines[37] = "KEEP-B"
        out = ddmin(lines,
                    lambda ls: "KEEP-A" in ls and "KEEP-B" in ls)
        assert out == ["KEEP-A", "KEEP-B"]

    def test_single_needle(self):
        lines = [f"l{i}" for i in range(33)] + ["BUG"]
        assert ddmin(lines, lambda ls: "BUG" in ls) == ["BUG"]

    def test_rejects_non_reproducing_input(self):
        with pytest.raises(ValueError, match="predicate does not hold"):
            ddmin(["a", "b"], lambda ls: False)

    def test_predicate_never_lost(self):
        """Every intermediate acceptance (and the result) satisfies
        the predicate -- the reducer can shrink but never trade away
        the failure."""
        accepted = []

        def predicate(ls):
            ok = "BUG" in ls
            if ok:
                accepted.append(list(ls))
            return ok

        out = ddmin([f"l{i}" for i in range(20)] + ["BUG"] +
                    [f"r{i}" for i in range(20)], predicate)
        assert out == ["BUG"]
        assert all("BUG" in ls for ls in accepted)

    def test_budget_respected(self):
        calls = []

        def predicate(ls):
            calls.append(1)
            return "BUG" in ls

        ddmin([f"l{i}" for i in range(64)] + ["BUG"], predicate,
              max_checks=10)
        # one free call to validate the input, then at most the budget
        assert len(calls) <= 11


class TestReduceSource:
    def test_removes_brace_pairs(self):
        source = "\n".join([
            "int main() {",
            "    if (x) {",
            "        keep();",
            "    }",
            "    drop();",
            "}",
        ])
        out = reduce_source(source, lambda text: "keep()" in text)
        assert "keep()" in out
        assert "drop()" not in out
        assert _balanced(out)

    def test_unbalanced_candidates_cost_nothing(self):
        evaluated = []

        def predicate(text):
            evaluated.append(text)
            return "keep" in text

        reduce_source("{\nkeep\n}", predicate)
        for text in evaluated:
            assert _balanced(text)


class _StubOracle:
    """Artificial miscompare: 'fires' while the program still contains
    both marker constructs."""

    def __init__(self):
        self.calls = 0

    def check_sources(self, sources, name="x"):
        self.calls += 1
        text = sources.get("main.c", "")
        if "realloc" in text and "rec0(" in text:
            return [Mismatch(program=name, kind="output-divergence",
                             label="softbound", engine="compiled",
                             detail="stub miscompare")]
        if "unrelated-breakage" in text:
            return [Mismatch(program=name, kind="harness-failure",
                             label="baseline", engine="compiled",
                             detail="CompileError: nope")]
        return []


class TestMinimizeMismatch:
    def _seeded_mismatch(self):
        # seed 3 / index 2 generates a two-unit program (main.c + lib.c)
        program = generate_program(3, 2)
        oracle = _StubOracle()
        mismatch = oracle.check_sources(program.sources)[0]
        mismatch.sources = dict(program.sources)
        return program, mismatch

    def test_converges_to_small_reproducer(self):
        program, mismatch = self._seeded_mismatch()
        oracle = _StubOracle()
        reduced = minimize_mismatch(mismatch, oracle, max_checks=2000)
        original_lines = len(program.sources["main.c"].splitlines())
        reduced_lines = len(reduced["main.c"].splitlines())
        assert original_lines > 100
        assert reduced_lines <= 15, reduced["main.c"]
        # the failure predicate survived minimization
        found = _StubOracle().check_sources(reduced)
        assert mismatch_signature(found[0]) == mismatch_signature(mismatch)

    def test_second_unit_dropped_when_irrelevant(self):
        _, mismatch = self._seeded_mismatch()
        assert "lib.c" in mismatch.sources
        reduced = minimize_mismatch(mismatch, _StubOracle(),
                                    max_checks=2000)
        assert "lib.c" not in reduced

    def test_non_reproducing_mismatch_rejected(self):
        mismatch = Mismatch(program="p", kind="output-divergence",
                            label="softbound", engine="compiled",
                            detail="d",
                            sources={"main.c": "int main() { return 0; }"})
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_mismatch(mismatch, _StubOracle())

    def test_missing_sources_rejected(self):
        mismatch = Mismatch(program="p", kind="output-divergence",
                            label="softbound", engine="compiled",
                            detail="d")
        with pytest.raises(ValueError, match="no sources"):
            minimize_mismatch(mismatch, _StubOracle())

    def test_signature_mismatch_not_accepted(self):
        """A candidate that fails differently (e.g. stops compiling)
        must not satisfy the reducer's predicate."""
        _, mismatch = self._seeded_mismatch()
        oracle = _StubOracle()
        reduced = minimize_mismatch(mismatch, oracle, max_checks=2000)
        assert "unrelated-breakage" not in reduced["main.c"]
        found = _StubOracle().check_sources(reduced)
        assert all(m.kind == "output-divergence" for m in found)

"""Oracle: matrix definitions, comparison logic, and real runs."""

import pytest

from repro.core.itarget import TargetStatistics
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.common import BenchResult
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import (
    FULL_MATRIX,
    MATRICES,
    QUICK_MATRIX,
    DifferentialOracle,
    Matrix,
    Mismatch,
)
from repro.vm.engines import ENGINES


def _result(label, *, output=("1", "done"), status="exit",
            checks_executed=0, cycles=100, static=None, **overrides):
    kwargs = dict(
        workload="w", label=label, extension_point="VectorizerStart",
        cycles=cycles, instructions=cycles, output=list(output),
        ok=status == "exit", describe=status,
        checks_executed=checks_executed, checks_wide=0,
        unsafe_percent=0.0, invariant_checks=0, trie_loads=0,
        trie_stores=0, shadow_stack_ops=0, lowfat_fallbacks=0,
        static=static or TargetStatistics(), status=status,
    )
    kwargs.update(overrides)
    return BenchResult(**kwargs)


class TestMatrices:
    def test_full_matrix_shape(self):
        assert len(FULL_MATRIX.labels) == 9
        # the full matrix always covers every registered VM engine, so
        # a new tier widens the fuzz surface without an edit here
        assert FULL_MATRIX.engines == ENGINES
        assert "codegen" in FULL_MATRIX.engines
        assert len(FULL_MATRIX) == 9 * len(ENGINES) == 27
        assert len(FULL_MATRIX.cells) == 27
        assert "softbound-hoist" in FULL_MATRIX.labels
        assert "lowfat-hoist" in FULL_MATRIX.labels

    def test_quick_matrix_shape(self):
        assert len(QUICK_MATRIX) == 3
        assert QUICK_MATRIX.engines == ("compiled",)

    def test_registry(self):
        assert MATRICES["full"] is FULL_MATRIX
        assert MATRICES["quick"] is QUICK_MATRIX

    def test_oracle_accepts_matrix_name(self):
        oracle = DifferentialOracle(matrix="quick")
        assert oracle.matrix is QUICK_MATRIX

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ConfigError, match="unknown fuzz matrix"):
            DifferentialOracle(matrix="bogus")

    def test_cache_refused_for_multi_engine_matrix(self, tmp_path):
        """The disk cache is engine-agnostic, so caching a two-engine
        matrix would serve interp cells from compiled results and make
        the engine comparison vacuous."""
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ConfigError, match="vacuous"):
            DifferentialOracle(matrix=FULL_MATRIX, cache=cache)
        # single-engine matrices may cache
        DifferentialOracle(matrix=QUICK_MATRIX, cache=cache)


#: tiny matrix for synthetic-grid tests
_M2 = Matrix("m2", labels=("baseline", "softbound"),
             engines=("compiled", "interp"))


def _grid(**cells):
    """cells keyed like baseline_compiled=..., softbound_interp=..."""
    out = {}
    for key, value in cells.items():
        label, engine = key.rsplit("_", 1)
        out[(label.replace("_", "-"), engine)] = value
    return out


class TestCompare:
    def _oracle(self, matrix=_M2):
        return DifferentialOracle(matrix=matrix)

    def _clean_grid(self):
        return _grid(
            baseline_compiled=_result("baseline"),
            baseline_interp=_result("baseline"),
            softbound_compiled=_result("softbound", checks_executed=5),
            softbound_interp=_result("softbound", checks_executed=5),
        )

    def test_clean_grid_no_mismatches(self):
        assert self._oracle()._compare("p", self._clean_grid()) == []

    def test_harness_failure_reported_alone(self):
        grid = self._clean_grid()
        grid[("softbound", "interp")] = BenchResult.failed(
            "w", "softbound", "VectorizerStart", "timed out after 5s")
        found = self._oracle()._compare("p", grid)
        assert [m.kind for m in found] == ["harness-failure"]
        assert "timed out" in found[0].detail

    def test_baseline_fault_short_circuits(self):
        grid = self._clean_grid()
        grid[("baseline", "compiled")] = _result(
            "baseline", status="fault", output=())
        found = self._oracle()._compare("p", grid)
        assert [m.kind for m in found] == ["baseline-fault"]

    def test_spurious_violation_is_output_divergence(self):
        grid = self._clean_grid()
        grid[("softbound", "compiled")] = _result(
            "softbound", status="violation", output=())
        kinds = {m.kind for m in self._oracle()._compare("p", grid)}
        assert "output-divergence" in kinds

    def test_changed_output_is_output_divergence(self):
        grid = self._clean_grid()
        grid[("softbound", "interp")] = _result(
            "softbound", output=("2", "done"), checks_executed=5)
        found = self._oracle()._compare("p", grid)
        assert any(m.kind == "output-divergence"
                   and m.engine == "interp" for m in found)

    def test_counter_drift_is_engine_divergence(self):
        grid = self._clean_grid()
        grid[("softbound", "interp")] = _result(
            "softbound", checks_executed=5, cycles=101)
        found = self._oracle()._compare("p", grid)
        assert [m.kind for m in found] == ["engine-divergence"]
        assert "cycles" in found[0].detail

    def test_baseline_with_checks_is_filter_invariant(self):
        grid = self._clean_grid()
        grid[("baseline", "interp")] = _result(
            "baseline", checks_executed=3)
        kinds = [m.kind for m in self._oracle()._compare("p", grid)]
        # the engines also disagree on the counter, so both fire
        assert "filter-invariant" in kinds

    def test_filter_chain_monotonicity(self):
        matrix = Matrix("chain",
                        labels=("baseline", "softbound-unopt", "softbound"),
                        engines=("compiled",))
        grid = _grid(
            baseline_compiled=_result("baseline"),
            softbound_unopt_compiled=_result("softbound-unopt",
                                             checks_executed=10),
            softbound_compiled=_result("softbound", checks_executed=12),
        )
        found = self._oracle(matrix)._compare("p", grid)
        assert [m.kind for m in found] == ["filter-invariant"]
        assert "filters may only remove checks" in found[0].detail

    def test_static_overfiltering_flagged(self):
        grid = self._clean_grid()
        bad = TargetStatistics(gathered_checks=4, filtered_checks=3,
                               range_filtered_checks=2)
        grid[("softbound", "compiled")] = _result(
            "softbound", checks_executed=5, static=bad)
        found = self._oracle()._compare("p", grid)
        assert any(m.kind == "filter-invariant"
                   and "static filtered" in m.detail for m in found)


class TestRealRuns:
    def test_quick_matrix_clean_program(self):
        oracle = DifferentialOracle(matrix=QUICK_MATRIX)
        program = generate_program(11, 0)
        assert oracle.check_program(program) == []

    def test_undefined_program_reports_divergence(self):
        """A program with real UB is exactly what the oracle must
        flag: out-of-bounds pointer *arithmetic* runs to completion
        uninstrumented (and under SoftBound, which only checks
        dereferences) but trips Low-Fat's escaping-pointer invariant."""
        oracle = DifferentialOracle(matrix=QUICK_MATRIX)
        source = """
int main() {
    int *a = (int *) malloc(sizeof(int) * 4);
    a[0] = 7;
    int *p2 = a + 100;
    print_i64((long)(p2 - a));
    print_i64(a[0]);
    free((void*)a);
    return 0;
}
"""
        mismatches = oracle.check_sources({"main.c": source}, "oob-arith")
        assert [m.kind for m in mismatches] == ["output-divergence"]
        assert mismatches[0].label == "lowfat"
        assert all(m.sources for m in mismatches)

    def test_baseline_fault_reported_for_oob_read(self):
        """OOB dereference faults in the *uninstrumented* VM too: the
        oracle classifies that as a frontend/VM problem, not an
        instrumentation divergence."""
        oracle = DifferentialOracle(matrix=QUICK_MATRIX)
        source = """
int main() {
    int *a = (int *) malloc(sizeof(int) * 4);
    print_i64(a[7]);
    free((void*)a);
    return 0;
}
"""
        mismatches = oracle.check_sources({"main.c": source}, "oob-read")
        assert [m.kind for m in mismatches] == ["baseline-fault"]

    def test_report_shape(self):
        oracle = DifferentialOracle(matrix=QUICK_MATRIX)
        programs = [generate_program(11, 0)]
        report = oracle.run(programs, seed=11)
        assert report.ok
        assert report.programs == 1
        assert report.cells_per_program == 3
        assert report.executed_jobs == 3
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["matrix"] == "quick"
        assert "no mismatches" in report.summary()

    def test_mismatch_json_roundtrip_fields(self):
        m = Mismatch(program="p", kind="output-divergence",
                     label="softbound", engine="compiled", detail="d",
                     seed=1, index=2, sources={"main.c": "x"})
        doc = m.to_json()
        assert doc["sources"] == {"main.c": "x"}
        assert "sources" not in m.to_json(include_sources=False)
        assert "output-divergence" in m.headline()

"""Generator: determinism, validity, and coverage accounting."""

import pytest

from repro import compile_and_run
from repro.fuzz.generator import (
    CODEGEN_OPCODES,
    ast_node_kinds,
    corpus_coverage,
    expected_node_kinds,
    generate_corpus,
    generate_program,
    ir_opcodes,
)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = generate_program(42, 7)
        b = generate_program(42, 7)
        assert a.sources == b.sources
        assert a.name == b.name
        assert a.features == b.features

    def test_corpus_rerun_byte_identical(self):
        first = generate_corpus(5, 12)
        second = generate_corpus(5, 12)
        assert [p.sources for p in first] == [p.sources for p in second]

    def test_different_indices_differ(self):
        sources = {generate_program(0, i).main_source for i in range(8)}
        assert len(sources) == 8

    def test_different_seeds_differ(self):
        assert (generate_program(0, 0).main_source
                != generate_program(1, 0).main_source)

    def test_index_reflected_in_name(self):
        assert generate_program(3, 11).name == "fuzz-s3-p0011"


class TestValidity:
    """Every generated program must compile and exit cleanly
    uninstrumented -- the generator's defined-behaviour contract."""

    @pytest.mark.parametrize("index", range(6))
    def test_baseline_exits_cleanly(self, index):
        program = generate_program(1234, index)
        result = compile_and_run(program.sources,
                                 max_instructions=5_000_000)
        assert result.ok, (f"{program.name}: {result.describe()}\n"
                           f"{program.main_source}")
        # every program prints its scalars, checksums, and a trailer
        assert result.output[-1] == "done"
        assert len(result.output) > 10

    def test_two_unit_programs_occur(self):
        corpus = generate_corpus(0, 12)
        assert any("lib.c" in p.sources for p in corpus)
        assert any("lib.c" not in p.sources for p in corpus)


class TestCoverage:
    def test_expected_node_kinds_is_exhaustive(self):
        kinds = expected_node_kinds()
        # spot-check: every concrete Expr/Stmt class the frontend
        # defines today must be present
        for name in ("IntLit", "FloatLit", "CharLit", "StringLit",
                     "NullLit", "Ident", "Unary", "Postfix", "Binary",
                     "Assign", "Conditional", "CallExpr", "Index",
                     "Member", "CastExpr", "SizeofExpr", "ExprStmt",
                     "DeclStmt", "Block", "If", "While", "For",
                     "Return", "Break", "Continue"):
            assert name in kinds

    def test_single_program_exercises_everything(self):
        """The coverage preamble makes *each* program a full-coverage
        workload: every AST node kind, every codegen-emittable opcode."""
        program = generate_program(0, 0)
        report = corpus_coverage([program])
        assert report.missing_node_kinds == frozenset(), (
            "generated corpus misses AST node kinds: "
            + ", ".join(sorted(report.missing_node_kinds)))
        assert report.missing_opcodes == frozenset(), (
            "generated corpus misses IR opcodes: "
            + ", ".join(sorted(report.missing_opcodes)))
        assert report.complete

    def test_default_corpus_exercises_everything(self):
        report = corpus_coverage(generate_corpus(0, 3))
        assert report.complete, report.summary()

    def test_ast_node_kinds_walks_program(self):
        kinds = ast_node_kinds("int main() { int x = 1; return x; }")
        assert "DeclStmt" in kinds
        assert "Return" in kinds
        assert "IntLit" in kinds
        assert "For" not in kinds

    def test_ir_opcodes_on_trivial_unit(self):
        ops = ir_opcodes({"t.c": "int main() { return 0; }"})
        assert "ret" in ops
        assert not ops - CODEGEN_OPCODES

    def test_codegen_opcode_set_excludes_unreachable_ops(self):
        # select/fptoui exist in the IR but no MiniC construct lowers
        # to them; the coverage target must not demand them
        assert "select" not in CODEGEN_OPCODES
        assert "fptoui" not in CODEGEN_OPCODES
        assert "unreachable" in CODEGEN_OPCODES

    def test_summary_lists_missing(self):
        report = corpus_coverage(generate_corpus(0, 1))
        text = report.summary()
        assert "AST node kinds" in text
        assert "IR opcodes" in text

"""Tests for the MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.frontend.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds("int foo while whilex")
        assert toks == [
            ("keyword", "int"), ("ident", "foo"),
            ("keyword", "while"), ("ident", "whilex"),
        ]

    def test_numbers(self):
        toks = tokenize("42 0x1F 3.5 1e3 2.5e-2 7L")[:-1]
        assert [t.value for t in toks] == [42, 31, 3.5, 1000.0, 0.025, 7]
        assert [t.kind for t in toks] == ["int", "int", "float", "float", "float", "int"]

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\0' '\\'")[:-1]
        assert [t.value for t in toks] == [97, 10, 0, 92]

    def test_string_literals(self):
        toks = tokenize(r'"hi" "a\nb" ""')[:-1]
        assert [t.value for t in toks] == [b"hi", b"a\nb", b""]

    def test_operators_longest_match(self):
        toks = kinds("a <<= b << c <= d < e")
        ops = [text for kind, text in toks if kind == "op"]
        assert ops == ["<<=", "<<", "<=", "<"]

    def test_arrow_vs_minus(self):
        ops = [t.text for t in tokenize("a->b - c--")[:-1] if t.kind == "op"]
        assert ops == ["->", "-", "--"]

    def test_comments_stripped(self):
        toks = kinds("a // line comment\nb /* block\ncomment */ c")
        assert [text for _, text in toks] == ["a", "b", "c"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")[:-1]
        assert [t.line for t in toks] == [1, 2, 4]

    def test_errors(self):
        with pytest.raises(CompileError, match="unterminated block comment"):
            tokenize("/* never ends")
        with pytest.raises(CompileError, match="unterminated string"):
            tokenize('"open')
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a $ b")
        with pytest.raises(CompileError, match="unknown escape"):
            tokenize(r"'\q'")

"""Tests for MiniC code generation (compile-and-run semantics)."""

import pytest

from repro.errors import CompileError
from repro.frontend import compile_source
from repro.ir import Cast, Load, Store, verify_module
from repro.vm import VirtualMachine


def run(src, **kw):
    mod = compile_source(src, **kw)
    verify_module(mod)
    vm = VirtualMachine(mod, max_instructions=2_000_000)
    code = vm.run()
    return code, vm.output


class TestBasics:
    def test_conversions(self):
        _, out = run(r"""
        int main() {
            char c = 200;            // wraps to -56 (signed char)
            print_i64(c);
            int i = 3.99;            // fptosi truncates
            print_i64(i);
            double d = 7;            // sitofp
            print_f64(d);
            long big = 1 << 20;
            int truncated = (int)((big << 20) + 5);
            print_i64(truncated);
            return 0;
        }""")
        assert out == ["-56", "3", "7.000000", "5"]

    def test_char_arithmetic_promotes(self):
        _, out = run(r"""
        int main() {
            char a = 100; char b = 100;
            print_i64(a + b);        // promoted to int: 200, no wrap
            return 0;
        }""")
        assert out == ["200"]

    def test_compound_assignment(self):
        _, out = run(r"""
        int main() {
            int x = 10;
            x += 5; print_i64(x);
            x -= 3; print_i64(x);
            x *= 2; print_i64(x);
            x /= 4; print_i64(x);
            x <<= 3; print_i64(x);
            x |= 1; print_i64(x);
            return 0;
        }""")
        assert out == ["15", "12", "24", "6", "48", "49"]

    def test_postfix_and_prefix(self):
        _, out = run(r"""
        int main() {
            int i = 5;
            print_i64(i++);
            print_i64(i);
            print_i64(++i);
            int a[3]; a[0] = 1; a[1] = 2; a[2] = 3;
            int *p = a;
            print_i64(*p++);
            print_i64(*p);
            return 0;
        }""")
        assert out == ["5", "6", "7", "1", "2"]

    def test_ternary_types_unify(self):
        _, out = run(r"""
        int main() {
            int i = 3;
            double d = (i > 2) ? i : 0.5;   // int arm converts to double
            print_f64(d);
            return 0;
        }""")
        assert out == ["3.000000"]

    def test_comma_operator(self):
        _, out = run(r"""
        int main() {
            int x = (print_i64(1), 2);
            print_i64(x);
            return 0;
        }""")
        assert out == ["1", "2"]

    def test_string_interning(self):
        mod = compile_source(r"""
        int main() { print_str("dup"); print_str("dup"); return 0; }""")
        strings = [g for g in mod.globals.values() if g.name.startswith(".str")]
        assert len(strings) == 1


class TestPointers:
    def test_nested_struct_access(self):
        _, out = run(r"""
        struct inner { int v; };
        struct outer { struct inner in; int pad; };
        int main() {
            struct outer o;
            o.in.v = 5; o.pad = 2;
            print_i64(o.in.v + o.pad);
            return 0;
        }""")
        assert out == ["7"]

    def test_linked_list(self):
        _, out = run(r"""
        struct node { int value; struct node *next; };
        int main() {
            struct node *head = NULL;
            for (int i = 0; i < 5; i++) {
                struct node *n = (struct node *) malloc(sizeof(struct node));
                n->value = i; n->next = head;
                head = n;
            }
            long sum = 0;
            struct node *cur = head;
            while (cur != NULL) { sum = sum * 10 + cur->value; cur = cur->next; }
            print_i64(sum);
            return 0;
        }""")
        assert out == ["43210"]

    def test_array_of_structs(self):
        _, out = run(r"""
        struct pair { int a; int b; };
        int main() {
            struct pair ps[4];
            for (int i = 0; i < 4; i++) { ps[i].a = i; ps[i].b = i * i; }
            long s = 0;
            for (int i = 0; i < 4; i++) s += ps[i].a + ps[i].b;
            print_i64(s);
            return 0;
        }""")
        assert out == [str(sum(i + i * i for i in range(4)))]

    def test_pointer_to_pointer(self):
        _, out = run(r"""
        int main() {
            int x = 1;
            int *p = &x;
            int **pp = &p;
            **pp = 9;
            print_i64(x);
            return 0;
        }""")
        assert out == ["9"]

    def test_2d_array(self):
        _, out = run(r"""
        int grid[3][4];
        int main() {
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    grid[i][j] = i * 10 + j;
            print_i64(grid[2][3]);
            print_i64(grid[0][0]);
            return 0;
        }""")
        assert out == ["23", "0"]

    def test_address_of_array_element(self):
        _, out = run(r"""
        void bump(int *p) { *p = *p + 1; }
        int main() {
            int a[4]; a[2] = 10;
            bump(&a[2]);
            print_i64(a[2]);
            return 0;
        }""")
        assert out == ["11"]


class TestObfuscatedPointerCopies:
    SRC = r"""
    int main() {
        int x = 5;
        int *p = &x;
        int *slot[1];
        slot[0] = p;
        int *q = slot[0];
        print_i64(*q);
        return 0;
    }"""

    def test_same_behaviour(self):
        _, plain = run(self.SRC, obfuscate_pointer_copies=False)
        _, obf = run(self.SRC, obfuscate_pointer_copies=True)
        assert plain == obf == ["5"]

    def test_obfuscation_emits_int_casts(self):
        mod = compile_source(self.SRC, obfuscate_pointer_copies=True)
        ops = [i.opcode for i in mod.get_function("main").instructions()]
        assert "ptrtoint" in ops and "inttoptr" in ops
        # pointer-typed stores disappear
        stores = [
            i for i in mod.get_function("main").instructions()
            if isinstance(i, Store) and i.value.type.is_pointer()
        ]
        assert not stores


class TestStaticAllocaHoisting:
    def test_loop_local_array_hoisted_to_entry(self):
        mod = compile_source(r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 3; i++) {
                int tmp[8];
                tmp[0] = i;
                s += tmp[0];
            }
            print_i64(s);
            return 0;
        }""")
        from repro.ir import Alloca

        main = mod.get_function("main")
        for block in main.blocks:
            for inst in block.instructions:
                if isinstance(inst, Alloca):
                    assert block is main.entry


class TestErrors:
    def test_unknown_identifier(self):
        with pytest.raises(CompileError, match="unknown identifier"):
            compile_source("int main() { return nope; }")

    def test_unknown_function(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_source("int main() { return nope(); }")

    def test_arity_mismatch(self):
        with pytest.raises(CompileError, match="expects 1"):
            compile_source("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_unknown_member(self):
        with pytest.raises(CompileError, match="no member"):
            compile_source(
                "struct s { int a; }; int main() { struct s v; return v.b; }"
            )

    def test_deref_non_pointer(self):
        with pytest.raises(CompileError, match="dereference"):
            compile_source("int main() { int x = 1; return *x; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            compile_source("int main() { break; return 0; }")

    def test_redeclaration(self):
        with pytest.raises(CompileError, match="redeclaration"):
            compile_source("int main() { int a = 1; int a = 2; return a; }")

    def test_void_return_mismatch(self):
        with pytest.raises(CompileError, match="return without value"):
            compile_source("int main() { return; }")

"""Function pointers in MiniC, uninstrumented and instrumented."""

import pytest

from repro import CompileOptions, compile_and_run
from repro.core import InstrumentationConfig
from repro.errors import CompileError
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.vm import VirtualMachine

SRC = r"""
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }

int apply(int (*op)(int, int), int a, int b) {
    return op(a, b);
}

int main() {
    int (*f)(int, int) = add;
    print_i64(f(2, 3));
    f = &mul;                       // &func decays identically
    print_i64(f(2, 3));
    print_i64(apply(add, 10, 20));
    print_i64(apply(f, 10, 20));
    return 0;
}
"""
EXPECTED = ["5", "6", "30", "200"]


def run(src, config=None, **kw):
    options = CompileOptions(verify=True)
    if config is None:
        return compile_and_run(src, options=options, max_instructions=1_000_000)
    return compile_and_run(src, config, options, max_instructions=1_000_000)


class TestBasics:
    def test_direct_and_indirect_calls(self):
        result = run(SRC)
        assert result.ok and result.output == EXPECTED

    def test_global_function_pointer(self):
        result = run(r"""
        long twice(long x) { return x * 2; }
        long (*handler)(long);
        int main() {
            handler = twice;
            print_i64(handler(21));
            return 0;
        }""")
        assert result.ok and result.output == ["42"]

    def test_function_pointer_selected_at_runtime(self):
        result = run(r"""
        int up(int x) { return x + 1; }
        int down(int x) { return x - 1; }
        int main() {
            long s = 0;
            for (int i = 0; i < 6; i++) {
                int (*step)(int) = (i % 2 == 0) ? up : down;
                s += step(10);
            }
            print_i64(s);
            return 0;
        }""")
        assert result.ok and result.output == [str(3 * 11 + 3 * 9)]

    def test_builtin_as_function_pointer(self):
        result = run(r"""
        int main() {
            long (*len)(char *) = strlen;
            print_i64(len("four"));
            return 0;
        }""")
        assert result.ok and result.output == ["4"]

    def test_calling_non_callable_rejected(self):
        with pytest.raises(CompileError, match="not callable"):
            compile_source("int main() { int x = 1; return x(); }")

    def test_arity_checked_through_pointer(self):
        with pytest.raises(CompileError, match="expects 2"):
            compile_source(r"""
            int add(int a, int b) { return a + b; }
            int main() { int (*f)(int, int) = add; return f(1); }""")


class TestInstrumented:
    @pytest.mark.parametrize(
        "config",
        [InstrumentationConfig.softbound(), InstrumentationConfig.lowfat()],
        ids=["softbound", "lowfat"],
    )
    def test_behaviour_preserved(self, config):
        result = run(SRC, config)
        assert result.ok, result.describe()
        assert result.output == EXPECTED

    @pytest.mark.parametrize(
        "config",
        [InstrumentationConfig.softbound(), InstrumentationConfig.lowfat()],
        ids=["softbound", "lowfat"],
    )
    def test_oob_through_callback_detected(self, config):
        """The callback writes out of bounds of the array the indirect
        caller handed it: bounds must travel across the indirect call."""
        result = run(r"""
        void clobber(int *p) { p[100000] = 1; }
        void apply(void (*cb)(int *), int *arr) { cb(arr); }
        int main() {
            int *a = (int *) malloc(sizeof(int) * 4);
            apply(clobber, a);
            free((void*)a);
            return 0;
        }""", config)
        assert result.violation is not None
        assert result.violation.kind == "deref"

    def test_stored_function_pointer_gets_trie_metadata(self):
        """Function pointers stored to memory go through SoftBound's
        trie like any other pointer (with wide code-pointer bounds)."""
        program_src = r"""
        int five() { return 5; }
        int (*slot)();
        int main() {
            slot = five;
            print_i64(slot());
            return 0;
        }"""
        result = run(program_src, InstrumentationConfig.softbound())
        assert result.ok and result.output == ["5"]
        assert result.stats.trie_stores >= 1

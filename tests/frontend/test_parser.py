"""Tests for the MiniC parser."""

import pytest

from repro.errors import CompileError
from repro.frontend import parse
from repro.frontend import ast


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x = 5;")
        assert len(unit.globals) == 1
        g = unit.globals[0]
        assert g.name == "x"
        assert g.ctype == ast.CINT
        assert isinstance(g.init, ast.IntLit)

    def test_global_array_dims_outermost_first(self):
        unit = parse("int grid[2][3];")
        ctype = unit.globals[0].ctype
        assert isinstance(ctype, ast.CArray) and ctype.count == 2
        assert isinstance(ctype.element, ast.CArray) and ctype.element.count == 3

    def test_size_less_extern_array(self):
        unit = parse("extern int data[];")
        g = unit.globals[0]
        assert g.extern
        assert isinstance(g.ctype, ast.CArray)
        assert g.ctype.count is None

    def test_multiple_declarators(self):
        unit = parse("int a, *b, c[4];")
        types = [g.ctype for g in unit.globals]
        assert types[0] == ast.CINT
        assert isinstance(types[1], ast.CPointer)
        assert isinstance(types[2], ast.CArray)

    def test_struct_definition(self):
        unit = parse("struct point { int x; int y; double w[3]; };")
        s = unit.structs[0]
        assert s.tag == "point"
        assert [name for _, name in s.members] == ["x", "y", "w"]

    def test_function_with_params(self):
        unit = parse("long f(int a, char *b, double c) { return 0; }")
        fn = unit.functions[0]
        assert fn.name == "f"
        assert fn.return_type == ast.CLONG
        assert len(fn.params) == 3
        assert isinstance(fn.params[1][0], ast.CPointer)

    def test_array_param_decays(self):
        unit = parse("int f(int a[]) { return a[0]; }")
        pty = unit.functions[0].params[0][0]
        assert isinstance(pty, ast.CPointer)

    def test_function_declaration_only(self):
        unit = parse("int f(int a);")
        assert unit.functions[0].body is None

    def test_void_param_list(self):
        unit = parse("int f(void) { return 1; }")
        assert unit.functions[0].params == []


class TestExpressions:
    def _expr(self, text):
        unit = parse(f"int main() {{ return {text}; }}")
        stmt = unit.functions[0].body.statements[0]
        return stmt.value

    def test_precedence(self):
        e = self._expr("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.rhs, ast.Binary) and e.rhs.op == "*"

    def test_comparison_chains_under_logic(self):
        e = self._expr("a < b && c > d")
        assert e.op == "&&"
        assert e.lhs.op == "<" and e.rhs.op == ">"

    def test_ternary(self):
        e = self._expr("a ? b : c")
        assert isinstance(e, ast.Conditional)

    def test_cast_vs_parenthesised_expr(self):
        cast = self._expr("(int) x")
        assert isinstance(cast, ast.CastExpr)
        grouped = self._expr("(x) + 1")
        assert isinstance(grouped, ast.Binary)

    def test_sizeof(self):
        e = self._expr("sizeof(struct point)")
        assert isinstance(e, ast.SizeofExpr)
        assert isinstance(e.target, ast.CStruct)

    def test_postfix_chain(self):
        e = self._expr("a.b[2]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.base, ast.Member)

    def test_arrow(self):
        e = self._expr("p->next")
        assert isinstance(e, ast.Member) and e.arrow

    def test_prefix_increment_desugars(self):
        e = self._expr("++x")
        assert isinstance(e, ast.Assign) and e.op == "+="

    def test_unary_chain(self):
        e = self._expr("-*p")
        assert isinstance(e, ast.Unary) and e.op == "-"
        assert isinstance(e.operand, ast.Unary) and e.operand.op == "*"

    def test_call_arguments(self):
        e = self._expr("f(1, x + 2, g())")
        assert isinstance(e, ast.CallExpr)
        assert len(e.args) == 3


class TestStatements:
    def _stmts(self, body):
        unit = parse(f"int main() {{ {body} }}")
        return unit.functions[0].body.statements

    def test_for_with_decl(self):
        stmt = self._stmts("for (int i = 0; i < 10; i++) {}")[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        stmt = self._stmts("for (;;) break;")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_dangling_else(self):
        stmt = self._stmts("if (a) if (b) x = 1; else x = 2;")[0]
        assert stmt.otherwise is None            # else binds to inner if
        assert stmt.then.otherwise is not None

    def test_local_multi_decl(self):
        stmts = self._stmts("int a = 1, b = 2;")
        assert isinstance(stmts[0], ast.Block)
        assert len(stmts[0].statements) == 2


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="expected"):
            parse("int main() { return 0 }")

    def test_unbalanced_paren(self):
        with pytest.raises(CompileError):
            parse("int main() { return (1; }")

    def test_bad_top_level(self):
        with pytest.raises(CompileError):
            parse("42;")

"""Tests for the command-line driver."""

import pytest

from repro.cli import main


@pytest.fixture
def demo_c(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(r"""
int main() {
    int *a = (int *) malloc(sizeof(int) * 4);
    a[1] = 41;
    print_i64(a[1] + 1);
    free((void*)a);
    return 0;
}
""")
    return str(path)


@pytest.fixture
def buggy_c(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(r"""
int main() {
    int *a = (int *) malloc(sizeof(int) * 4);
    a[999] = 1;
    free((void*)a);
    return 0;
}
""")
    return str(path)


class TestRun:
    def test_plain_run(self, demo_c, capsys):
        assert main(["run", demo_c]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_softbound_clean(self, demo_c, capsys):
        assert main(["run", demo_c, "-mi-config=softbound"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_violation_exit_code(self, buggy_c, capsys):
        assert main(["run", buggy_c, "-mi-config=lowfat"]) == 134
        assert "violation" in capsys.readouterr().err

    def test_stats_flag(self, demo_c, capsys):
        assert main(["run", demo_c, "-mi-config=softbound", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "deref checks" in err

    def test_artifact_flag_set(self, demo_c, capsys):
        args = ["run", demo_c,
                "-mi-config=softbound",
                "-mi-sb-size-zero-wide-upper",
                "-mi-sb-inttoptr-wide-bounds",
                "-mi-policy-ignore-inline-asm",
                "-mi-opt-dominance"]
        assert main(args) == 0

    def test_extension_point_option(self, demo_c, capsys):
        args = ["run", demo_c, "-mi-config=lowfat",
                "--extension-point", "ModuleOptimizerEarly"]
        assert main(args) == 0

    def test_geninvariants_mode(self, buggy_c, capsys):
        # metadata-only: the far OOB store is not *reported* (it traps)
        code = main(["run", buggy_c, "-mi-config=softbound",
                     "-mi-mode=geninvariants"])
        assert code == 139
        assert "fault" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent.c"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main() { return }")
        assert main(["run", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_mi_flag_rejected(self, demo_c, capsys):
        # a clean one-line diagnostic and exit code 2 -- no traceback,
        # no argparse usage dump
        assert main(["run", demo_c, "-mi-frobnicate"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "-mi-frobnicate" in err
        assert "Traceback" not in err

    def test_bad_mi_config_value_rejected(self, demo_c, capsys):
        assert main(["run", demo_c, "-mi-config=magic"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_opt_ranges_flag(self, demo_c, capsys):
        assert main(["run", demo_c, "-mi-config=softbound",
                     "-mi-opt-dominance", "-mi-opt-ranges"]) == 0
        assert capsys.readouterr().out.strip() == "42"


class TestEmit:
    def test_emit_prints_ir(self, demo_c, capsys):
        assert main(["emit", demo_c, "-mi-config=softbound"]) == 0
        out = capsys.readouterr().out
        assert "define i32 @main()" in out
        assert "__sb_check" in out
        assert "__sb_wrap_malloc" in out

    def test_emitted_ir_reparses(self, demo_c, capsys):
        from repro.ir import parse_module, verify_module

        main(["emit", demo_c, "-mi-config=lowfat"])
        text = capsys.readouterr().out
        mod = parse_module(text)
        verify_module(mod)


class TestLint:
    @pytest.fixture
    def huge_c(self, tmp_path):
        path = tmp_path / "huge.c"
        path.write_text(r"""
int main() {
    char *big = (char *) malloc(1073741824);
    big[0] = 1;
    free((void*)big);
    return 0;
}
""")
        return str(path)

    def test_lint_source_file(self, huge_c, capsys):
        assert main(["lint", huge_c]) == 0
        out = capsys.readouterr().out
        assert "huge-allocation" in out
        assert "paper section 4.6" in out

    def test_lint_clean_file(self, demo_c, capsys):
        assert main(["lint", demo_c]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "0 finding(s)" in out

    def test_lint_workload_by_name(self, capsys):
        assert main(["lint", "456hmmer"]) == 0
        out = capsys.readouterr().out
        assert "inttoptr-roundtrip" in out

    def test_lint_json_format(self, huge_c, capsys):
        import json

        assert main(["lint", huge_c, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in payload[huge_c]] == ["huge-allocation"]

    def test_lint_without_targets_errors(self, capsys):
        assert main(["lint"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_lint_missing_file(self, capsys):
        assert main(["lint", "/nonexistent.c"]) == 1
        assert "error" in capsys.readouterr().err


class TestProfile:
    def test_profile_source_file(self, demo_c, capsys):
        assert main(["profile", demo_c, "-mi-config=softbound"]) == 0
        out = capsys.readouterr().out
        assert "approach: softbound" in out
        assert "Hottest check sites" in out
        assert "Wide-bounds attribution" in out

    def test_profile_workload_by_name(self, capsys):
        assert main(["profile", "164gzip", "-mi-config=softbound"]) == 0
        out = capsys.readouterr().out
        # the paper's Table 2 attribution, measured
        assert "sizeless-extern-array" in out

    def test_profile_json_schema_and_sums(self, capsys):
        import json

        assert main(["profile", "429mcf", "-mi-config=lowfat",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["approach"] == "lowfat"
        assert {"totals", "site_count", "sums", "sites",
                "wide_sites"} <= set(payload)
        assert payload["sums"]["executed"] \
            == payload["totals"]["checks_executed"]
        assert payload["sums"]["wide"] == payload["totals"]["checks_wide"]
        assert payload["totals"]["checks_wide"] > 0      # the >1GiB alloc
        wide_total = sum(
            sum(s["reasons"].values()) for s in payload["wide_sites"])
        assert wide_total == payload["totals"]["checks_wide"]

    def test_profile_top_limits_sites(self, capsys):
        import json

        assert main(["profile", "164gzip", "-mi-config=softbound",
                     "--format", "json", "--top", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["sites"]) == 3
        assert payload["site_count"] > 3

    def test_profile_requires_instrumented_config(self, demo_c, capsys):
        assert main(["profile", demo_c]) == 2
        err = capsys.readouterr().err
        assert "instrumented configuration" in err

    def test_profile_engines_agree(self, capsys):
        import json

        payloads = []
        for engine in ("interp", "compiled"):
            assert main(["profile", "181mcf", "-mi-config=lowfat",
                         "--engine", engine, "--format", "json"]) == 0
            payloads.append(json.loads(capsys.readouterr().out))
        assert payloads[0] == payloads[1]


class TestBench:
    def test_bench_runs(self, capsys):
        assert main(["bench", "197parser", "-mi-config=softbound"]) == 0
        out = capsys.readouterr().out
        assert "197parser" in out and "cycles=" in out

    def test_bench_with_baseline(self, capsys):
        assert main(["bench", "197parser", "-mi-config=lowfat",
                     "--compare-baseline"]) == 0
        assert "overhead=" in capsys.readouterr().out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["bench", "999nope"])


class TestFuzz:
    def test_quick_matrix_clean(self, capsys):
        assert main(["fuzz", "--seed", "5", "--count", "2",
                     "--matrix", "quick", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 programs x 3 cells" in out
        assert "no mismatches" in out

    def test_json_report(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "report.json"
        assert main(["fuzz", "--seed", "5", "--count", "1",
                     "--matrix", "quick", "--jobs", "1",
                     "--format", "json", "--output", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["ok"] is True
        assert doc["programs"] == 1
        assert doc["matrix"] == "quick"
        assert doc["seed"] == 5

    def test_coverage_flag(self, capsys):
        assert main(["fuzz", "--seed", "5", "--count", "1",
                     "--matrix", "quick", "--jobs", "1",
                     "--coverage"]) == 0
        out = capsys.readouterr().out
        assert "AST node kinds" in out
        assert "0 missing" in out

    def test_bad_count_rejected(self, capsys):
        assert main(["fuzz", "--count", "0"]) == 2
        assert "--count" in capsys.readouterr().err

    def test_progress_goes_to_stderr(self, capsys):
        assert main(["fuzz", "--seed", "5", "--count", "1",
                     "--matrix", "quick", "--jobs", "1"]) == 0
        assert "[fuzz]" in capsys.readouterr().err

"""Fault injection: the engine must degrade gracefully.

A worker that crashes or exceeds its time budget must produce a
structured *failed* ``BenchResult`` for that one job -- with every
other job in the wave still succeeding -- instead of taking the whole
run down.  Failed results are never written to the disk cache, so a
later run retries them.

The injection works by monkeypatching ``_execute_payload``: worker
processes are forked from the test process, so they inherit the patch.
"""

import time

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentEngine, JobRequest
from repro.experiments import runner as runner_mod
from repro.workloads import get

WORKLOADS = ("197parser", "456hmmer")


def _crash_label(monkeypatch, label, exc=None):
    """Make ``_execute_payload`` raise for one config label only."""
    real = runner_mod._execute_payload

    def selective(payload):
        if payload["label"] == label:
            raise exc or RuntimeError(f"injected crash for {label}")
        return real(payload)

    monkeypatch.setattr(runner_mod, "_execute_payload", selective)


class TestCrashInjection:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_crashed_job_rest_succeed(self, monkeypatch, jobs):
        _crash_label(monkeypatch, "lowfat")
        engine = ExperimentEngine(jobs=jobs)
        requests = [JobRequest(get(name), label)
                    for name in WORKLOADS
                    for label in ("softbound", "lowfat")]
        results = engine.run_many(requests)

        assert len(results) == len(requests)
        for result in results:
            if result.label == "lowfat":
                assert result.status == "failed"
                assert not result.ok
                assert "injected crash for lowfat" in result.failure
                assert result.cycles == 0
            else:
                assert result.status == "exit"
                assert result.ok
                assert result.cycles > 0

    def test_crashed_baseline_fails_dependents_not_run(self, monkeypatch):
        # A dead baseline cannot validate outputs, but the instrumented
        # measurement itself must still come back.
        _crash_label(monkeypatch, "baseline")
        engine = ExperimentEngine(jobs=2)
        results = engine.run_many([
            JobRequest(get("197parser"), "baseline"),
            JobRequest(get("197parser"), "softbound"),
        ])
        by_label = {r.label: r for r in results}
        assert by_label["baseline"].status == "failed"
        assert by_label["softbound"].status == "exit"
        assert by_label["softbound"].cycles > 0

    def test_failed_jobs_not_cached_and_retried(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        _crash_label(monkeypatch, "softbound")
        first = ExperimentEngine(jobs=2, cache=cache)
        failed = first.run(get("197parser"), "softbound")
        assert failed.status == "failed"

        # only the baseline made it to disk; the failure is retried
        monkeypatch.undo()
        second = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        retried = second.run(get("197parser"), "softbound")
        assert retried.ok
        assert second.executed_jobs == 1  # the instrumented retry
        assert second.cache_hits == 1     # the baseline

    def test_inline_crash_is_structured_too(self, monkeypatch):
        # jobs=1 takes the inline path (no worker pool); same contract.
        def explode(payload):
            raise ValueError("inline boom")
        monkeypatch.setattr(runner_mod, "_execute_payload", explode)
        engine = ExperimentEngine(jobs=1)
        result = engine.run(get("197parser"), "baseline")
        assert result.status == "failed"
        assert "inline boom" in result.failure


class TestTimeoutInjection:
    def _hang_label(self, monkeypatch, label, seconds=30.0):
        real = runner_mod._execute_payload

        def selective(payload):
            if payload["label"] == label:
                time.sleep(seconds)
            return real(payload)

        monkeypatch.setattr(runner_mod, "_execute_payload", selective)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_hung_job_times_out_rest_succeed(self, monkeypatch, jobs):
        self._hang_label(monkeypatch, "lowfat")
        engine = ExperimentEngine(jobs=jobs, job_timeout=1.0)
        start = time.monotonic()
        results = engine.run_many([
            JobRequest(get("197parser"), "softbound"),
            JobRequest(get("197parser"), "lowfat"),
        ])
        elapsed = time.monotonic() - start
        assert elapsed < 20, "timeout did not fire"

        by_label = {r.label: r for r in results}
        assert by_label["lowfat"].status == "failed"
        assert "timed out" in by_label["lowfat"].failure
        assert by_label["softbound"].ok

    def test_generous_timeout_does_not_fire(self):
        engine = ExperimentEngine(jobs=2, job_timeout=120.0)
        results = engine.run_many([
            JobRequest(get(name), "softbound") for name in WORKLOADS
        ])
        assert all(r.ok for r in results)

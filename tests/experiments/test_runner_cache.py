"""Tests for the parallel experiment engine and its on-disk cache.

Covers the hard guarantees the engine makes:

* ``BenchResult`` JSON serialization round-trips *exactly* (property-
  based) -- this is what makes worker transport and the disk cache
  lossless;
* cache hit / miss / automatic invalidation when any keyed input
  changes;
* a 2-worker parallel run is bit-identical to the serial path;
* ``verify_cache`` turns a corrupted cache entry into a hard error.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.itarget import TargetStatistics
from repro.errors import CacheVerificationError
from repro.experiments.cache import ResultCache, job_key
from repro.experiments.common import BenchResult
from repro.experiments.runner import ExperimentEngine, JobRequest
from repro.experiments import runner as runner_mod
from repro.workloads import Workload, get

FAST_WORKLOADS = ("197parser", "456hmmer")


# ----------------------------------------------------------------------
# BenchResult JSON round-trip (property-based)

_counts = st.integers(min_value=0, max_value=2**40)
_names = st.text(min_size=0, max_size=30)

_static_stats = st.builds(
    TargetStatistics,
    gathered_checks=_counts,
    gathered_invariants=_counts,
    filtered_checks=_counts,
    by_kind=st.dictionaries(_names, _counts, max_size=6),
)

_bench_results = st.builds(
    BenchResult,
    workload=_names,
    label=_names,
    extension_point=_names,
    cycles=_counts,
    instructions=_counts,
    output=st.lists(_names, max_size=6),
    ok=st.booleans(),
    describe=_names,
    checks_executed=_counts,
    checks_wide=_counts,
    unsafe_percent=st.floats(min_value=0.0, max_value=100.0,
                             allow_nan=False),
    invariant_checks=_counts,
    trie_loads=_counts,
    trie_stores=_counts,
    shadow_stack_ops=_counts,
    lowfat_fallbacks=_counts,
    static=_static_stats,
    status=st.sampled_from(["exit", "violation", "fault", "abort", "failed"]),
    violation_kind=st.sampled_from(["", "deref", "invariant", "wrapper"]),
    failure=_names,
    lowfat_allocs=_counts,
    opcode_counts=st.dictionaries(_names, _counts, max_size=8),
)


class TestBenchResultJson:
    @given(_bench_results)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_exact(self, result):
        document = json.loads(json.dumps(result.to_json(), sort_keys=True))
        assert BenchResult.from_json(document) == result

    @given(_bench_results)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_is_plain_data(self, result):
        # to_json must not leak live objects into the cache document.
        document = result.to_json()
        assert isinstance(document["static"], dict)
        restored = BenchResult.from_json(document)
        assert isinstance(restored.static, TargetStatistics)
        assert restored.static == result.static

    def test_real_result_round_trips(self):
        engine = ExperimentEngine()
        result = engine.run(get("197parser"), "softbound")
        assert BenchResult.from_json(
            json.loads(json.dumps(result.to_json()))) == result

    def test_failed_result_is_structured(self):
        result = BenchResult.failed(get("197parser"), "softbound",
                                    "VectorizerStart", "worker exploded")
        assert not result.ok
        assert result.status == "failed"
        assert result.failure == "worker exploded"
        assert result.cycles == 0
        assert BenchResult.from_json(result.to_json()) == result


# ----------------------------------------------------------------------
# cache hit / miss / invalidation

def _engine(tmp_path, **kwargs):
    kwargs.setdefault("cache", ResultCache(tmp_path / "cache"))
    return ExperimentEngine(**kwargs)


def _forbid_execution(monkeypatch):
    def explode(payload):
        raise AssertionError(
            f"unexpected recomputation of {payload['workload']}"
            f"/{payload['label']}")
    monkeypatch.setattr(runner_mod, "_execute_payload", explode)


class TestDiskCache:
    def test_cold_run_populates_cache(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run(get("197parser"), "softbound")
        assert engine.cache.stores >= 2  # baseline + instrumented
        assert len(engine.cache) == engine.cache.stores

    def test_second_process_hits_without_recompute(self, tmp_path,
                                                   monkeypatch):
        first = _engine(tmp_path)
        original = first.run(get("197parser"), "softbound")

        _forbid_execution(monkeypatch)
        second = _engine(tmp_path)
        cached = second.run(get("197parser"), "softbound")
        assert cached.to_json() == original.to_json()
        assert second.cache_hits == 1
        assert second.executed_jobs == 0

    def test_config_change_invalidates(self, tmp_path):
        first = _engine(tmp_path)
        first.run(get("197parser"), "softbound")

        second = _engine(tmp_path)
        second.run(get("197parser"), "softbound-unopt")
        # the shared baseline hits; the changed config is recomputed
        assert second.cache_hits == 1
        assert second.executed_jobs == 1

    def test_budget_change_invalidates(self, tmp_path, monkeypatch):
        first = _engine(tmp_path)
        first.run(get("197parser"), "baseline")

        same = _engine(tmp_path)
        same.run(get("197parser"), "baseline")
        assert same.cache_hits == 1

        changed = _engine(tmp_path, max_instructions=10_000_000)
        changed.run(get("197parser"), "baseline")
        assert changed.cache_hits == 0
        assert changed.executed_jobs == 1

    def test_source_change_invalidates(self, tmp_path):
        base = get("197parser")
        first = _engine(tmp_path)
        first.run(base, "baseline")

        edited = Workload(
            name=base.name,
            sources={name: source + "\n// edited\n"
                     for name, source in base.sources.items()},
            description=base.description,
            characteristics=base.characteristics,
            obfuscated_units=base.obfuscated_units,
        )
        second = _engine(tmp_path)
        second.run(edited, "baseline")
        assert second.cache_hits == 0
        assert second.executed_jobs == 1

    def test_key_ignores_reference_and_timeout(self):
        payload = {"workload": "w", "sources": {"tu0": "int main(){}"},
                   "reference_output": ["1"], "timeout": 5.0}
        same = dict(payload, reference_output=None, timeout=None)
        other = dict(payload, sources={"tu0": "int main(){return 1;}"})
        assert job_key(payload) == job_key(same)
        assert job_key(payload) != job_key(other)

    def test_key_ignores_vm_engine(self):
        # The engines are bit-identical by contract (enforced by
        # tests/vm/test_engine_differential.py), so the engine choice
        # must not partition the cache -- and payloads written before
        # the field existed must key identically to new ones.
        payload = {"workload": "w", "sources": {"tu0": "int main(){}"}}
        assert job_key(dict(payload, engine="compiled")) == job_key(payload)
        assert job_key(dict(payload, engine="interp")) == \
            job_key(dict(payload, engine="compiled"))
        assert job_key(dict(payload, engine="codegen")) == \
            job_key(dict(payload, engine="compiled"))

    def test_format_version_tracks_schema_changes(self):
        # The closure-compiled tier required no bump (engines are
        # bit-identical), but the hoist filter did: TargetStatistics
        # grew the hoist counters and static verdicts, so version-2
        # entries would deserialize with missing fields.
        from repro.experiments.cache import CACHE_FORMAT_VERSION

        assert CACHE_FORMAT_VERSION == 3

    def test_interp_cached_result_replays_for_compiled(self, tmp_path,
                                                       monkeypatch):
        first = _engine(tmp_path, vm_engine="interp")
        original = first.run(get("197parser"), "softbound")

        _forbid_execution(monkeypatch)
        second = _engine(tmp_path, vm_engine="compiled")
        cached = second.run(get("197parser"), "softbound")
        assert cached.to_json() == original.to_json()
        assert second.cache_hits == 1
        assert second.executed_jobs == 0

    def test_codegen_cached_result_replays_for_other_tiers(self, tmp_path,
                                                           monkeypatch):
        first = _engine(tmp_path, vm_engine="codegen")
        original = first.run(get("197parser"), "softbound")

        _forbid_execution(monkeypatch)
        for other in ("compiled", "interp"):
            replay = _engine(tmp_path, vm_engine=other)
            cached = replay.run(get("197parser"), "softbound")
            assert cached.to_json() == original.to_json()
            assert replay.cache_hits == 1
            assert replay.executed_jobs == 0

    def test_old_style_payload_without_engine_field_replays(self, tmp_path,
                                                            monkeypatch):
        # Simulate a cache entry written by a revision that predates
        # the engine field: store under the key of an engine-less
        # payload and verify today's engine resolves to it.
        engine = _engine(tmp_path)
        request = JobRequest(get("197parser"), "baseline")
        payload = engine._payload(request)
        assert payload["engine"] == "compiled"
        old_payload = {k: v for k, v in payload.items() if k != "engine"}
        assert job_key(old_payload) == job_key(payload)

        fresh = engine.run_request(request)
        _forbid_execution(monkeypatch)
        replay = _engine(tmp_path)
        assert replay.run_request(request).to_json() == fresh.to_json()
        assert replay.cache_hits == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        engine = _engine(tmp_path)
        engine.run(get("197parser"), "baseline")
        for path in engine.cache.paths():
            path.write_text("{ not json")
        fresh = _engine(tmp_path)
        result = fresh.run(get("197parser"), "baseline")
        assert result.ok
        assert fresh.cache_hits == 0

    def test_failed_results_are_not_cached(self, tmp_path, monkeypatch):
        def explode(payload):
            raise RuntimeError("boom")
        monkeypatch.setattr(runner_mod, "_execute_payload", explode)
        engine = _engine(tmp_path)
        result = engine.run(get("197parser"), "baseline")
        assert result.status == "failed"
        assert len(engine.cache) == 0


# ----------------------------------------------------------------------
# serial == parallel (bit-identical)

class TestParallelDeterminism:
    def test_two_worker_matrix_matches_serial(self):
        requests = [
            JobRequest(get(name), label)
            for name in FAST_WORKLOADS
            for label in ("baseline", "softbound", "lowfat")
        ]
        serial = ExperimentEngine(jobs=1).run_many(list(requests))
        parallel = ExperimentEngine(jobs=2).run_many(list(requests))
        assert [r.to_json() for r in serial] == \
               [r.to_json() for r in parallel]

    def test_parallel_results_memoized(self):
        engine = ExperimentEngine(jobs=2)
        requests = [JobRequest(get(name), "softbound")
                    for name in FAST_WORKLOADS]
        first = engine.run_many(list(requests))
        # repeated requests come from the memo: identical objects
        assert engine.run(get(FAST_WORKLOADS[0]), "softbound") is first[0]
        assert engine.executed_jobs == 4  # 2 baselines + 2 instrumented

    def test_warm_cache_serves_parallel_run(self, tmp_path, monkeypatch):
        requests = [JobRequest(get(name), "softbound")
                    for name in FAST_WORKLOADS]
        cold = _engine(tmp_path, jobs=2)
        expected = [r.to_json() for r in cold.run_many(list(requests))]

        _forbid_execution(monkeypatch)
        warm = _engine(tmp_path, jobs=2)
        got = [r.to_json() for r in warm.run_many(list(requests))]
        assert got == expected


# ----------------------------------------------------------------------
# --verify-cache: cached counters must equal a fresh recomputation

class TestVerifyCache:
    def _corrupt_one(self, cache, label, field, value):
        for path in cache.paths():
            document = json.loads(path.read_text())
            if document["result"]["label"] == label:
                document["result"][field] = value
                path.write_text(json.dumps(document))
                return True
        return False

    def test_intact_cache_passes(self, tmp_path):
        _engine(tmp_path).run(get("197parser"), "softbound")
        engine = _engine(tmp_path, verify_cache=True)
        result = engine.run(get("197parser"), "softbound")
        assert result.ok

    def test_corrupted_cycles_is_a_hard_error(self, tmp_path):
        seed = _engine(tmp_path)
        seed.run(get("197parser"), "softbound")
        assert self._corrupt_one(seed.cache, "softbound", "cycles", 1)

        engine = _engine(tmp_path, verify_cache=True)
        with pytest.raises(CacheVerificationError, match="cycles"):
            engine.run(get("197parser"), "softbound")

    def test_corrupted_check_counters_detected(self, tmp_path):
        seed = _engine(tmp_path)
        seed.run(get("197parser"), "softbound")
        assert self._corrupt_one(seed.cache, "softbound",
                                 "checks_executed", 123456)

        engine = _engine(tmp_path, verify_cache=True)
        with pytest.raises(CacheVerificationError, match="checks_executed"):
            engine.run(get("197parser"), "softbound")

    def test_without_flag_no_recompute_happens(self, tmp_path, monkeypatch):
        seed = _engine(tmp_path)
        seed.run(get("197parser"), "softbound")
        _forbid_execution(monkeypatch)
        engine = _engine(tmp_path, verify_cache=False)
        engine.run(get("197parser"), "softbound")  # must not raise


# ----------------------------------------------------------------------
# per-request engine overrides (mixed-engine batches)

class TestEngineOverride:
    """``JobRequest.engine`` lets one batch mix VM tiers (the fuzz
    oracle's engine-differential matrix).  The memo must keep the tiers
    apart, the implicit baseline must inherit the override, and the
    engine-agnostic disk cache must stand aside for overridden jobs."""

    def test_override_reaches_the_worker(self):
        engine = ExperimentEngine(jobs=1, vm_engine="compiled")
        workload = get("197parser")
        seen = []
        original = runner_mod._execute_payload

        def spy(payload):
            seen.append((payload["label"], payload["engine"]))
            return original(payload)

        runner_mod._execute_payload, saved = spy, runner_mod._execute_payload
        try:
            engine.run_many([
                JobRequest(workload, "softbound", engine="interp"),
            ])
        finally:
            runner_mod._execute_payload = saved
        # both the instrumented job and its implicit baseline reference
        # ran under the overridden tier
        assert sorted(seen) == [("baseline", "interp"),
                                ("softbound", "interp")]

    def test_mixed_batch_not_memo_aliased(self):
        """The same (workload, label) under each engine must execute
        separately -- a shared memo entry would make the comparison
        vacuous."""
        engine = ExperimentEngine(jobs=1, vm_engine="compiled")
        workload = get("197parser")
        tiers = ("compiled", "interp", "codegen")
        results = engine.run_many([
            JobRequest(workload, "softbound", engine=tier)
            for tier in tiers
        ])
        # 3 instrumented jobs + 3 baseline references
        assert engine.executed_jobs == 6
        assert len({id(r) for r in results}) == len(tiers)
        # ...and the tiers really are bit-identical (the invariant the
        # fuzz oracle checks at scale)
        assert results[1].to_json() == results[0].to_json()
        assert results[2].to_json() == results[0].to_json()

    def test_override_bypasses_disk_cache(self, tmp_path):
        """A cached-at-``vm_engine`` result must not satisfy an
        override request, and an override result must not be stored."""
        workload = get("197parser")
        first = _engine(tmp_path, vm_engine="compiled")
        first.run(workload, "baseline")
        stored = len(first.cache)
        assert stored >= 1

        second = _engine(tmp_path, vm_engine="compiled")
        second.run_request(JobRequest(workload, "baseline",
                                      engine="interp"))
        assert second.cache_hits == 0
        assert second.executed_jobs == 1
        assert len(second.cache) == stored  # nothing new written

    def test_matching_override_still_uses_cache(self, tmp_path,
                                                monkeypatch):
        """An explicit override equal to ``vm_engine`` is not an
        override at all: the disk cache serves it."""
        workload = get("197parser")
        first = _engine(tmp_path, vm_engine="compiled")
        first.run(workload, "baseline")

        _forbid_execution(monkeypatch)
        second = _engine(tmp_path, vm_engine="compiled")
        second.run_request(JobRequest(workload, "baseline",
                                      engine="compiled"))
        assert second.cache_hits == 1


class TestEngineKeyedCache:
    """``engine_keyed_cache=True`` (campaign/serve mode) partitions the
    disk cache per VM engine: mixed-engine batches cache every cell,
    and no cell can ever be served another engine's stored stats."""

    def test_override_jobs_are_cached(self, tmp_path, monkeypatch):
        """Unlike the engine-agnostic mode, an engine-keyed cache
        persists overridden-engine jobs -- that is what makes a
        mixed-engine campaign shard resumable."""
        workload = get("197parser")
        first = _engine(tmp_path, engine_keyed_cache=True)
        first.run_request(JobRequest(workload, "baseline",
                                     engine="interp"))
        assert len(first.cache) == 1

        _forbid_execution(monkeypatch)
        second = _engine(tmp_path, engine_keyed_cache=True)
        result = second.run_request(JobRequest(workload, "baseline",
                                               engine="interp"))
        assert second.cache_hits == 1
        assert result.cycles > 0

    def test_engines_never_share_entries(self, tmp_path):
        """A compiled entry must not satisfy an interp request for the
        byte-identical job (the satellite-6 regression: mixed-engine
        campaign shards being served another engine's cached stats)."""
        workload = get("197parser")
        first = _engine(tmp_path, engine_keyed_cache=True)
        first.run_request(JobRequest(workload, "baseline",
                                     engine="compiled"))

        second = _engine(tmp_path, engine_keyed_cache=True)
        second.run_request(JobRequest(workload, "baseline",
                                      engine="interp"))
        assert second.cache_hits == 0
        assert second.executed_jobs == 1
        # both engines' results are now stored, under distinct keys
        assert len(second.cache) == 2

    def test_disk_keys_differ_only_by_engine(self):
        engine = ExperimentEngine(engine_keyed_cache=True)
        workload = get("197parser")
        payloads = [
            engine._payload(JobRequest(workload, "baseline", engine=tier))
            for tier in ("compiled", "interp", "codegen")
        ]
        disk_keys = [engine._disk_key(p) for p in payloads]
        assert len(set(disk_keys)) == len(payloads)
        # the engine-agnostic key ignores the engine field entirely
        assert len({job_key(p) for p in payloads}) == 1

    def test_codegen_entries_keyed_apart(self, tmp_path, monkeypatch):
        """A codegen campaign shard stores and replays its own entries
        without ever touching the closure tier's."""
        workload = get("197parser")
        first = _engine(tmp_path, engine_keyed_cache=True)
        first.run_request(JobRequest(workload, "baseline",
                                     engine="compiled"))
        first.run_request(JobRequest(workload, "baseline",
                                     engine="codegen"))
        assert first.cache_hits == 0
        assert len(first.cache) == 2

        _forbid_execution(monkeypatch)
        second = _engine(tmp_path, engine_keyed_cache=True)
        result = second.run_request(JobRequest(workload, "baseline",
                                               engine="codegen"))
        assert second.cache_hits == 1
        assert result.cycles > 0

    def test_fingerprint_is_engine_qualified_and_mode_independent(self):
        """Campaign sharding hashes the fingerprint; it must not depend
        on the local engine's cache mode or vm_engine default."""
        workload = get("197parser")
        request = JobRequest(workload, "softbound", engine="interp")
        keyed = ExperimentEngine(engine_keyed_cache=True)
        agnostic = ExperimentEngine(vm_engine="compiled")
        assert keyed.fingerprint(request) == agnostic.fingerprint(request)
        other = JobRequest(workload, "softbound", engine="compiled")
        assert keyed.fingerprint(request) != keyed.fingerprint(other)

"""Tests for the experiment harness (fast paths only: the full tables
are exercised by benchmarks/)."""

import pytest

from repro.core import InstrumentationConfig
from repro.experiments.common import Runner, config_for, format_table, geomean
from repro.workloads import get


class TestConfigLabels:
    def test_baseline_is_none(self):
        assert config_for("baseline") is None

    def test_optimized_labels(self):
        sb = config_for("softbound")
        assert sb.approach == "softbound" and sb.opt_dominance
        lf = config_for("lowfat")
        assert lf.approach == "lowfat" and lf.opt_dominance

    def test_unopt_labels(self):
        cfg = config_for("softbound-unopt")
        assert not cfg.opt_dominance and cfg.mode == "full"

    def test_meta_labels(self):
        cfg = config_for("lowfat-meta")
        assert cfg.mode == "geninvariants"

    def test_ranges_labels(self):
        for label in ("softbound-ranges", "lowfat-ranges"):
            cfg = config_for(label)
            assert cfg.opt_dominance and cfg.opt_ranges

    def test_ranges_stat_round_trips_through_json(self):
        from repro.experiments.common import BenchResult

        runner = Runner()
        result = runner.run(get("197parser"), "softbound-ranges")
        assert result.static.range_filtered_checks > 0
        restored = BenchResult.from_json(result.to_json())
        assert (restored.static.range_filtered_checks
                == result.static.range_filtered_checks)

    def test_pre_ranges_cache_entry_defaults_to_zero(self):
        # entries written before the range filter existed lack the field
        from repro.experiments.common import BenchResult

        runner = Runner()
        payload = runner.run(get("197parser"), "softbound").to_json()
        del payload["static"]["range_filtered_checks"]
        assert BenchResult.from_json(payload).static.range_filtered_checks == 0

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            config_for("lowfat-turbo")


class TestHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)
        assert geomean([]) == 0.0

    def test_format_table_alignment(self):
        table = format_table(["name", "v"], [["a", "1.00x"], ["longer", "2"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)


class TestRunner:
    def test_results_cached(self):
        runner = Runner()
        workload = get("197parser")
        first = runner.run(workload, "baseline")
        second = runner.run(workload, "baseline")
        assert first is second

    def test_overhead_above_one(self):
        runner = Runner()
        workload = get("197parser")
        assert runner.overhead(workload, "softbound") > 1.0

    def test_output_validated_against_baseline(self):
        runner = Runner()
        workload = get("197parser")
        runner.baseline(workload)
        result = runner.run(workload, "lowfat")
        assert result.ok

    def test_result_carries_static_statistics(self):
        runner = Runner()
        result = runner.run(get("197parser"), "softbound")
        assert result.static.gathered_checks > 0
        assert result.static.filtered_checks > 0  # opt_dominance on

"""Tests for the end-to-end driver API."""

import pytest

from repro import (
    CompileOptions,
    NOOP,
    compile_and_run,
    compile_program,
    run_program,
)
from repro.core import InstrumentationConfig


class TestCompileProgram:
    def test_single_source_string(self):
        result = compile_and_run("int main() { print_i64(7); return 0; }")
        assert result.ok and result.output == ["7"]

    def test_source_sequence(self):
        sources = [
            "int helper() { return 4; }",
            "int helper(); int main() { print_i64(helper()); return 0; }",
        ]
        result = compile_and_run(sources)
        assert result.ok and result.output == ["4"]

    def test_source_mapping_with_cross_unit_calls(self):
        sources = {
            "a.c": "int shared_fn(int x) { return x * 2; }",
            "b.c": "int shared_fn(int x); int main() { print_i64(shared_fn(21)); return 0; }",
        }
        result = compile_and_run(sources)
        assert result.ok and result.output == ["42"]

    def test_instrumentation_statistics_exposed(self):
        program = compile_program(
            "int g; int main() { g = 1; return g; }",
            InstrumentationConfig.softbound(),
        )
        assert program.instrumentation.gathered_checks > 0
        assert any(key.endswith(":main") for key in program.per_function)

    def test_opt_levels(self):
        src = r"""
        int main() {
            long s = 0;
            for (int i = 0; i < 50; i++) s += i * 2;
            print_i64(s);
            return 0;
        }"""
        results = {}
        for level in (0, 3):
            program = compile_program(src, options=CompileOptions(opt_level=level))
            result = run_program(program, max_instructions=1_000_000)
            results[level] = result
        assert results[0].output == results[3].output == ["2450"]
        assert results[3].stats.cycles < results[0].stats.cycles

    def test_per_unit_obfuscation(self):
        options = CompileOptions(obfuscate_pointer_copies=["b.c"])
        assert not options.obfuscates("a.c")
        assert options.obfuscates("b.c")
        assert CompileOptions(obfuscate_pointer_copies=True).obfuscates("x")

    def test_lto_toggle(self):
        sources = {
            "a.c": "int tiny(int x) { return x + 1; }",
            "b.c": "int tiny(int x); int main() { return tiny(41); }",
        }
        with_lto = compile_program(sources, options=CompileOptions())
        without = compile_program(
            sources, options=CompileOptions(link_time_optimization=False)
        )
        from repro.ir import Call

        def cross_unit_calls(program):
            main = program.module.get_function("main")
            return [
                i for i in main.instructions()
                if isinstance(i, Call) and i.callee_function is not None
                and not i.callee_function.native
            ]

        assert not cross_unit_calls(with_lto)   # inlined at link time
        assert cross_unit_calls(without)


class TestRunResult:
    def test_describe_variants(self):
        ok = compile_and_run("int main() { return 3; }")
        assert ok.describe() == "exit 3"
        violation = compile_and_run(
            "int main() { int *a = (int*) malloc(4); a[100] = 1; return 0; }",
            InstrumentationConfig.lowfat(),
        )
        assert violation.describe().startswith("violation:")
        assert not violation.ok

    def test_fault_captured(self):
        result = compile_and_run("int main() { int *p = NULL; return *p; }")
        assert result.fault is not None
        assert "null" in str(result.fault)

    def test_abort_captured(self):
        result = compile_and_run("int main() { abort(); return 0; }")
        assert result.abort is not None


class TestSeparateVsLinkedInstrumentation:
    """Section 4.3's point: linking all files *before* applying
    SoftBound resolves size-less extern arrays."""

    DATA = "int shared[16];"
    USE = r"""
    extern int shared[];
    int main() {
        for (int i = 0; i < 16; i++) shared[i] = i;
        long t = 0;
        for (int i = 0; i < 16; i++) t += shared[i];
        print_i64(t);
        return 0;
    }"""

    def test_separate_compilation_has_wide_checks(self):
        program = compile_program({"d.c": self.DATA, "u.c": self.USE},
                                  InstrumentationConfig.softbound())
        result = run_program(program, max_instructions=1_000_000)
        assert result.ok and result.stats.checks_wide > 0

    def test_linked_before_instrumentation_fully_checked(self):
        # Linking the units into one source first: the definition is
        # visible, no size-less declaration survives.
        merged = self.DATA + self.USE.replace("extern int shared[];", "")
        program = compile_program(merged, InstrumentationConfig.softbound())
        result = run_program(program, max_instructions=1_000_000)
        assert result.ok and result.stats.checks_wide == 0

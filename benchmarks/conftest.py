"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper:

* pytest-benchmark entries measure the *wall time* of executing the
  (instrumented) workload on the VM -- compilation excluded;
* one summary entry per file prints the paper-style table computed from
  the deterministic cycle counts (the numbers EXPERIMENTS.md quotes).

Programs are compiled once per (workload, configuration, extension
point) and cached for the whole benchmark session; each timing round
executes a fresh VM over the cached module.

The paper-style tables are produced by the experiment engine, which
shares one *persistent* on-disk result cache across all bench_*.py
invocations (so regenerating the full suite no longer repeats
identical (workload, config) runs per file).  Environment knobs:

* ``REPRO_BENCH_JOBS`` -- worker processes for the table runs
  (default 1);
* ``REPRO_CACHE_DIR`` -- cache directory (default
  ``~/.cache/repro-bench``);
* ``REPRO_NO_CACHE=1`` -- disable the disk cache;
* ``REPRO_VERIFY_CACHE=1`` -- recompute one cached result per session
  and hard-error on any mismatch.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.driver import CompileOptions, CompiledProgram, compile_program, make_vm
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.common import Runner, config_for
from repro.workloads import get

_PROGRAM_CACHE: Dict[Tuple[str, str, str], CompiledProgram] = {}


def compiled(workload_name: str, label: str,
             extension_point: str = "VectorizerStart") -> CompiledProgram:
    key = (workload_name, label, extension_point)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        workload = get(workload_name)
        config = config_for(label)
        options = CompileOptions(
            extension_point=extension_point,
            obfuscate_pointer_copies=tuple(workload.obfuscated_units),
        )
        if config is None:
            program = compile_program(workload.sources, options=options)
        else:
            program = compile_program(workload.sources, config, options)
        _PROGRAM_CACHE[key] = program
    return program


def execute(program: CompiledProgram):
    vm = make_vm(program, max_instructions=100_000_000)
    code = vm.run()
    assert code == 0, f"workload exited with {code}"
    return vm.stats


def run_benchmark(benchmark, workload_name: str, label: str,
                  extension_point: str = "VectorizerStart"):
    program = compiled(workload_name, label, extension_point)
    stats = benchmark.pedantic(
        lambda: execute(program), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["checks"] = stats.checks_executed
    benchmark.extra_info["unsafe_percent"] = round(stats.unsafe_percent, 2)
    return stats


@pytest.fixture(scope="session")
def runner():
    """Session-wide experiment engine (cycle-based tables), sharing a
    persistent disk cache across benchmark invocations."""
    cache = None
    if os.environ.get("REPRO_NO_CACHE") != "1":
        cache = ResultCache(os.environ.get("REPRO_CACHE_DIR")
                            or default_cache_dir())
    return Runner(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache=cache,
        verify_cache=os.environ.get("REPRO_VERIFY_CACHE") == "1",
    )


#: Representative subset used by the heavier figures to keep the
#: benchmark suite's total runtime reasonable; the printed tables and
#: EXPERIMENTS.md always cover all 20.
SUBSET = (
    "164gzip", "183equake", "186crafty", "197parser",
    "429mcf", "464h264ref", "470lbm", "482sphinx3",
)

ALL_BENCHMARKS = (
    "164gzip", "177mesa", "179art", "181mcf", "183equake", "186crafty",
    "188ammp", "197parser", "256bzip2", "300twolf", "401bzip2", "429mcf",
    "433milc", "445gobmk", "456hmmer", "458sjeng", "462libquantum",
    "464h264ref", "470lbm", "482sphinx3",
)

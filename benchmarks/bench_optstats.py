"""Section 5.3 bench: static check elimination (dominance + ranges)."""

import pytest

from conftest import run_benchmark

PAIRED = ("256bzip2", "197parser", "183equake", "177mesa")


@pytest.mark.parametrize("name", PAIRED)
@pytest.mark.parametrize("label",
                         ["softbound", "softbound-unopt", "softbound-ranges"])
def test_opt_vs_unopt(benchmark, name, label):
    benchmark.group = f"optstats:{name}"
    run_benchmark(benchmark, name, label)


def test_print_optstats(benchmark, runner, capsys):
    from repro.experiments import optstats
    from repro.workloads import all_workloads

    table = benchmark.pedantic(lambda: optstats.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    # shape: a significant static fraction of checks is removed, and
    # the runtime gain is minor (the compiler removes duplicates too);
    # the range filter then removes strictly more on top
    fractions = []
    range_hits = 0
    for workload in all_workloads():
        result = runner.run(workload, "softbound")
        fractions.append(result.static.filtered_fraction)
        unopt = runner.overhead(workload, "softbound-unopt")
        opt = runner.overhead(workload, "softbound")
        assert opt <= unopt + 1e-9
        assert unopt - opt < 0.25          # minor runtime impact
        ranged = runner.run(workload, "softbound-ranges")
        if ranged.static.range_filtered_checks:
            range_hits += 1
        assert ranged.checks_executed <= result.checks_executed
    assert max(fractions) > 0.2            # up to tens of percent removed
    assert range_hits >= 10                # ranges bite on most workloads

"""Section 5.3 bench: dominance check elimination (static + runtime)."""

import pytest

from conftest import run_benchmark

PAIRED = ("256bzip2", "197parser", "183equake", "177mesa")


@pytest.mark.parametrize("name", PAIRED)
@pytest.mark.parametrize("label", ["softbound", "softbound-unopt"])
def test_opt_vs_unopt(benchmark, name, label):
    benchmark.group = f"optstats:{name}"
    run_benchmark(benchmark, name, label)


def test_print_optstats(benchmark, runner, capsys):
    from repro.experiments import optstats
    from repro.workloads import all_workloads

    table = benchmark.pedantic(lambda: optstats.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    # shape: a significant static fraction of checks is removed, and
    # the runtime gain is minor (the compiler removes duplicates too)
    fractions = []
    for workload in all_workloads():
        result = runner.run(workload, "softbound")
        fractions.append(result.static.filtered_fraction)
        unopt = runner.overhead(workload, "softbound-unopt")
        opt = runner.overhead(workload, "softbound")
        assert opt <= unopt + 1e-9
        assert unopt - opt < 0.25          # minor runtime impact
    assert max(fractions) > 0.2            # up to tens of percent removed

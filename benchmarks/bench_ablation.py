"""Ablation bench: configuration trade-offs (Sections 4.3-4.6, 5.1.2).

Times the configurations the ablation study compares and prints the
full trade-off tables.
"""

import pytest

from repro.core import InstrumentationConfig
from repro.driver import CompileOptions, compile_program, run_program
from repro.workloads import get

from conftest import run_benchmark


@pytest.mark.parametrize("name", ["464h264ref", "300twolf"])
@pytest.mark.parametrize("wrapper_checks", [False, True],
                         ids=["wrapper-checks-off", "wrapper-checks-on"])
def test_wrapper_check_cost(benchmark, name, wrapper_checks):
    benchmark.group = f"ablation:{name}"
    workload = get(name)
    config = InstrumentationConfig.softbound(
        opt_dominance=True, sb_wrapper_checks=wrapper_checks
    )
    options = CompileOptions(
        obfuscate_pointer_copies=tuple(workload.obfuscated_units)
    )
    program = compile_program(workload.sources, config, options)

    def execute():
        result = run_program(program, max_instructions=100_000_000)
        assert result.ok, result.describe()
        return result.stats

    stats = benchmark.pedantic(execute, rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = stats.cycles


@pytest.mark.parametrize("capacity", [None, 4096],
                         ids=["full-regions", "tiny-regions"])
def test_lowfat_region_capacity(benchmark, capacity):
    benchmark.group = "ablation:lf-region-capacity"
    workload = get("197parser")
    program = compile_program(
        workload.sources, InstrumentationConfig.lowfat(),
        CompileOptions(
            obfuscate_pointer_copies=tuple(workload.obfuscated_units)
        ),
    )

    def execute():
        result = run_program(program, max_instructions=100_000_000,
                             lf_region_capacity=capacity)
        assert result.ok, result.describe()
        return result.stats

    stats = benchmark.pedantic(execute, rounds=1, iterations=1)
    benchmark.extra_info["unsafe_percent"] = round(stats.unsafe_percent, 2)
    benchmark.extra_info["fallbacks"] = stats.lowfat_fallback_allocs


def test_print_ablations(benchmark, capsys):
    from repro.experiments import ablation

    table = benchmark.pedantic(ablation.generate, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)

"""Wall-clock engine benchmark: the three VM execution tiers.

Times the selected VM execution engines (reference tree-walker,
closure-compiled tier, generated-source codegen tier) on the bundled
workloads, verifies the runs are bit-identical (output and full
``RuntimeStats``) while it is at it, and writes the results to
``BENCH_vm.json`` at the repo root -- the repo's performance
trajectory.  Future PRs regress-check against the recorded geomeans.

Usage::

    PYTHONPATH=src python benchmarks/bench_vm_speed.py
    PYTHONPATH=src python benchmarks/bench_vm_speed.py \
        --engines interp,compiled,codegen \
        --workloads 164gzip,183equake,456hmmer \
        --min-speedup 2 --min-codegen-vs-compiled 1.5

Exit status is non-zero when any engine pair diverges, the
compiled-vs-interp geomean falls below ``--min-speedup``, or the
codegen-vs-compiled geomean falls below ``--min-codegen-vs-compiled``
(CI's perf-smoke gates).

Timing methodology: each engine is timed as min-of-N fresh VM runs over
a once-compiled program (compilation excluded).  The fast tiers get
more repeats than the tree-walker because their runs are cheap and the
minimum filters scheduler noise; the tree-walker is the expensive
denominator, and the geomean across workloads averages its noise out.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.driver import CompileOptions, compile_program, run_program  # noqa: E402
from repro.experiments.common import config_for  # noqa: E402
from repro.vm.engines import ENGINES  # noqa: E402
from repro.workloads import all_names, get  # noqa: E402

MAX_INSTRUCTIONS = 100_000_000

#: Three-engine default: the full tier ladder, slowest first.
DEFAULT_ENGINES = "interp,compiled,codegen"


def _compile(workload, label):
    config = config_for(label)
    options = CompileOptions(
        obfuscate_pointer_copies=tuple(workload.obfuscated_units)
    )
    if config is None:
        return compile_program(workload.sources, options=options)
    return compile_program(workload.sources, config, options)


def _time_engine(program, engine, repeats):
    """(best wall-clock seconds, last RunResult) over ``repeats`` runs."""
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_program(program, max_instructions=MAX_INSTRUCTIONS,
                             engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, result


def _identical(a, b):
    """Field-for-field equality of two RunResults (the differential)."""
    if a.output != b.output or a.exit_code != b.exit_code:
        return False
    if a.describe() != b.describe():
        return False
    return dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)


def _geomean(values):
    values = list(values)
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=None, metavar="NAME[,NAME...]",
                        help="comma-separated subset (default: all 20)")
    parser.add_argument("--labels", default="baseline",
                        metavar="LABEL[,LABEL...]",
                        help="instrumentation configs to time "
                             "(default: baseline, the pure engine measure)")
    parser.add_argument("--engines", default=DEFAULT_ENGINES,
                        metavar="ENGINE[,ENGINE...]",
                        help="VM engines to time, slowest-first "
                             f"(default: {DEFAULT_ENGINES}); the first "
                             "is the identity reference")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_vm.json"),
                        metavar="FILE", help="result file (default: "
                        "BENCH_vm.json at the repo root)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repeats for the fast tiers "
                             "(min-of-N; default 3)")
    parser.add_argument("--interp-repeats", type=int, default=1, metavar="N",
                        help="timing repeats for the tree-walker (default 1)")
    parser.add_argument("--min-speedup", type=float, default=None, metavar="X",
                        help="fail (exit 1) if the compiled-vs-interp "
                             "geomean speedup is below X")
    parser.add_argument("--min-codegen-vs-compiled", type=float, default=None,
                        metavar="X",
                        help="fail (exit 1) if the codegen-vs-compiled "
                             "geomean speedup is below X")
    args = parser.parse_args(argv)

    known = list(all_names())
    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else known)
    unknown = [n for n in names if n not in known]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    labels = [l.strip() for l in args.labels.split(",") if l.strip()]
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    bad = [e for e in engines if e not in ENGINES]
    if bad:
        parser.error(f"unknown engine(s): {', '.join(bad)} "
                     f"(known: {', '.join(ENGINES)})")
    if len(engines) < 2:
        parser.error("need at least two engines to compare")

    rows = []
    mismatches = 0
    for name in names:
        workload = get(name)
        for label in labels:
            program = _compile(workload, label)
            times = {}
            results = {}
            for engine in engines:
                repeats = (args.interp_repeats if engine == "interp"
                           else args.repeats)
                times[engine], results[engine] = _time_engine(
                    program, engine, repeats)
            reference = engines[0]
            same = all(_identical(results[reference], results[e])
                       for e in engines[1:])
            if not same:
                mismatches += 1
            row = {"workload": name, "label": label, "identical": same}
            for engine in engines:
                row[f"{engine}_s"] = round(times[engine], 4)
            # Pairwise speedups vs. the slowest-first reference plus the
            # tier-over-tier step, matching the geomeans below.
            for engine in engines[1:]:
                row[f"speedup_{engine}_vs_{reference}"] = round(
                    times[reference] / times[engine], 2
                ) if times[engine] else math.inf
            if "compiled" in times and "codegen" in times:
                row["speedup_codegen_vs_compiled"] = round(
                    times["compiled"] / times["codegen"], 2
                ) if times["codegen"] else math.inf
            rows.append(row)
            flag = "" if same else "  << STATS MISMATCH"
            cells = " ".join(f"{e}={times[e]:7.2f}s" for e in engines)
            print(f"{name:12s} {label:10s} {cells}{flag}", flush=True)

    geomeans = {}
    reference = engines[0]
    for engine in engines[1:]:
        key = f"speedup_{engine}_vs_{reference}"
        geomeans[f"{engine}_vs_{reference}"] = round(
            _geomean(r[key] for r in rows if key in r), 2)
    if "compiled" in engines and "codegen" in engines:
        geomeans["codegen_vs_compiled"] = round(
            _geomean(r["speedup_codegen_vs_compiled"] for r in rows), 2)
    for pair, value in geomeans.items():
        print(f"{'GEOMEAN':12s} {pair:28s} {value:5.2f}x")

    document = {
        "benchmark": "vm-engine-speedup",
        "description": "VM execution tiers (tree-walker / closure tier / "
                       "codegen tier), min-of-N wall-clock per fresh VM run",
        "max_instructions": MAX_INSTRUCTIONS,
        "engines": engines,
        "repeats": {e: (args.interp_repeats if e == "interp"
                        else args.repeats) for e in engines},
        "python": sys.version.split()[0],
        "results": rows,
        "geomeans": geomeans,
    }
    # Back-compat top-level field: the PR-3 trajectory point is the
    # compiled-vs-interp geomean; keep the key meaning stable.
    if "compiled_vs_interp" in geomeans:
        document["geomean_speedup"] = geomeans["compiled_vs_interp"]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"written to {args.output}")

    if mismatches:
        print(f"error: {mismatches} run set(s) diverged between engines",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        got = geomeans.get("compiled_vs_interp")
        if got is None or got < args.min_speedup:
            print(f"error: compiled-vs-interp geomean {got} is below the "
                  f"required {args.min_speedup:g}x", file=sys.stderr)
            return 1
    if args.min_codegen_vs_compiled is not None:
        got = geomeans.get("codegen_vs_compiled")
        if got is None or got < args.min_codegen_vs_compiled:
            print(f"error: codegen-vs-compiled geomean {got} is below the "
                  f"required {args.min_codegen_vs_compiled:g}x",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Wall-clock engine benchmark: closure-compiled tier vs. tree-walker.

Times both VM execution engines on the bundled workloads, verifies the
runs are bit-identical (output and full ``RuntimeStats``) while it is
at it, and writes the results to ``BENCH_vm.json`` at the repo root --
the seed of the repo's performance trajectory.  Future PRs regress-
check against the recorded geomean.

Usage::

    PYTHONPATH=src python benchmarks/bench_vm_speed.py
    PYTHONPATH=src python benchmarks/bench_vm_speed.py \
        --workloads 164gzip,183equake,456hmmer --min-speedup 2

Exit status is non-zero when any run pair diverges or the geomean
speedup falls below ``--min-speedup`` (CI's perf-smoke gate).

Timing methodology: each engine is timed as min-of-N fresh VM runs over
a once-compiled program (compilation excluded).  The compiled tier gets
more repeats than the tree-walker because its runs are cheap and the
minimum filters scheduler noise; the tree-walker is the expensive
denominator, and the geomean across workloads averages its noise out.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.driver import CompileOptions, compile_program, run_program  # noqa: E402
from repro.experiments.common import config_for  # noqa: E402
from repro.workloads import all_names, get  # noqa: E402

MAX_INSTRUCTIONS = 100_000_000


def _compile(workload, label):
    config = config_for(label)
    options = CompileOptions(
        obfuscate_pointer_copies=tuple(workload.obfuscated_units)
    )
    if config is None:
        return compile_program(workload.sources, options=options)
    return compile_program(workload.sources, config, options)


def _time_engine(program, engine, repeats):
    """(best wall-clock seconds, last RunResult) over ``repeats`` runs."""
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run_program(program, max_instructions=MAX_INSTRUCTIONS,
                             engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, result


def _identical(a, b):
    """Field-for-field equality of two RunResults (the differential)."""
    if a.output != b.output or a.exit_code != b.exit_code:
        return False
    if a.describe() != b.describe():
        return False
    return dataclasses.asdict(a.stats) == dataclasses.asdict(b.stats)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", default=None, metavar="NAME[,NAME...]",
                        help="comma-separated subset (default: all 20)")
    parser.add_argument("--labels", default="baseline",
                        metavar="LABEL[,LABEL...]",
                        help="instrumentation configs to time "
                             "(default: baseline, the pure engine measure)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_vm.json"),
                        metavar="FILE", help="result file (default: "
                        "BENCH_vm.json at the repo root)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timing repeats for the compiled tier "
                             "(min-of-N; default 3)")
    parser.add_argument("--interp-repeats", type=int, default=1, metavar="N",
                        help="timing repeats for the tree-walker (default 1)")
    parser.add_argument("--min-speedup", type=float, default=None, metavar="X",
                        help="fail (exit 1) if the geomean speedup is below X")
    args = parser.parse_args(argv)

    known = list(all_names())
    names = ([n.strip() for n in args.workloads.split(",") if n.strip()]
             if args.workloads else known)
    unknown = [n for n in names if n not in known]
    if unknown:
        parser.error(f"unknown workload(s): {', '.join(unknown)}")
    labels = [l.strip() for l in args.labels.split(",") if l.strip()]

    rows = []
    mismatches = 0
    for name in names:
        workload = get(name)
        for label in labels:
            program = _compile(workload, label)
            t_interp, r_interp = _time_engine(
                program, "interp", args.interp_repeats)
            t_compiled, r_compiled = _time_engine(
                program, "compiled", args.repeats)
            same = _identical(r_interp, r_compiled)
            if not same:
                mismatches += 1
            speedup = t_interp / t_compiled if t_compiled else math.inf
            rows.append({
                "workload": name,
                "label": label,
                "interp_s": round(t_interp, 4),
                "compiled_s": round(t_compiled, 4),
                "speedup": round(speedup, 2),
                "identical": same,
            })
            flag = "" if same else "  << STATS MISMATCH"
            print(f"{name:12s} {label:10s} interp={t_interp:7.2f}s "
                  f"compiled={t_compiled:6.2f}s speedup={speedup:5.2f}x{flag}",
                  flush=True)

    geomean = math.exp(sum(math.log(r["speedup"]) for r in rows) / len(rows))
    print(f"{'GEOMEAN':12s} {'':10s} {'':>15s} {'':>15s} "
          f"speedup={geomean:5.2f}x")

    document = {
        "benchmark": "vm-engine-speedup",
        "description": "closure-compiled tier vs. reference tree-walker, "
                       "min-of-N wall-clock per fresh VM run",
        "max_instructions": MAX_INSTRUCTIONS,
        "repeats": {"compiled": args.repeats, "interp": args.interp_repeats},
        "python": sys.version.split()[0],
        "results": rows,
        "geomean_speedup": round(geomean, 2),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"written to {args.output}")

    if mismatches:
        print(f"error: {mismatches} run pair(s) diverged between engines",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and geomean < args.min_speedup:
        print(f"error: geomean speedup {geomean:.2f}x is below the "
              f"required {args.min_speedup:g}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 2 bench: unsafe (wide-bounds) dereference percentages.

The timing entries run the workloads whose characteristics drive the
table (size-less extern arrays, the >1 GiB allocation); the summary
prints the full 20-benchmark table and asserts the paper's headline
shapes.
"""

import pytest

from conftest import run_benchmark

DRIVERS = ("164gzip", "429mcf", "433milc", "197parser", "300twolf")


@pytest.mark.parametrize("name", DRIVERS)
@pytest.mark.parametrize("label", ["softbound", "lowfat"])
def test_table2_driver(benchmark, name, label):
    benchmark.group = f"table2:{name}"
    run_benchmark(benchmark, name, label)


def test_print_table2(benchmark, runner, capsys):
    from repro.experiments import table2
    from repro.workloads import get

    table = benchmark.pedantic(lambda: table2.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    # headline shapes (paper Section 4.6)
    gzip_sb = runner.run(get("164gzip"), "softbound")
    assert gzip_sb.unsafe_percent > 40.0
    mcf_lf = runner.run(get("429mcf"), "lowfat")
    assert mcf_lf.unsafe_percent > 35.0
    milc_sb = runner.run(get("433milc"), "softbound")
    assert milc_sb.checks_wide == 0

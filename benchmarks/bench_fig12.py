"""Figure 12 bench: SoftBound at the three pipeline extension points."""

import pytest

from repro.opt.pipeline import EXTENSION_POINTS

from conftest import SUBSET, run_benchmark


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("ep", EXTENSION_POINTS)
def test_softbound_extension_point(benchmark, name, ep):
    benchmark.group = f"fig12:{name}"
    run_benchmark(benchmark, name, "softbound", extension_point=ep)


def test_print_figure12(benchmark, runner, capsys):
    from repro.experiments import fig12_13
    from repro.experiments.common import geomean
    from repro.workloads import all_workloads

    table = benchmark.pedantic(lambda: fig12_13.generate_fig12(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    # shape: early instrumentation is clearly slower on average
    early = geomean(
        runner.overhead(w, "softbound", "ModuleOptimizerEarly")
        for w in all_workloads()
    )
    late = geomean(
        runner.overhead(w, "softbound", "VectorizerStart")
        for w in all_workloads()
    )
    assert early > late * 1.08

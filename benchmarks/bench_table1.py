"""Table 1 bench: static instrumentation-target counts per task.

Times the *instrumentation pass itself* (gather + filter + lower) per
workload, and prints the quantitative Table 1 counterpart.
"""

import pytest

from repro.core import InstrumentationConfig, MemInstrumentPass
from repro.driver import CompileOptions
from repro.frontend import compile_source
from repro.ir import Module
from repro.opt import build_pipeline
from repro.workloads import get

from conftest import SUBSET


def _prepared_module(name):
    workload = get(name)
    modules = []
    for unit_name, source in workload.sources.items():
        mod = compile_source(source, unit_name)
        build_pipeline(3).run(mod)
        modules.append(mod)
    return modules


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("approach", ["softbound", "lowfat"])
def test_instrumentation_pass_speed(benchmark, name, approach):
    benchmark.group = f"table1:{name}"
    config = (InstrumentationConfig.softbound() if approach == "softbound"
              else InstrumentationConfig.lowfat())

    def instrument_fresh():
        total = 0
        for mod in _prepared_module(name):
            pass_ = MemInstrumentPass(config)
            pass_.run(mod)
            total += pass_.statistics.gathered_checks
        return total

    checks = benchmark.pedantic(instrument_fresh, rounds=1, iterations=1)
    benchmark.extra_info["gathered_checks"] = checks


def test_print_table1(benchmark, runner, capsys):
    from repro.experiments import table1

    table = benchmark.pedantic(lambda: table1.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)

"""Figure 11 bench: Low-Fat optimized / unoptimized / metadata-only."""

import pytest

from conftest import SUBSET, run_benchmark


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("label", ["lowfat", "lowfat-unopt", "lowfat-meta"])
def test_lowfat_config(benchmark, name, label):
    benchmark.group = f"fig11:{name}"
    run_benchmark(benchmark, name, label)


def test_print_figure11(benchmark, runner, capsys):
    from repro.experiments import fig11
    from repro.workloads import get

    table = benchmark.pedantic(lambda: fig11.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    # shape: the metadata config carries Low-Fat's escape checks
    parser = runner.run(get("197parser"), "lowfat-meta")
    assert parser.invariant_checks > 0
    assert parser.checks_executed == 0

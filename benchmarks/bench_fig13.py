"""Figure 13 bench: Low-Fat Pointers at the three extension points."""

import pytest

from repro.opt.pipeline import EXTENSION_POINTS

from conftest import SUBSET, run_benchmark


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize("ep", EXTENSION_POINTS)
def test_lowfat_extension_point(benchmark, name, ep):
    benchmark.group = f"fig13:{name}"
    run_benchmark(benchmark, name, "lowfat", extension_point=ep)


def test_print_figure13(benchmark, runner, capsys):
    from repro.experiments import fig12_13
    from repro.experiments.common import geomean
    from repro.workloads import all_workloads

    table = benchmark.pedantic(lambda: fig12_13.generate_fig13(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    early = geomean(
        runner.overhead(w, "lowfat", "ModuleOptimizerEarly")
        for w in all_workloads()
    )
    late = geomean(
        runner.overhead(w, "lowfat", "VectorizerStart")
        for w in all_workloads()
    )
    assert early > late * 1.05

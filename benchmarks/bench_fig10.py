"""Figure 10 bench: SoftBound optimized / unoptimized / metadata-only."""

import pytest

from conftest import SUBSET, run_benchmark


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.parametrize(
    "label", ["softbound", "softbound-unopt", "softbound-meta"]
)
def test_softbound_config(benchmark, name, label):
    benchmark.group = f"fig10:{name}"
    run_benchmark(benchmark, name, label)


def test_print_figure10(benchmark, runner, capsys):
    from repro.experiments import fig10
    from repro.workloads import get

    table = benchmark.pedantic(lambda: fig10.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
    # shape: metadata propagation dominates the trie-heavy benchmarks
    parser_meta = runner.overhead(get("197parser"), "softbound-meta")
    parser_full = runner.overhead(get("197parser"), "softbound")
    assert parser_meta - 1.0 > 0.5 * (parser_full - 1.0)
    # shape: equake's metadata-only cost is deceptively low (DCE'd)
    equake_meta = runner.overhead(get("183equake"), "softbound-meta")
    assert equake_meta < 1.15

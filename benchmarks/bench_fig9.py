"""Figure 9 bench: SoftBound vs Low-Fat execution time on every
benchmark, normalized to the uninstrumented -O3 build.

``pytest benchmarks/bench_fig9.py --benchmark-only`` times all 20
workloads under baseline / SoftBound / Low-Fat; the summary entry
prints the paper-style overhead table from the deterministic cycle
counts.
"""

import pytest

from conftest import ALL_BENCHMARKS, run_benchmark


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_baseline(benchmark, name):
    benchmark.group = f"fig9:{name}"
    run_benchmark(benchmark, name, "baseline")


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_softbound(benchmark, name):
    benchmark.group = f"fig9:{name}"
    run_benchmark(benchmark, name, "softbound")


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_lowfat(benchmark, name):
    benchmark.group = f"fig9:{name}"
    run_benchmark(benchmark, name, "lowfat")


def test_print_figure9(benchmark, runner, capsys):
    from repro.experiments import fig9

    table = benchmark.pedantic(lambda: fig9.generate(runner),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)

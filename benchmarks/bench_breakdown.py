"""Section 5.4 bench: overhead attribution (checks vs metadata)."""

import pytest

from conftest import run_benchmark

ATTRIBUTION_SET = ("183equake", "197parser", "464h264ref", "186crafty")


@pytest.mark.parametrize("name", ATTRIBUTION_SET)
@pytest.mark.parametrize("label", ["softbound", "lowfat"])
def test_attribution_driver(benchmark, name, label):
    benchmark.group = f"breakdown:{name}"
    stats = run_benchmark(benchmark, name, label)
    benchmark.extra_info["trie_loads"] = stats.trie_loads
    benchmark.extra_info["trie_stores"] = stats.trie_stores
    benchmark.extra_info["shadow_stack_ops"] = stats.shadow_stack_ops
    benchmark.extra_info["invariant_checks"] = stats.invariant_checks


def test_print_breakdown(benchmark, capsys):
    from repro.experiments import breakdown

    table = benchmark.pedantic(breakdown.generate, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)

"""End-to-end driver: the public API of the reproduction.

Reproduces the paper's technical setup (Figure 8):

* each MiniC translation unit is compiled separately;
* the MemInstrument pass is plugged into the per-unit optimization
  pipeline at a chosen *extension point*;
* the units are linked, followed by link-time optimization;
* the program runs on the deterministic VM with the runtime library
  of the chosen approach installed.

Typical use::

    from repro import CompileOptions, compile_program, run_program
    from repro.core import InstrumentationConfig

    program = compile_program({"main.c": source},
                              InstrumentationConfig.lowfat())
    result = run_program(program)
    print(result.stats.cycles, result.violation)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .core.config import InstrumentationConfig
from .core.instrument import InstrumenterHandle, make_instrumenter
from .core.itarget import CheckSiteInfo, TargetStatistics
from .core.mechanism import install_runtime
from .errors import MemoryFault, MemSafetyViolation, ProgramAbort, VMError
from .frontend.codegen import compile_source
from .ir.module import Module
from .ir.verifier import verify_module
from .opt.dce import DCE
from .opt.gvn import GVN
from .opt.inline import Inliner
from .opt.instcombine import InstCombine
from .opt.pass_manager import PassManager
from .opt.pipeline import build_pipeline
from .opt.simplifycfg import SimplifyCFG
from .vm.interpreter import VirtualMachine
from .vm.stats import RuntimeStats

NOOP = InstrumentationConfig(approach="noop")


@dataclass
class CompileOptions:
    opt_level: int = 3
    extension_point: str = "VectorizerStart"
    #: True/False applies to all units; a collection of unit names
    #: obfuscates only those units (models mixing compiler versions,
    #: paper Figure 7).
    obfuscate_pointer_copies: Union[bool, Sequence[str]] = False
    link_time_optimization: bool = True
    verify: bool = False
    #: Compute per-site static safety verdicts even when no
    #: range-based filter is enabled (used by ``repro profile``).
    collect_verdicts: bool = False

    def obfuscates(self, unit_name: str) -> bool:
        if isinstance(self.obfuscate_pointer_copies, bool):
            return self.obfuscate_pointer_copies
        return unit_name in self.obfuscate_pointer_copies


@dataclass
class CompiledProgram:
    module: Module
    config: InstrumentationConfig
    options: CompileOptions
    instrumentation: TargetStatistics = field(default_factory=TargetStatistics)
    per_function: Dict[str, TargetStatistics] = field(default_factory=dict)
    #: site id -> static provenance of the emitted checks, for the
    #: ``repro profile`` join against RuntimeStats.per_site.
    check_sites: Dict[str, CheckSiteInfo] = field(default_factory=dict)
    #: site id -> static safety verdict over the gathered checks
    #: ("proven-safe" / "proven-violating" / "unknown"); populated when
    #: the range analysis runs (``-mi-opt-ranges`` / ``-mi-opt-hoist``).
    check_verdicts: Dict[str, str] = field(default_factory=dict)


@dataclass
class RunResult:
    exit_code: Optional[int]
    output: List[str]
    stats: RuntimeStats
    violation: Optional[MemSafetyViolation] = None
    fault: Optional[MemoryFault] = None
    abort: Optional[ProgramAbort] = None

    @property
    def ok(self) -> bool:
        return (
            self.violation is None and self.fault is None and self.abort is None
        )

    def describe(self) -> str:
        if self.violation is not None:
            return f"violation: {self.violation}"
        if self.fault is not None:
            return f"fault: {self.fault}"
        if self.abort is not None:
            return f"abort: {self.abort}"
        return f"exit {self.exit_code}"


def compile_program(
    sources: Union[str, Dict[str, str], Sequence[str]],
    config: InstrumentationConfig = NOOP,
    options: Optional[CompileOptions] = None,
) -> CompiledProgram:
    """Compile (and instrument) one or more MiniC translation units.

    ``sources`` may be a single source string, a sequence of source
    strings, or a mapping of unit name to source.  Units are compiled
    and instrumented *separately* (the paper's separate-compilation
    setting, which is what makes size-less extern arrays problematic
    for SoftBound), then linked.
    """
    options = options or CompileOptions()
    if isinstance(sources, str):
        named = {"tu0": sources}
    elif isinstance(sources, dict):
        named = dict(sources)
    else:
        named = {f"tu{i}": src for i, src in enumerate(sources)}

    program = CompiledProgram(Module("empty"), config, options)
    units: List[Module] = []
    for name, source in named.items():
        module = compile_source(
            source, name, obfuscate_pointer_copies=options.obfuscates(name)
        )
        if options.verify:
            verify_module(module)
        instrumenter: Optional[InstrumenterHandle] = None
        if config.approach != "noop":
            instrumenter = make_instrumenter(
                config, verify=options.verify,
                collect_verdicts=options.collect_verdicts)
        pipeline = build_pipeline(
            opt_level=options.opt_level,
            instrument=instrumenter,
            extension_point=options.extension_point,
            verify_each=options.verify,
        )
        pipeline.run(module)
        if instrumenter is not None:
            program.instrumentation.merge(instrumenter.statistics)
            for fname, stats in instrumenter.per_function.items():
                program.per_function[f"{name}:{fname}"] = stats
            program.check_sites.update(instrumenter.check_sites)
            program.check_verdicts.update(instrumenter.check_verdicts)
        units.append(module)

    linked = Module.link(units, "linked") if len(units) > 1 else units[0]
    if options.link_time_optimization:
        lto = PassManager(
            [Inliner(), InstCombine(), GVN(), DCE(), SimplifyCFG()],
            verify_each=options.verify,
        )
        lto.run(linked)
    if options.verify:
        verify_module(linked)
    program.module = linked
    return program


def make_vm(
    program: CompiledProgram,
    max_instructions: Optional[int] = 500_000_000,
    lf_region_capacity: Optional[int] = None,
    engine: str = "compiled",
    profile: bool = False,
    dump_codegen: Optional[str] = None,
) -> VirtualMachine:
    """Create a VM with the runtime matching the program's config."""
    vm = VirtualMachine(
        program.module, max_instructions=max_instructions, engine=engine,
        profile=profile,
    )
    if dump_codegen is not None:
        vm.codegen_dump_dir = dump_codegen
    # The registry knows which runtime (if any) the approach's
    # instrumented code calls into.
    install_runtime(vm, program.config, lf_region_capacity=lf_region_capacity)
    return vm


def run_program(
    program: CompiledProgram,
    entry: str = "main",
    max_instructions: Optional[int] = 500_000_000,
    lf_region_capacity: Optional[int] = None,
    engine: str = "compiled",
    profile: bool = False,
    dump_codegen: Optional[str] = None,
) -> RunResult:
    """Run a compiled program, capturing safety reports and faults."""
    vm = make_vm(
        program, max_instructions, lf_region_capacity, engine=engine,
        profile=profile, dump_codegen=dump_codegen,
    )
    result = RunResult(None, vm.output, vm.stats)
    try:
        result.exit_code = vm.run(entry)
    except MemSafetyViolation as violation:
        result.violation = violation
    except MemoryFault as fault:
        result.fault = fault
    except ProgramAbort as abort:
        result.abort = abort
    return result


def compile_and_run(
    sources: Union[str, Dict[str, str], Sequence[str]],
    config: InstrumentationConfig = NOOP,
    options: Optional[CompileOptions] = None,
    **run_kwargs,
) -> RunResult:
    """Convenience: compile, instrument, link, and run in one call."""
    return run_program(compile_program(sources, config, options), **run_kwargs)

"""SoftBound's shadow stack.

Propagates (base, bound) metadata across function calls (Nagarakatte's
dissertation, Section 3.2 of the paper): before a call, the caller
pushes a frame with one slot per pointer argument; the callee reads its
argument bounds from the frame; pointer return values travel through a
dedicated return slot.

The shadow stack is modelled as what it really is -- raw memory that is
never cleared:

* Slots of a fresh frame alias whatever an earlier, deeper frame left
  there, so a callee that reads bounds its caller never pushed (an
  *uninstrumented* caller) gets **stale garbage**, not an error.
* The return slot keeps its previous content when a callee does not
  write it, which is exactly how calls into uninstrumented libraries
  produce outdated bounds (paper Section 4.3).
"""

from __future__ import annotations

from typing import List, Tuple

#: Wide bounds: base 0, bound 2^64-1 -- every access passes the check.
WIDE_BASE = 0
WIDE_BOUND = (1 << 64) - 1


class ShadowStack:
    def __init__(self) -> None:
        # Raw slot memory; grows but is never cleared (stale reads are
        # a feature of the model).
        self._slots: List[Tuple[int, int]] = []
        self._frame_starts: List[int] = []
        self._sp = 0
        self.ret_base = WIDE_BASE
        self.ret_bound = WIDE_BOUND
        self.ops = 0

    @property
    def depth(self) -> int:
        return len(self._frame_starts)

    def enter(self, nslots: int) -> None:
        """Push a frame with ``nslots`` argument slots (not cleared)."""
        self.ops += 1
        self._frame_starts.append(self._sp)
        self._sp += nslots
        while len(self._slots) < self._sp:
            self._slots.append((WIDE_BASE, WIDE_BOUND))

    def exit(self) -> None:
        self.ops += 1
        if self._frame_starts:
            self._sp = self._frame_starts.pop()

    def set_slot(self, index: int, base: int, bound: int) -> None:
        self.ops += 1
        if not self._frame_starts:
            return
        slot = self._frame_starts[-1] + index
        if slot < len(self._slots):
            self._slots[slot] = (base, bound)

    def get_slot(self, index: int) -> Tuple[int, int]:
        """Read an argument slot.  Without a frame (e.g. ``main``), or
        out of range, wide bounds are returned."""
        self.ops += 1
        if not self._frame_starts:
            return (WIDE_BASE, WIDE_BOUND)
        slot = self._frame_starts[-1] + index
        if slot >= len(self._slots):
            return (WIDE_BASE, WIDE_BOUND)
        return self._slots[slot]

    def set_ret(self, base: int, bound: int) -> None:
        self.ops += 1
        self.ret_base = base
        self.ret_bound = bound

    def get_ret(self) -> Tuple[int, int]:
        self.ops += 1
        return (self.ret_base, self.ret_bound)

"""SoftBound: trie metadata, shadow stack, runtime wrappers."""

from .runtime import SoftBoundRuntime, WRAPPED_FUNCTIONS
from .shadow_stack import ShadowStack, WIDE_BASE, WIDE_BOUND
from .trie import MetadataTrie

__all__ = [
    "MetadataTrie",
    "ShadowStack",
    "SoftBoundRuntime",
    "WIDE_BASE",
    "WIDE_BOUND",
    "WRAPPED_FUNCTIONS",
]

"""SoftBound's disjoint metadata store: a two-level trie.

Maps *pointer locations* (the address a pointer value is stored at) to
the (base, bound) metadata of the pointer stored there, following
Nagarakatte et al.'s trie organization: the primary table is indexed by
the high bits of the location, secondary tables by the low bits.

The key property the paper's usability analysis rests on is that the
trie is updated **only** by instrumented pointer-typed stores and the
wrappers' ``copy_metadata``.  Integer-obfuscated pointer stores
(Figure 7) and byte-wise copies (Section 4.5) bypass it, leaving stale
entries behind -- this module faithfully exhibits that behaviour
because it never observes raw memory traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

PRIMARY_SHIFT = 22          # bits covered by a secondary table
SECONDARY_MASK = (1 << PRIMARY_SHIFT) - 1
SLOT_SHIFT = 3              # metadata per 8-byte-aligned slot


class MetadataTrie:
    def __init__(self) -> None:
        self._primary: Dict[int, Dict[int, Tuple[int, int]]] = {}
        self.loads = 0
        self.stores = 0

    @staticmethod
    def _split(location: int) -> Tuple[int, int]:
        slot = location >> SLOT_SHIFT
        return slot >> (PRIMARY_SHIFT - SLOT_SHIFT), slot & (
            (1 << (PRIMARY_SHIFT - SLOT_SHIFT)) - 1
        )

    def store(self, location: int, base: int, bound: int) -> None:
        """Record metadata for the pointer stored at ``location``."""
        hi, lo = self._split(location)
        secondary = self._primary.get(hi)
        if secondary is None:
            secondary = {}
            self._primary[hi] = secondary
        secondary[lo] = (base, bound)
        self.stores += 1

    def load(self, location: int) -> Optional[Tuple[int, int]]:
        """Metadata for the pointer stored at ``location``, or None if
        no instrumented store ever wrote this slot."""
        self.loads += 1
        secondary = self._primary.get(self._split(location)[0])
        if secondary is None:
            return None
        return secondary.get(self._split(location)[1])

    def copy_range(self, dest: int, src: int, nbytes: int) -> int:
        """``copy_metadata`` of the memcpy/memmove wrappers (paper
        Figure 6): copy the metadata of every slot in
        [src, src+nbytes) to the corresponding slot of dest.  Returns
        the number of entries copied.

        Two properties must hold for the wrapper to be faithful:

        * **memmove direction** -- when the ranges overlap with
          dest > src, an ascending walk reads slots the copy already
          overwrote, propagating one entry across the whole range;
          the walk must run descending in that case (and ascending
          for dest < src), exactly like ``memmove`` on the bytes.
        * **stale-slot clearing** -- a destination slot whose source
          slot carries no metadata must be *cleared*: the bytes of a
          previously-stored pointer were just overwritten, so leaving
          its old trie entry behind resurrects dangling bounds
          (paper Section 4.5).
        """
        copied = 0
        # Iterate 8-byte slots covered by the range, in memmove order.
        first_slot = src >> SLOT_SHIFT
        last_slot = (src + max(nbytes, 1) - 1) >> SLOT_SHIFT
        slots = range(first_slot, last_slot + 1)
        if dest > src:
            slots = reversed(slots)
        for slot in slots:
            location = slot << SLOT_SHIFT
            entry = self._lookup_quiet(location)
            dest_location = dest + (location - src)
            if entry is not None:
                self.store(dest_location, *entry)
                copied += 1
            else:
                self._clear_quiet(dest_location)
        return copied

    def _clear_quiet(self, location: int) -> None:
        hi, lo = self._split(location)
        secondary = self._primary.get(hi)
        if secondary is not None:
            secondary.pop(lo, None)

    def _lookup_quiet(self, location: int) -> Optional[Tuple[int, int]]:
        secondary = self._primary.get(self._split(location)[0])
        if secondary is None:
            return None
        return secondary.get(self._split(location)[1])

    @property
    def entry_count(self) -> int:
        return sum(len(s) for s in self._primary.values())

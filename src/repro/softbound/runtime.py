"""SoftBound runtime: trie + shadow stack natives and libc wrappers.

The SoftBound mechanism (:mod:`repro.core.sb_mechanism`) lowers its
instrumentation targets into calls to the natives registered here.

Standard-library calls are redirected to *wrapper* natives
(``__sb_wrap_malloc`` etc., paper Figure 6) that

1. perform the underlying libc operation,
2. maintain SoftBound's metadata (e.g. ``memcpy`` copies trie entries
   for all pointer slots in the copied range; ``malloc`` publishes the
   new allocation's bounds in the shadow-stack return slot), and
3. optionally check the operation against the argument bounds from the
   shadow stack (disabled by default for comparability, paper
   Section 5.1.2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..errors import MemSafetyViolation
from ..vm import costs
from ..vm import native as libc
from .shadow_stack import ShadowStack, WIDE_BASE, WIDE_BOUND
from .trie import MetadataTrie

if TYPE_CHECKING:  # pragma: no cover
    from ..vm.interpreter import VirtualMachine

U64 = (1 << 64) - 1
_CHECK_COST = costs.INTRINSIC_COSTS["__sb_check"]

#: libc functions that get wrappers, and how many leading pointer
#: arguments each should be checked against its shadow-stack bounds
#: (argument index -> length argument index or fixed semantics).
WRAPPED_FUNCTIONS = (
    "malloc", "calloc", "realloc", "free",
    "memcpy", "memmove", "memset", "strcpy", "strlen", "strcmp",
)


class SoftBoundRuntime:
    def __init__(
        self,
        missing_metadata_wide: bool = False,
        wrapper_checks: bool = False,
    ):
        """``missing_metadata_wide``: bounds for pointer loads with no
        trie entry (True: wide bounds = silent, False: NULL bounds =
        spurious report on dereference; the paper discusses both).

        ``wrapper_checks``: make libc wrappers check their arguments
        (extra safety; disabled in the paper's runtime comparison)."""
        self.trie = MetadataTrie()
        self.shadow_stack = ShadowStack()
        self.missing_metadata_wide = missing_metadata_wide
        self.wrapper_checks = wrapper_checks
        self.vm: Optional["VirtualMachine"] = None

    # -- installation ----------------------------------------------------
    def install(self, vm: "VirtualMachine") -> None:
        self.vm = vm
        vm.register_native("__sb_trie_load_base", self._trie_load_base)
        vm.register_native("__sb_trie_load_bound", self._trie_load_bound)
        vm.register_native("__sb_trie_store", self._trie_store)
        vm.register_native("__sb_ss_enter", self._ss_enter)
        vm.register_native("__sb_ss_exit", self._ss_exit)
        vm.register_native("__sb_ss_set", self._ss_set)
        vm.register_native("__sb_ss_get_base", self._ss_get_base)
        vm.register_native("__sb_ss_get_bound", self._ss_get_bound)
        vm.register_native("__sb_ss_set_ret", self._ss_set_ret)
        vm.register_native("__sb_ss_get_ret_base", self._ss_get_ret_base)
        vm.register_native("__sb_ss_get_ret_bound", self._ss_get_ret_bound)
        vm.register_native("__sb_check", self._check)
        for name in WRAPPED_FUNCTIONS:
            vm.register_native(f"__sb_wrap_{name}", self._make_wrapper(name))

    # -- trie ----------------------------------------------------------------
    def _bounds_for_load(self, location: int):
        entry = self.trie.load(location)
        self.vm.stats.trie_loads += 1
        if entry is None:
            if self.missing_metadata_wide:
                return (WIDE_BASE, WIDE_BOUND)
            return (0, 0)  # NULL bounds: any dereference reports
        return entry

    def _trie_load_base(self, vm: "VirtualMachine", args: List[int]) -> int:
        return self._bounds_for_load(args[0])[0]

    def _trie_load_bound(self, vm: "VirtualMachine", args: List[int]) -> int:
        return self._bounds_for_load(args[0])[1]

    def _trie_store(self, vm: "VirtualMachine", args: List[int]) -> None:
        location, base, bound = args[0], args[1], args[2]
        self.trie.store(location, base, bound)
        vm.stats.trie_stores += 1

    # -- shadow stack ------------------------------------------------------------
    def _ss_enter(self, vm: "VirtualMachine", args: List[int]) -> None:
        self.shadow_stack.enter(args[0])
        vm.stats.shadow_stack_ops += 1

    def _ss_exit(self, vm: "VirtualMachine", args: List[int]) -> None:
        self.shadow_stack.exit()
        vm.stats.shadow_stack_ops += 1

    def _ss_set(self, vm: "VirtualMachine", args: List[int]) -> None:
        self.shadow_stack.set_slot(args[0], args[1], args[2])
        vm.stats.shadow_stack_ops += 1

    def _ss_get_base(self, vm: "VirtualMachine", args: List[int]) -> int:
        vm.stats.shadow_stack_ops += 1
        return self.shadow_stack.get_slot(args[0])[0]

    def _ss_get_bound(self, vm: "VirtualMachine", args: List[int]) -> int:
        vm.stats.shadow_stack_ops += 1
        return self.shadow_stack.get_slot(args[0])[1]

    def _ss_set_ret(self, vm: "VirtualMachine", args: List[int]) -> None:
        self.shadow_stack.set_ret(args[0], args[1])
        vm.stats.shadow_stack_ops += 1

    def _ss_get_ret_base(self, vm: "VirtualMachine", args: List[int]) -> int:
        vm.stats.shadow_stack_ops += 1
        return self.shadow_stack.get_ret()[0]

    def _ss_get_ret_bound(self, vm: "VirtualMachine", args: List[int]) -> int:
        vm.stats.shadow_stack_ops += 1
        return self.shadow_stack.get_ret()[1]

    # -- the dereference check (paper Figure 2) ------------------------------------
    def _check(self, vm: "VirtualMachine", args: List) -> None:
        ptr, width, base, bound = args[0], args[1], args[2], args[3]
        site = str(args[4]) if len(args) > 4 else None
        wide = bound == WIDE_BOUND
        vm.stats.record_check(str(site), wide=wide, cost=_CHECK_COST)
        if ptr < base or ptr + width > bound:
            raise MemSafetyViolation(
                "deref",
                "SoftBound: access outside [base, bound)"
                + ("" if base or bound else " (NULL bounds: missing or "
                   "stale metadata, cf. paper Sections 4.3-4.5)"),
                pointer=ptr, base=base, bound=bound, site=site,
            )

    def _wrapper_check(self, ptr: int, nbytes: int, slot: int, what: str) -> None:
        if not self.wrapper_checks:
            return
        # Two shadow-stack loads plus the range comparison (Figure 6's
        # check_abort); only charged when the checks are enabled.
        stats = self.vm.stats
        stats.cycles += 8
        if stats.profile:
            stats.instrumentation_cycles += 8
        base, bound = self.shadow_stack.get_slot(slot)
        if bound == WIDE_BOUND:
            return
        if ptr < base or ptr + nbytes > bound:
            raise MemSafetyViolation(
                "wrapper", f"SoftBound wrapper: {what} of {nbytes} bytes "
                f"exceeds the argument's bounds",
                pointer=ptr, base=base, bound=bound,
            )

    # -- libc wrappers (paper Figure 6) ------------------------------------------------
    def _make_wrapper(self, name: str) -> Callable:
        impl = libc.LIBC_IMPLS[name]

        def wrapper(vm: "VirtualMachine", args: List) -> object:
            ss = self.shadow_stack
            stats = vm.stats
            if stats.profile:
                # The wrapper's bookkeeping share of the charged call
                # cost (call_cost = wrapped base + call + overhead).
                stats.instrumentation_cycles += costs.SB_WRAPPER_OVERHEAD
            if name == "malloc":
                result = impl(vm, args)
                ss.set_ret(result, result + args[0])
                return result
            if name == "calloc":
                result = impl(vm, args)
                ss.set_ret(result, result + args[0] * args[1])
                return result
            if name == "realloc":
                old_ptr, new_size = args[0], args[1]
                old_size = 0
                if old_ptr != 0:
                    old_alloc = vm.memory.find(old_ptr)
                    if old_alloc is not None:
                        old_size = old_alloc.size
                result = impl(vm, args)
                migrated = min(old_size, new_size)
                if old_ptr != 0 and result != old_ptr and migrated > 0:
                    # The allocation moved: migrate the trie entries of
                    # every pointer slot the data copy carried over
                    # (Figure 6's copy_metadata applies to realloc just
                    # like memcpy; without it, pointers stored inside
                    # the buffer lose their metadata and the next load
                    # through them sees NULL bounds).
                    copied = self.trie.copy_range(result, old_ptr, migrated)
                    if copied:
                        stats.cycles += 4 * copied
                        stats.trie_stores += copied
                        if stats.profile:
                            stats.instrumentation_cycles += 4 * copied
                ss.set_ret(result, result + new_size)
                return result
            if name == "free":
                return impl(vm, args)
            if name in ("memcpy", "memmove"):
                dest, src, n = args[0], args[1], args[2]
                self._wrapper_check(dest, n, 0, name)
                self._wrapper_check(src, n, 1, name)
                result = impl(vm, args)
                if n > 0:
                    copied = self.trie.copy_range(dest, src, n)
                    # copy_metadata walks the trie per 8-byte slot.
                    stats.cycles += 4 * copied
                    stats.trie_stores += copied
                    if stats.profile and copied:
                        stats.instrumentation_cycles += 4 * copied
                base, bound = ss.get_slot(0)
                ss.set_ret(base, bound)
                return result
            if name == "memset":
                self._wrapper_check(args[0], args[2], 0, name)
                result = impl(vm, args)
                base, bound = ss.get_slot(0)
                ss.set_ret(base, bound)
                return result
            if name == "strcpy":
                if self.wrapper_checks:
                    # strlen(src)+1 bytes are read from src and written
                    # to dest; both ranges must lie inside the argument
                    # bounds, exactly like memcpy's argument checks.
                    n = len(libc._read_cstring(vm, args[1])) + 1
                    self._wrapper_check(args[0], n, 0, name)
                    self._wrapper_check(args[1], n, 1, name)
                result = impl(vm, args)
                base, bound = ss.get_slot(0)
                ss.set_ret(base, bound)
                return result
            # strlen / strcmp: value results, no metadata involved.
            return impl(vm, args)

        return wrapper

"""SPEC CPU2006-named workload kernels (see registry docstring)."""

from __future__ import annotations

from .registry import Workload, register

# ---------------------------------------------------------------------
# 401.bzip2 -- compression (CPU2006 variant): Huffman frequency
# counting + move-to-front.  Clean arrays; fully checked (Table 2: 0*).
# ---------------------------------------------------------------------

_BZIP2_2006_MAIN = r"""
int freq[256];
int mtf[256];

int mtf_find(int *table, int c) {
    int pos = 0;
    while (table[pos] != c) pos = pos + 1;
    return pos;
}

int main() {
    int n = 1200;
    char *data = (char *) malloc(n);
    int seed = 77;
    for (int i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        data[i] = (char)(seed % 23 + 97);
    }
    for (int i = 0; i < 256; i++) { freq[i] = 0; mtf[i] = i; }
    long output = 0;
    for (int i = 0; i < n; i++) {
        int c = data[i] & 255;
        // move-to-front coding
        int pos = mtf_find(mtf, c);
        for (int j = pos; j > 0; j = j - 1) mtf[j] = mtf[j - 1];
        mtf[0] = c;
        freq[pos] = freq[pos] + 1;
        output = output + pos + (mtf[0] & 1);
    }
    long check = output;
    for (int i = 0; i < 256; i++) check += (long)freq[i] * i;
    print_i64(check);
    free((void*)data);
    return 0;
}
"""

register(Workload(
    name="401bzip2",
    sources={"bzip2_2006_main.c": _BZIP2_2006_MAIN},
    description="move-to-front + frequency counting over byte arrays",
    characteristics=(),
))

# ---------------------------------------------------------------------
# 429.mcf -- minimum-cost flow (CPU2006 variant).
# Characteristic (Table 2 / Section 4.6): ONE allocation larger than
# the largest low-fat region class (1 GiB) -> it falls back to the
# standard allocator, and ~54% of Low-Fat's dynamic checks use wide
# bounds.  SoftBound tracks its bounds exactly (0*).
# ---------------------------------------------------------------------

_MCF2006_MAIN = r"""
struct arc2 {
    long cost;
    long flow;
    int tail;
    int head;
};

long price(struct arc2 *a, int *pot) {
    return a->cost + pot[a->tail] - pot[a->head] + (a->cost & 1);
}

int main() {
    // 1 GiB worth of arc records: exceeds the largest low-fat class
    // (the +1 one-past-the-end pad pushes it out of the 2^30 region).
    long huge_bytes = 1073741824;
    long nslots = huge_bytes / sizeof(struct arc2);
    struct arc2 *arcs = (struct arc2 *) malloc(huge_bytes);
    int *potential = (int *) malloc(sizeof(int) * 256);
    for (int i = 0; i < 256; i++) potential[i] = i * 5 % 97;
    int seed = 31;
    int live = 900;
    // Touch arcs spread across the huge allocation (sparse pages).
    long stride = nslots / live;
    for (int a = 0; a < live; a++) {
        long slot = (long)a * stride;
        seed = (seed * 1103515245 + 12345) & 2147483647;
        arcs[slot].cost = seed % 1000;
        arcs[slot].tail = seed % 256;
        arcs[slot].head = (seed >> 8) % 256;
        arcs[slot].flow = 0;
    }
    long objective = 0;
    for (int round = 0; round < 6; round++) {
        for (int a = 0; a < live; a++) {
            long slot = (long)a * stride;
            long reduced = price(&arcs[slot], potential);
            if (reduced < 0) {
                arcs[slot].flow = arcs[slot].flow + 1;
                objective = objective - reduced;
            }
            potential[a & 255] = potential[a & 255] + (int)(reduced & 1);
        }
        for (int i = 0; i < 256; i++)
            potential[i] = potential[i] + (round & 1);
    }
    long check = objective;
    for (int a = 0; a < live; a = a + 7) check += arcs[(long)a * stride].flow;
    print_i64(check);
    free((void*)arcs); free((void*)potential);
    return 0;
}
"""

register(Workload(
    name="429mcf",
    sources={"mcf2006_main.c": _MCF2006_MAIN},
    description="network flow over ONE >1GiB allocation (low-fat fallback)",
    characteristics=("huge_allocation",),
))

# ---------------------------------------------------------------------
# 433.milc -- lattice QCD.
# Characteristic (Table 2): *declares* a size-less extern array but the
# benchmark run never accesses it -> SoftBound still fully checks
# (0.00*), despite the bold "has size-zero declarations" marker.
# ---------------------------------------------------------------------

_MILC_DATA = r"""
double boundary_phases[16];
"""

_MILC_MAIN = r"""
extern double boundary_phases[];   // declared size-less, never used here

double staple_term(double *lnk, double *fld, int fwd) {
    return lnk[0] * fld[fwd] + lnk[0] * 0.125;
}

int main() {
    int nsites = 4 * 4 * 4;
    double *links = (double *) malloc(sizeof(double) * nsites * 4);
    double *field = (double *) malloc(sizeof(double) * nsites);
    double *staple = (double *) malloc(sizeof(double) * nsites);
    for (int s = 0; s < nsites; s++) {
        field[s] = (double)((s * 13) % 31) / 31.0;
        for (int mu = 0; mu < 4; mu++)
            links[s * 4 + mu] = (double)((s + mu * 7) % 11) / 11.0;
    }
    for (int sweep = 0; sweep < 10; sweep++) {
        for (int s = 0; s < nsites; s++) {
            double acc = 0.0;
            for (int mu = 0; mu < 4; mu++) {
                int fwd = (s + (1 << mu)) % nsites;
                acc = acc + staple_term(&links[s * 4 + mu], field, fwd);
            }
            staple[s] = acc * 0.25;
        }
        for (int s = 0; s < nsites; s++)
            field[s] = field[s] * 0.9 + staple[s] * 0.1;
    }
    double check = 0.0;
    for (int s = 0; s < nsites; s++) check = check + field[s];
    print_f64(check);
    free((void*)links); free((void*)field); free((void*)staple);
    return 0;
}
"""

register(Workload(
    name="433milc",
    sources={"milc_data.c": _MILC_DATA, "milc_main.c": _MILC_MAIN},
    description="lattice sweeps; size-less extern declared but never accessed",
    characteristics=("size_zero_arrays",),
))

# ---------------------------------------------------------------------
# 445.gobmk -- Go engine.
# Characteristic: board-pattern code with recursion; a size-less
# extern pattern table is consulted occasionally (Table 2: SB 0.66%).
# ---------------------------------------------------------------------

_GOBMK_DATA = r"""
int pattern_weights[512];
"""

_GOBMK_MAIN = r"""
extern int pattern_weights[];   // size-less extern declaration

int board[361];
int marks[361];

int same_color(int *brd, int pos, int color) {
    if (pos < 0 || pos >= 361) return 0;
    return brd[pos] == color;
}

int flood(int pos, int color, int depth) {
    if (depth > 12) return 0;
    if (same_color(board, pos, color) == 0) return 0;
    if (marks[pos] != 0) return 0;
    marks[pos] = 1;
    int size = 1;
    size = size + flood(pos - 19, color, depth + 1);
    size = size + flood(pos + 19, color, depth + 1);
    if (pos % 19 != 0) size = size + flood(pos - 1, color, depth + 1);
    if (pos % 19 != 18) size = size + flood(pos + 1, color, depth + 1);
    return size;
}

int main() {
    int seed = 17;
    for (int i = 0; i < 361; i++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        board[i] = seed % 3;
    }
    long score = 0;
    for (int move = 0; move < 40; move++) {
        for (int i = 0; i < 361; i++) marks[i] = 0;
        int start = (move * 37) % 361;
        int start_color = board[start];
        int group = flood(start, board[start], 0);
        score = score + group;
        score = score + pattern_weights[(move * group) & 511]
                      + pattern_weights[(move + group) & 511]
                      + pattern_weights[(move * 5 + group) & 511];
        board[(start + move) % 361] = (start_color + 1) % 3;
    }
    print_i64(score);
    return 0;
}
"""

register(Workload(
    name="445gobmk",
    sources={"gobmk_data.c": _GOBMK_DATA, "gobmk_main.c": _GOBMK_MAIN},
    description="Go group flood-fill; rare size-less pattern-table hits",
    characteristics=("size_zero_arrays",),
))

# ---------------------------------------------------------------------
# 456.hmmer -- profile HMM search (Viterbi-style DP).
# Characteristic: tight integer DP loops, fully checked; Table 2 shows
# an unstarred 0.00 -- a tiny number of wide checks exist.  Here: one
# integer-to-pointer cast on a rarely taken path (Section 4.4).
# ---------------------------------------------------------------------

_HMMER_MAIN = r"""
long ptr_stash;

int dp_cell(int *prev, int *mat, int *ins, int k) {
    int from_match = prev[k - 1] + mat[k];
    int from_insert = prev[k] + ins[k] + (mat[k] & 1);
    int v = from_match;
    if (from_insert > v) v = from_insert;
    if (v < 0) v = 0;
    return v;
}

int main() {
    int L = 60;
    int M = 24;
    int *match = (int *) malloc(sizeof(int) * (M + 1));
    int *insert = (int *) malloc(sizeof(int) * (M + 1));
    int *dp_prev = (int *) malloc(sizeof(int) * (M + 1));
    int *dp_cur = (int *) malloc(sizeof(int) * (M + 1));
    for (int k = 0; k <= M; k++) {
        match[k] = (k * 7) % 13 - 6;
        insert[k] = (k * 5) % 11 - 5;
        dp_prev[k] = 0;
    }
    long best = 0;
    // Keep an integer copy of a pointer around: hmmer-era C habit.
    // (Stored in a global so the cast round-trip survives optimization.)
    ptr_stash = (long) dp_prev;
    for (int i = 1; i <= L; i++) {
        dp_cur[0] = 0;
        for (int k = 1; k <= M; k++) {
            int v = dp_cell(dp_prev, match, insert, k);
            dp_cur[k] = v;
            if (v > best) best = v;
        }
        int *tmp = dp_prev; dp_prev = dp_cur; dp_cur = tmp;
        if (i == L) {
            int *back = (int *) ptr_stash; // inttoptr: wide bounds for SB
            best = best + back[0];
        }
    }
    print_i64(best);
    free((void*)match); free((void*)insert);
    free((void*)dp_prev); free((void*)dp_cur);
    return 0;
}
"""

register(Workload(
    name="456hmmer",
    sources={"hmmer_main.c": _HMMER_MAIN},
    description="Viterbi DP bands; one int-to-pointer cast on a cold path",
    characteristics=("inttoptr",),
))

# ---------------------------------------------------------------------
# 458.sjeng -- chess search (alpha-beta with recursion).
# Characteristic: integer board arrays + deep recursion; like hmmer, a
# single cold integer-to-pointer round trip (Table 2: unstarred 0.00).
# ---------------------------------------------------------------------

_SJENG_MAIN = r"""
long addr_stash;
int history[64];
int psq[64];

long leaf_eval(int *pos) {
    long v = 0;
    for (int i = 0; i < 8; i++)
        v = v + pos[i] * psq[(i * 9) & 63] + (pos[i] >> 2);
    return v;
}

long search(int *pos, int depth, int alpha, int beta) {
    if (depth == 0) return leaf_eval(pos);
    long best = -100000;
    for (int m = 0; m < 3; m++) {
        int save = pos[m];
        pos[m] = (pos[m] + history[(depth * 8 + m) & 63]) & 127;
        long score = -search(pos, depth - 1, -beta, -alpha);
        pos[m] = save;
        if (score > best) best = score;
        if (best > (long)alpha) alpha = (int)best;
        if (alpha >= beta) break;
    }
    return best;
}

int main() {
    int *position = (int *) malloc(sizeof(int) * 8);
    for (int i = 0; i < 64; i++) {
        history[i] = (i * 3) % 7;
        psq[i] = (i * 5) % 9 - 4;
    }
    for (int i = 0; i < 8; i++) position[i] = (i * 11) % 64;
    addr_stash = (long) position;         // cold ptr->int->ptr round trip
    long total = 0;
    for (int game = 0; game < 6; game++) {
        total = total + search(position, 5, -100000, 100000);
        position[game & 7] = (position[game & 7] + game) & 127;
    }
    int *again = (int *) addr_stash;
    total = total + again[7];
    print_i64(total);
    free((void*)position);
    return 0;
}
"""

register(Workload(
    name="458sjeng",
    sources={"sjeng_main.c": _SJENG_MAIN},
    description="alpha-beta search with history tables; cold inttoptr",
    characteristics=("inttoptr",),
))

# ---------------------------------------------------------------------
# 462.libquantum -- quantum register simulation.
# Characteristic: array-of-structs register with bit manipulation;
# fully checked by both (Table 2: 0*).
# ---------------------------------------------------------------------

_LIBQUANTUM_MAIN = r"""
struct qstate {
    long state;
    double amp_re;
    double amp_im;
};

int main() {
    int width = 10;
    int size = 1 << 8;
    struct qstate *reg = (struct qstate *) malloc(sizeof(struct qstate) * size);
    for (int i = 0; i < size; i++) {
        reg[i].state = i;
        reg[i].amp_re = 1.0 / (double)(i + 1);
        reg[i].amp_im = 0.0;
    }
    for (int target = 0; target < width; target++) {
        long mask = 1 << target;
        for (int i = 0; i < size; i++) {
            // Controlled-NOT: flip the target bit of matching states.
            if ((reg[i].state & mask) != 0) {
                reg[i].state = reg[i].state ^ (mask << 1);
                double t = reg[i].amp_re;
                reg[i].amp_re = reg[i].amp_im;
                reg[i].amp_im = t;
            }
        }
    }
    double norm = 0.0;
    long states = 0;
    for (int i = 0; i < size; i++) {
        norm = norm + reg[i].amp_re * reg[i].amp_re
             + reg[i].amp_im * reg[i].amp_im;
        states = states ^ reg[i].state;
    }
    print_f64(norm);
    print_i64(states);
    free((void*)reg);
    return 0;
}
"""

register(Workload(
    name="462libquantum",
    sources={"libquantum_main.c": _LIBQUANTUM_MAIN},
    description="quantum gate sweeps over an array-of-structs register",
    characteristics=(),
))

# ---------------------------------------------------------------------
# 464.h264ref -- video encoding (motion estimation).
# Characteristic (Figure 10): builds row-pointer tables and moves
# blocks with memcpy -> many pointer stores; SoftBound's invariant
# (trie) traffic dominates its overhead.
# ---------------------------------------------------------------------

_H264_MAIN = r"""
int sad_block(char *a, char *b, int w) {
    int sad = 0;
    for (int i = 0; i < w; i++) {
        int d = a[i] - b[i];
        int e = a[i] + b[i];
        if (d < 0) d = -d;
        sad = sad + d + (e & 1);
    }
    return sad;
}

int main() {
    int w = 4;
    int h = 40;
    char *frame0 = (char *) malloc(w * h);
    char *frame1 = (char *) malloc(w * h);
    // Row-pointer caches, rebuilt per macroblock row, as real encoders
    // recompute stride pointers: a steady stream of pointer stores
    // (SoftBound: trie updates dominate, paper Figure 10).
    char **cur = (char **) malloc(sizeof(char *) * 2);
    char **ref = (char **) malloc(sizeof(char *) * 2);
    int seed = 41;
    for (int i = 0; i < w * h; i++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        frame0[i] = (char)(seed % 64);
        frame1[i] = (char)((seed >> 7) % 64);
    }
    long total_sad = 0;
    for (int frame = 0; frame < 18; frame++) {
        for (int by = 0; by + 2 <= h; by = by + 2) {
            int best = 1 << 30;
            int probe = frame0[by * w];
            for (int dy = -1; dy <= 1; dy++) {
                int sy = by + dy;
                if (sy < 0 || sy + 2 > h) continue;
                for (int r = 0; r < 2; r++) {
                    cur[r] = frame0 + (by + r) * w;   // pointer stores
                    ref[r] = frame1 + (sy + r) * w;   // (trie traffic)
                }
                int sad = 0;
                for (int r = 0; r < 2; r++)
                    sad = sad + sad_block(cur[r], ref[r], w);
                if (sad < best) best = sad;
            }
            total_sad = total_sad + best + (probe & 1)
                      + (frame0[by * w] & 1);   // re-read across calls
        }
        // Reconstruct: copy the first block row (memcpy wrapper copies
        // the trie metadata of any pointers in range).
        memcpy((void*)frame1, (void*)frame0, w * 4);
    }
    print_i64(total_sad);
    free((void*)frame0); free((void*)frame1);
    free((void*)cur); free((void*)ref);
    return 0;
}
"""

register(Workload(
    name="464h264ref",
    sources={"h264_main.c": _H264_MAIN},
    description="motion estimation with per-frame row-pointer tables (trie-store heavy)",
    characteristics=("trie_heavy", "memcpy_metadata"),
))

# ---------------------------------------------------------------------
# 470.lbm -- lattice Boltzmann fluid dynamics.
# Characteristic: streaming sweeps over one large double array; purely
# affine accesses, fully checked (Table 2: 0*).
# ---------------------------------------------------------------------

_LBM_MAIN = r"""
void stream(double *src, double *dst, double eq) {
    *dst = *src + 0.6 * (eq - *src);
}

int main() {
    int cells = 256;
    int q = 5;                      // D2Q5 lattice
    double *grid = (double *) malloc(sizeof(double) * cells * q);
    double *next = (double *) malloc(sizeof(double) * cells * q);
    for (int i = 0; i < cells * q; i++)
        grid[i] = 1.0 + (double)(i % 9) * 0.01;
    double probe = 0.0;
    for (int step = 0; step < 9; step++) {
        for (int c = 0; c < cells; c++) {
            double rho = grid[c * q];
            for (int d = 1; d < q; d++) rho = rho + grid[c * q + d];
            double eq = rho / (double)q;
            for (int d = 0; d < q; d++) {
                int dest = c;
                if (d == 1) dest = (c + 1) % cells;
                if (d == 2) dest = (c + cells - 1) % cells;
                if (d == 3) dest = (c + 16) % cells;
                if (d == 4) dest = (c + cells - 16) % cells;
                stream(&grid[c * q + d], &next[dest * q + d], eq);
            }
            probe = probe + grid[c * q];   // re-read across the stores
        }
        double *tmp = grid; grid = next; next = tmp;
    }
    double mass = probe * 0.0001;
    for (int i = 0; i < cells * q; i++) mass = mass + grid[i];
    print_f64(mass);
    free((void*)grid); free((void*)next);
    return 0;
}
"""

register(Workload(
    name="470lbm",
    sources={"lbm_main.c": _LBM_MAIN},
    description="lattice Boltzmann streaming over a large double array",
    characteristics=(),
))

# ---------------------------------------------------------------------
# 482.sphinx3 -- speech recognition (GMM scoring).
# Characteristic: mixture-model scoring: double math plus moderate
# pointer chasing through senone tables; fully checked (Table 2: 0*).
# ---------------------------------------------------------------------

_SPHINX_MAIN = r"""
double dim_score(double *feat, double *mean, double *var, int d) {
    double diff = feat[d] - mean[d];
    return diff * (diff / var[d]) + var[d] * 0.001;
}

struct senone {
    double *means;
    double *variances;
    double weight;
};

int main() {
    int nsen = 24;
    int dims = 12;
    int nframes = 30;
    struct senone *senones =
        (struct senone *) malloc(sizeof(struct senone) * nsen);
    double *features = (double *) malloc(sizeof(double) * nframes * dims);
    for (int s = 0; s < nsen; s++) {
        senones[s].means = (double *) malloc(sizeof(double) * dims);
        senones[s].variances = (double *) malloc(sizeof(double) * dims);
        senones[s].weight = 1.0 / (double)(s + 1);
        for (int d = 0; d < dims; d++) {
            senones[s].means[d] = (double)((s * 3 + d) % 7) * 0.2;
            senones[s].variances[d] = 0.5 + (double)((s + d) % 5) * 0.1;
        }
    }
    for (int i = 0; i < nframes * dims; i++)
        features[i] = (double)((i * 13) % 23) * 0.1;
    double total_score = 0.0;
    for (int f = 0; f < nframes; f++) {
        double best = -1000000.0;
        for (int s = 0; s < nsen; s++) {
            double *mean = senones[s].means;       // pointer loads
            double *var = senones[s].variances;
            double score = senones[s].weight;
            for (int d = 0; d < dims; d++)
                score = score - dim_score(&features[f * dims], mean, var, d);
            if (score > best) best = score;
        }
        total_score = total_score + best;
    }
    print_f64(total_score);
    for (int s = 0; s < nsen; s++) {
        free((void*)senones[s].means);
        free((void*)senones[s].variances);
    }
    free((void*)senones); free((void*)features);
    return 0;
}
"""

register(Workload(
    name="482sphinx3",
    sources={"sphinx_main.c": _SPHINX_MAIN},
    description="GMM senone scoring: double math + senone pointer loads",
    characteristics=("pointer_loop",),
))

"""Workload registry.

The paper evaluates 20 C benchmarks from SPEC CPU2000/2006 (Section
5.1.1).  SPEC is proprietary, so this package provides 20 MiniC kernels
named after them, each engineered to exhibit the *characteristic* the
paper attributes to its namesake (the property that drives its row in
Table 2 and its bar in Figures 9-13).  See DESIGN.md for the mapping
rationale; each workload module documents its own characteristics.

Workloads self-validate: the uninstrumented run's output is the
reference, and every instrumented configuration must reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Workload:
    name: str
    sources: Dict[str, str]
    description: str
    #: characteristic tags, e.g. "size_zero_arrays" (bold in Table 2),
    #: "huge_allocation", "external_globals", "pointer_loop",
    #: "check_dense", "trie_heavy"
    characteristics: Sequence[str] = field(default_factory=tuple)
    #: units compiled with integer-obfuscated pointer copies
    obfuscated_units: Sequence[str] = field(default_factory=tuple)

    @property
    def has_size_zero_arrays(self) -> bool:
        return "size_zero_arrays" in self.characteristics


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name}")
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def all_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


_LOADED = False


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import (  # noqa: F401  (import for registration side effect)
        spec2000,
        spec2006,
    )

"""The excluded benchmarks (paper Section 5.1.1).

The paper starts from 27 C benchmarks and evaluates only the 20 that
execute successfully with both approaches.  The excluded seven fail for
documented reasons; this module models five of them as small kernels so
the *reasons for exclusion* are reproducible:

* ``253perlbmk`` / ``254gap`` -- pseudo base-one arrays: the program
  creates a pointer one element *before* an array and indexes from 1.
  Undefined behaviour; Low-Fat reports the out-of-bounds pointer at the
  escape.  (perl additionally has real out-of-bounds accesses that
  SoftBound reports; gap does not.)
* ``176gcc`` -- dereferences NULL-based pointers with large offsets and
  performs out-of-bounds pointer arithmetic; both approaches report.
* ``175vpr`` / ``255vortex`` -- out-of-bounds pointer arithmetic
  (brought back in bounds before the access): Low-Fat reports, SoftBound
  does not.

Each entry records which approach rejects it and why; the test suite
asserts exactly those outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence


@dataclass
class ExcludedBenchmark:
    name: str
    sources: Dict[str, str]
    reason: str
    #: expected outcome per approach: "ok", "deref", or "invariant"
    expected: Dict[str, str] = field(default_factory=dict)


_PERL = ExcludedBenchmark(
    name="253perlbmk",
    reason="pseudo base-one arrays + known out-of-bounds accesses",
    expected={"softbound": "deref", "lowfat": "invariant"},
    sources={
        "stack.c": r"""
        // Perl-style base-one stack: the code keeps a pointer one slot
        // before the allocation and indexes from 1.
        long sum_base1(long *base1, int n) {
            long s = 0;
            for (int i = 1; i <= n; i++) s += base1[i];
            return s;
        }
        """,
        "main.c": r"""
        long sum_base1(long *base1, int n);
        int main() {
            long *stack = (long *) malloc(sizeof(long) * 8);
            for (int i = 0; i < 8; i++) stack[i] = i;
            // pseudo base-one: pointer one element before the start
            long s = sum_base1(stack - 1, 8);
            // perl also has real overflows that SoftBound reports:
            s += stack[8];
            print_i64(s);
            free((void*)stack);
            return 0;
        }
        """,
    },
)

_GAP = ExcludedBenchmark(
    name="254gap",
    reason="pseudo base-one arrays (no other violations)",
    expected={"softbound": "ok", "lowfat": "invariant"},
    sources={
        "bags.c": r"""
        long bag_sum(long *bag1, int n) {
            long s = 0;
            for (int i = 1; i <= n; i++) s += bag1[i];
            return s;
        }
        """,
        "main.c": r"""
        long bag_sum(long *bag1, int n);
        int main() {
            long *bag = (long *) malloc(sizeof(long) * 8);
            for (int i = 0; i < 8; i++) bag[i] = i * 3;
            print_i64(bag_sum(bag - 1, 8));
            free((void*)bag);
            return 0;
        }
        """,
    },
)

_GCC = ExcludedBenchmark(
    name="176gcc",
    reason="NULL pointers with large offsets (cf. Kroes et al.)",
    expected={"softbound": "deref", "lowfat": "invariant"},
    sources={
        "obstack.c": r"""
        long probe(char *past) { return past[-64]; }
        """,
        "main.c": r"""
        long probe(char *past);
        int main() {
            // gcc performs out-of-bounds pointer arithmetic (Low-Fat
            // reports the escaping pointer) ...
            char *buf = (char *) malloc(120);   // fills the 128B class
            for (int i = 0; i < 120; i++) buf[i] = (char)i;
            long v = probe(buf + 160);
            // ... and dereferences NULL-based pointers with large
            // offsets (SoftBound reports NULL bounds; uninstrumented
            // and Low-Fat runs trap on the unmapped page).
            char *base = NULL;
            char *field = base + 4096;
            *field = (char)v;
            return *field;
        }
        """,
    },
)

_VPR = ExcludedBenchmark(
    name="175vpr",
    reason="out-of-bounds pointer arithmetic (LF-only rejection)",
    expected={"softbound": "ok", "lowfat": "invariant"},
    sources={
        "route.c": r"""
        // vpr walks a pointer beyond the segment and rewinds inside
        // the callee before accessing (indices 122..125: in bounds).
        long segment_cost(int *past_end, int len) {
            long cost = 0;
            for (int i = 5; i < 5 + len; i++) cost += past_end[0 - i];
            return cost;
        }
        """,
        "main.c": r"""
        long segment_cost(int *past_end, int len);
        int main() {
            int *seg = (int *) malloc(sizeof(int) * 127);  // 508B: fills 512B class
            for (int i = 0; i < 127; i++) seg[i] = i;
            // 130 elements past the base: beyond even the padded slot
            long c = segment_cost(seg + 130, 4);
            print_i64(c);
            free((void*)seg);
            return 0;
        }
        """,
    },
)

_VORTEX = ExcludedBenchmark(
    name="255vortex",
    reason="out-of-bounds pointer arithmetic (LF-only rejection)",
    expected={"softbound": "ok", "lowfat": "invariant"},
    sources={
        "chunk.c": r"""
        long chunk_get(char *chunk, int back) {
            return chunk[-back];
        }
        """,
        "main.c": r"""
        long chunk_get(char *chunk, int back);
        int main() {
            char *mem = (char *) malloc(120);   // fills the 128B class
            for (int i = 0; i < 120; i++) mem[i] = (char)(i & 63);
            // pointer well past the padded slot, rewound in the callee
            long v = chunk_get(mem + 200, 150);
            print_i64(v);
            free((void*)mem);
            return 0;
        }
        """,
    },
)

EXCLUDED: Sequence[ExcludedBenchmark] = (_PERL, _GAP, _GCC, _VPR, _VORTEX)


def excluded_by_name() -> Dict[str, ExcludedBenchmark]:
    return {bench.name: bench for bench in EXCLUDED}

"""SPEC CPU2000-named workload kernels (see registry docstring).

Each kernel mimics the algorithmic core and -- critically -- the
instrumentation-relevant *characteristics* the paper attributes to its
namesake benchmark (Sections 4.6, 5.1, 5.2, 5.4).
"""

from __future__ import annotations

from .registry import Workload, register

# ---------------------------------------------------------------------
# 164.gzip -- LZ77-style compression.
# Characteristic (Table 2): pervasive use of size-less ``extern``
# array declarations across translation units; under separate
# compilation SoftBound cannot derive their bounds, so ~62% of its
# dynamic checks use wide bounds.  Low-Fat mirrors the (defined)
# globals into its regions and checks everything.
# ---------------------------------------------------------------------

_GZIP_DATA = r"""
// Data translation unit: the defining declarations.
int window[4096];
int head[1024];
int prev[4096];
int match_len[512];
"""

_GZIP_MAIN = r"""
// Size-less extern declarations: the defining unit knows the sizes,
// this unit does not (C allows it; SoftBound struggles, Section 4.3).
extern int window[];
extern int head[];
extern int prev[];
extern int match_len[];

int hash3(int a, int b, int c) {
    return ((a * 31 + b) * 31 + c) & 1023;
}

int emit(char *buf, int pos, int value) {
    buf[pos] = (char)(value & 127);
    return pos + 1;
}

int longest_match(int pos, int limit) {
    int best = 0;
    int chain = prev[pos & 4095];
    int tries = 8;
    while (tries > 0 && chain > 0) {
        int len = 0;
        while (len < 32 && pos + len < limit) {
            if (window[(chain + len) & 4095] != window[(pos + len) & 4095]) break;
            len = len + 1;
        }
        if (len > best) best = len;
        chain = prev[chain & 4095];
        tries = tries - 1;
    }
    return best;
}

int main() {
    int n = 1800;
    int seed = 12345;
    for (int i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        window[i & 4095] = (seed >> 8) & 255;
    }
    long emitted = 0;
    long literals = 0;
    long check0 = 0;
    char *obuf = (char *) malloc(n * 2);
    int *lit_freq = (int *) malloc(sizeof(int) * 256);
    int *crc_buf = (int *) malloc(sizeof(int) * 256);
    for (int i = 0; i < 256; i++) { lit_freq[i] = 0; crc_buf[i] = 0; }
    int opos = 0;
    for (int pos = 3; pos < n; pos++) {
        int h = hash3(window[(pos - 2) & 4095], window[(pos - 1) & 4095],
                      window[pos & 4095]);
        int candidate = head[h];
        prev[pos & 4095] = candidate;
        head[h] = pos;
        // C style: re-read window[] and let the compiler CSE the loads.
        lit_freq[window[pos & 4095] & 255] =
            lit_freq[window[pos & 4095] & 255] + 1;
        crc_buf[pos & 255] = (crc_buf[(pos - 1) & 255] * 31
                              + (window[pos & 4095] & 255)) & 65535;
        if (opos > 0) check0 = check0 + obuf[opos - 1];
        int len = longest_match(pos, n);
        if (len >= 3) {
            match_len[len & 511] = match_len[len & 511] + 1;
            emitted = emitted + len;
            opos = emit(obuf, opos, len);
            opos = emit(obuf, opos, pos);
        } else {
            literals = literals + 1;
            opos = emit(obuf, opos, window[pos & 4095]);
        }
    }
    long check = emitted * 31 + literals + check0;
    for (int i = 0; i < 512; i++) check += match_len[i] * i;
    for (int i = 0; i < opos; i++) check += obuf[i];
    for (int i = 0; i < 256; i++)
        check += (long)lit_freq[i] * (i & 3) + (crc_buf[i] & 7);
    print_i64(check);
    free((void*)obuf); free((void*)lit_freq); free((void*)crc_buf);
    return 0;
}
"""

register(Workload(
    name="164gzip",
    sources={"gzip_data.c": _GZIP_DATA, "gzip_main.c": _GZIP_MAIN},
    description="LZ77-style compression over size-less extern arrays",
    characteristics=("size_zero_arrays",),
))

# ---------------------------------------------------------------------
# 177.mesa -- 3D rasterization pipeline (vertex transform + shading).
# Characteristic: double-precision math over instrumented buffers plus
# a small fraction of accesses through an *external library* global
# (uninstrumented, not in low-fat regions) -> a small nonzero Low-Fat
# wide-bounds fraction (Table 2: 1.57%), while SoftBound knows the
# declared size and checks them.
# ---------------------------------------------------------------------

_MESA_LIB = r"""
// "External library" state: declared here and in the main unit, but
// never defined in any compiled unit -- the harness links it like a
// proprietary binary-only library (paper Section 4.3).
extern double ext_gamma_table[64];

double apply_gamma(double v, int idx) {
    return v + ext_gamma_table[idx & 63];
}
"""

_MESA_MAIN = r"""
extern double ext_gamma_table[64];
double apply_gamma(double v, int idx);

double mvp[16];
double verts_in[600];
double verts_out[600];

void make_matrix() {
    for (int i = 0; i < 16; i++) mvp[i] = 0.0;
    mvp[0] = 1.25; mvp[5] = 0.75; mvp[10] = 1.0; mvp[15] = 1.0;
    mvp[3] = 0.5; mvp[7] = 0.25; mvp[11] = 2.0;
}

double dot3(double *row, double *v) {
    // Tiny leaf helper: inlined at -O3; once instrumented it exceeds
    // the inline threshold and carries shadow-stack traffic per call.
    return row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3];
}

void transform(int count) {
    for (int v = 0; v < count; v++) {
        int base = v * 3;
        verts_out[base]     = dot3(&mvp[0], &verts_in[base]);
        verts_out[base + 1] = dot3(&mvp[4], &verts_in[base]);
        verts_out[base + 2] = dot3(&mvp[8], &verts_in[base]);
    }
}

int main() {
    make_matrix();
    int count = 200;
    for (int i = 0; i < count * 3; i++)
        verts_in[i] = (double)(i % 17) * 0.125;
    double shade = 0.0;
    for (int frame = 0; frame < 12; frame++) {
        transform(count);
        for (int v = 0; v < count; v++) {
            double lum = verts_out[v * 3] * 0.3 + verts_out[v * 3 + 1] * 0.6
                       + verts_out[v * 3 + 2] * 0.1;
            if (v % 3 == 0) lum = apply_gamma(lum, v);
            shade = shade + lum;
        }
    }
    print_f64(shade);
    return 0;
}
"""

register(Workload(
    name="177mesa",
    sources={"mesa_lib.c": _MESA_LIB, "mesa_main.c": _MESA_MAIN},
    description="vertex transform + shading; touches an external-library global",
    characteristics=("external_globals",),
))

# ---------------------------------------------------------------------
# 179.art -- adaptive resonance theory neural network.
# Characteristic: clean heap-allocated double arrays; fully checked by
# both approaches (Table 2: 0.00 / 0.00).
# ---------------------------------------------------------------------

_ART_MAIN = r"""
void blend(double *w, double in) {
    *w = *w * 0.9 + in * 0.1;
}

int main() {
    int f1 = 60;
    int f2 = 12;
    double *input = (double *) malloc(sizeof(double) * f1);
    double *weights = (double *) malloc(sizeof(double) * f1 * f2);
    double *activation = (double *) malloc(sizeof(double) * f2);
    for (int i = 0; i < f1; i++) input[i] = (double)((i * 7) % 13) / 13.0;
    for (int i = 0; i < f1 * f2; i++) weights[i] = (double)((i * 11) % 29) / 29.0;
    double total = 0.0;
    for (int epoch = 0; epoch < 12; epoch++) {
        int winner = 0;
        double best = -1.0;
        for (int j = 0; j < f2; j++) {
            double act = 0.0;
            double inorm = 0.0;
            for (int i = 0; i < f1; i++) {
                act = act + input[i] * weights[j * f1 + i];
                inorm = inorm + input[i] * input[i];
            }
            activation[j] = act / (1.0 + inorm * 0.001);
            if (act > best) { best = act; winner = j; }
        }
        for (int i = 0; i < f1; i++)
            blend(&weights[winner * f1 + i], input[i]);
        total = total + best;
    }
    print_f64(total);
    free((void*)input); free((void*)weights); free((void*)activation);
    return 0;
}
"""

register(Workload(
    name="179art",
    sources={"art_main.c": _ART_MAIN},
    description="neural-network resonance: clean heap double arrays",
    characteristics=(),
))

# ---------------------------------------------------------------------
# 181.mcf -- minimum-cost network flow (CPU2000 variant).
# Characteristic: struct-and-pointer graph code.  The paper *fixed*
# this benchmark (Section 5.1.2): a pointer was stored in an integer
# struct member; the proper pointer type is used here, so both
# approaches run it cleanly (Table 2: 0.00 / 0.00).
# ---------------------------------------------------------------------

_MCF2000_MAIN = r"""
struct node {
    long potential;
    struct node *parent;
    struct arc *first_out;
    int depth;
};
struct arc {
    long cost;
    struct node *tail;
    struct node *head;
    struct arc *next_out;
    long flow;
};

long price_arc(struct arc *a, int round) {
    long reduced = a->cost + a->tail->potential - a->head->potential;
    return reduced + ((a->cost * (round + 3)) & 7) - ((a->cost & 1) + 2);
}

int main() {
    int nnodes = 120;
    int narcs = 420;
    struct node *nodes = (struct node *) malloc(sizeof(struct node) * nnodes);
    struct arc *arcs = (struct arc *) malloc(sizeof(struct arc) * narcs);
    for (int i = 0; i < nnodes; i++) {
        nodes[i].potential = i * 3 + 1;
        nodes[i].parent = NULL;
        nodes[i].first_out = NULL;
        nodes[i].depth = 0;
    }
    int seed = 7;
    for (int a = 0; a < narcs; a++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        int t = seed % nnodes;
        seed = (seed * 1103515245 + 12345) & 2147483647;
        int h = seed % nnodes;
        arcs[a].cost = (seed >> 16) % 100;
        arcs[a].tail = &nodes[t];
        arcs[a].head = &nodes[h];
        arcs[a].flow = 0;
        arcs[a].next_out = nodes[t].first_out;
        nodes[t].first_out = &arcs[a];
    }
    long objective = 0;
    for (int round = 0; round < 8; round++) {
        for (int i = 0; i < nnodes; i++) {
            struct arc *out = nodes[i].first_out;
            while (out != NULL) {
                long reduced = price_arc(out, round);
                if (reduced < 0) {
                    out->flow = out->flow + 1;
                    out->head->parent = out->tail;
                    objective = objective - reduced;
                }
                out = out->next_out;
            }
        }
        for (int i = 0; i < nnodes; i++)
            nodes[i].potential = nodes[i].potential + (round & 3);
    }
    long check = objective;
    for (int a = 0; a < narcs; a++) check += arcs[a].flow;
    print_i64(check);
    free((void*)nodes); free((void*)arcs);
    return 0;
}
"""

register(Workload(
    name="181mcf",
    sources={"mcf2000_main.c": _MCF2000_MAIN},
    description="network simplex pricing over struct/pointer graph (pointer-typed member fix applied)",
    characteristics=("pointer_loop",),
))

# ---------------------------------------------------------------------
# 183.equake -- earthquake simulation: sparse matrix-vector products.
# Characteristic (Section 5.2): "a particularly hot loop that loads
# pointer values from memory" -- row pointers of the sparse matrix.
# SoftBound pays a trie lookup per loaded row pointer; Low-Fat only
# recomputes the base with register arithmetic -> LF clearly faster.
# ---------------------------------------------------------------------

_EQUAKE_MAIN = r"""
void relax(double *d, double *s) {
    d[0] = d[0] + (s[0] - d[0]) * 0.05;
    d[1] = d[1] + (s[1] - d[1]) * 0.05;
}

int main() {
    int n = 220;
    // Unstructured mesh: each node owns a small displacement vector,
    // reached through a pointer that the hot loop must LOAD from the
    // node table on every use -- SoftBound pays a trie lookup per
    // loaded pointer, Low-Fat only recomputes the base (Section 5.2).
    double **disp = (double **) malloc(sizeof(double *) * n);
    int *neighbor = (int *) malloc(sizeof(int) * n);
    int seed = 3;
    for (int i = 0; i < n; i++) {
        disp[i] = (double *) malloc(sizeof(double) * 2);
        disp[i][0] = (double)(i % 7) * 0.5;
        disp[i][1] = (double)(i % 5) * 0.25;
        seed = (seed * 1103515245 + 12345) & 2147483647;
        neighbor[i] = seed % n;
    }
    for (int step = 0; step < 40; step++) {
        for (int i = 0; i < n; i++) {
            double *d = disp[i];               // pointer load (hot)
            double *s = disp[neighbor[i]];     // pointer load (hot)
            relax(d, s);
        }
    }
    double check = 0.0;
    for (int i = 0; i < n; i++) check = check + disp[i][0] + disp[i][1];
    print_f64(check);
    for (int i = 0; i < n; i++) free((void*)disp[i]);
    free((void*)disp); free((void*)neighbor);
    return 0;
}
"""

register(Workload(
    name="183equake",
    sources={"equake_main.c": _EQUAKE_MAIN},
    description="sparse matvec with row-pointer loads in the hot loop",
    characteristics=("pointer_loop", "trie_hot"),
))

# ---------------------------------------------------------------------
# 186.crafty -- chess engine (move generation / evaluation).
# Characteristic (Section 5.2): check-dense integer code with many
# distinct array accesses per iteration and few in-memory pointers;
# SoftBound's shorter check sequence (Figure 2 vs Figure 5) wins.
# ---------------------------------------------------------------------

_CRAFTY_MAIN = r"""
int board[64];
int attack_table[64];
int piece_value[16];
int mobility[64];
int king_zone[64];

int evaluate_square(int *brd, int sq) {
    // Typical evaluation code: re-reads the tables and relies on CSE.
    int score = piece_value[brd[sq] & 15];
    score = score + attack_table[sq] + mobility[sq] * 2;
    score = score + (brd[sq] & 7) * mobility[sq];
    score = score + (attack_table[sq] >> 2) + king_zone[63 - sq];
    if ((sq & 7) > 2 && (sq & 7) < 5) score = score + 3;
    return score;
}

int main() {
    for (int i = 0; i < 64; i++) {
        board[i] = (i * 5 + 3) & 15;
        attack_table[i] = (i * 7) % 23;
        mobility[i] = (i * 3) % 9;
        king_zone[i] = (i * 11) % 13;
    }
    for (int p = 0; p < 16; p++) piece_value[p] = p * p;
    long total = 0;
    for (int game = 0; game < 60; game++) {
        for (int sq = 0; sq < 64; sq++) {
            total = total + evaluate_square(board, sq);
            board[sq] = (board[sq] + attack_table[(sq + game) & 63]) & 15;
        }
        attack_table[game & 63] = (attack_table[game & 63] + 1) % 23;
    }
    print_i64(total);
    return 0;
}
"""

register(Workload(
    name="186crafty",
    sources={"crafty_main.c": _CRAFTY_MAIN},
    description="check-dense integer evaluation over global tables",
    characteristics=("check_dense",),
))

# ---------------------------------------------------------------------
# 188.ammp -- molecular dynamics.
# Characteristic: struct-of-arrays atom data with neighbour lists; a
# small fraction of accesses goes through external-library state
# (Table 2: LF 0.24%).
# ---------------------------------------------------------------------

_AMMP_LIB = r"""
extern double ext_spline_coeff[32];

double spline_lookup(int idx) {
    return ext_spline_coeff[idx & 31];
}
"""

_AMMP_MAIN = r"""
double spline_lookup(int idx);

struct atom {
    double x; double y; double z;
    double fx; double fy; double fz;
    int kind;
};

int main() {
    int natoms = 80;
    int nneigh = 6;
    struct atom *atoms = (struct atom *) malloc(sizeof(struct atom) * natoms);
    int *neigh = (int *) malloc(sizeof(int) * natoms * nneigh);
    int seed = 11;
    for (int i = 0; i < natoms; i++) {
        atoms[i].x = (double)(i % 10); atoms[i].y = (double)((i * 3) % 10);
        atoms[i].z = (double)((i * 7) % 10);
        atoms[i].fx = 0.0; atoms[i].fy = 0.0; atoms[i].fz = 0.0;
        atoms[i].kind = i & 3;
        for (int k = 0; k < nneigh; k++) {
            seed = (seed * 1103515245 + 12345) & 2147483647;
            neigh[i * nneigh + k] = seed % natoms;
        }
    }
    for (int step = 0; step < 9; step++) {
        for (int i = 0; i < natoms; i++) {
            double fx = 0.0; double fy = 0.0; double fz = 0.0;
            for (int k = 0; k < nneigh; k++) {
                int j = neigh[i * nneigh + k];
                double dx = atoms[j].x - atoms[i].x;
                double dy = atoms[j].y - atoms[i].y;
                double dz = atoms[j].z - atoms[i].z;
                double r2 = dx * dx + dy * dy + dz * dz + 0.1;
                double inv = 1.0 / r2;
                fx = fx + (atoms[j].x - atoms[i].x) * inv;
                fy = fy + (atoms[j].y - atoms[i].y) * inv;
                fz = fz + (atoms[j].z - atoms[i].z) * inv;
            }
            if ((i & 7) == 0) fx = fx + spline_lookup(i + step);
            atoms[i].fx = fx; atoms[i].fy = fy; atoms[i].fz = fz;
        }
        for (int i = 0; i < natoms; i++) {
            atoms[i].x = atoms[i].x + atoms[i].fx * 0.001;
            atoms[i].y = atoms[i].y + atoms[i].fy * 0.001;
            atoms[i].z = atoms[i].z + atoms[i].fz * 0.001;
        }
    }
    double check = 0.0;
    for (int i = 0; i < natoms; i++)
        check = check + atoms[i].x + atoms[i].y + atoms[i].z;
    print_f64(check);
    free((void*)atoms); free((void*)neigh);
    return 0;
}
"""

register(Workload(
    name="188ammp",
    sources={"ammp_lib.c": _AMMP_LIB, "ammp_main.c": _AMMP_MAIN},
    description="molecular dynamics with neighbour lists; rare external-library lookups",
    characteristics=("external_globals",),
))

# ---------------------------------------------------------------------
# 197.parser -- link-grammar parser.
# Characteristics: dictionary as a linked structure built with *many
# pointer stores* (SoftBound invariants dominate its overhead,
# Figure 10), plus a size-less extern table used rarely (Table 2:
# SB 0.27%) and external-library state (LF 7.14%).
# ---------------------------------------------------------------------

_PARSER_DATA = r"""
int suffix_table[256];
"""

_PARSER_LIB = r"""
extern int ext_locale_map[128];

int locale_class(int c) {
    return ext_locale_map[c & 127];
}
"""

_PARSER_MAIN = r"""
extern int suffix_table[];      // size-less: SoftBound cannot size it
int locale_class(int c);

struct word {
    int token;
    int count;
    struct word *next;
    struct word *left;
    struct word *right;
};

struct word *bucket_head(struct word **tbl, int token) {
    return tbl[token & 63];
}

struct word *make_word(struct word *pool, int *used, int token) {
    struct word *w = &pool[*used];
    *used = *used + 1;
    w->token = token;
    w->count = 1;
    w->next = NULL; w->left = NULL; w->right = NULL;
    return w;
}

int main() {
    int capacity = 600;
    struct word *pool = (struct word *) malloc(sizeof(struct word) * capacity);
    struct word **buckets = (struct word **) malloc(sizeof(struct word *) * 64);
    for (int i = 0; i < 64; i++) buckets[i] = NULL;
    int used = 0;
    int seed = 99;
    long lookups = 0;
    for (int t = 0; t < 500; t++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        int token = seed % 200;
        int h = token & 63;
        struct word *prev_w = NULL;
        struct word *w = bucket_head(buckets, token);
        while (w != NULL && w->token != token) { prev_w = w; w = w->next; lookups++; }
        if (w == NULL) {
            w = make_word(pool, &used, token);
            w->next = buckets[h];       // pointer store: trie traffic
            buckets[h] = w;             // pointer store
        } else {
            w->count = w->count + 1;
            lookups = lookups + (w->count & 3);
            if (prev_w != NULL) {       // move-to-front: 3 pointer stores
                prev_w->next = w->next;
                w->next = buckets[h];
                buckets[h] = w;
            }
        }
        if ((t & 63) == 0) {
            lookups = lookups + suffix_table[token & 255];
        }
        if ((t & 3) == 0) {
            lookups = lookups + locale_class(token) + locale_class(token >> 3);
        }
    }
    long check = lookups * 7 + used;
    for (int i = 0; i < 64; i++) {
        struct word *w = buckets[i];
        while (w != NULL) { check += w->count; w = w->next; }
    }
    print_i64(check);
    free((void*)pool); free((void*)buckets);
    return 0;
}
"""

register(Workload(
    name="197parser",
    sources={
        "parser_data.c": _PARSER_DATA,
        "parser_lib.c": _PARSER_LIB,
        "parser_main.c": _PARSER_MAIN,
    },
    description="hash-bucket dictionary: pointer-store heavy, size-less extern table",
    characteristics=("size_zero_arrays", "external_globals", "trie_heavy"),
))

# ---------------------------------------------------------------------
# 256.bzip2 -- block-sorting compression (CPU2000 variant).
# Characteristic: byte-array sorting with highly redundant accesses;
# the dominance filter removes up to 50% of its checks (Section 5.3).
# ---------------------------------------------------------------------

_BZIP2_2000_MAIN = r"""
int byte_at(char *blk, int idx, int n) {
    return blk[idx % n];
}

int main() {
    int n = 420;
    char *block = (char *) malloc(n);
    int *ptrs = (int *) malloc(sizeof(int) * n);
    int seed = 21;
    for (int i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        block[i] = (char)(seed % 17 + 65);
        ptrs[i] = i;
    }
    // Shell sort of rotation indices by leading bytes: the comparator
    // re-reads block[x] several times, producing dominated checks.
    long parity = 0;
    int gap = n / 2;
    while (gap > 0) {
        for (int i = gap; i < n; i++) {
            int tmp = ptrs[i];
            int j = i;
            while (j >= gap) {
                int a = ptrs[j - gap];
                int cmp = 0;
                int k = 0;
                while (k < 4 && cmp == 0) {
                    cmp = byte_at(block, a + k, n) - byte_at(block, tmp + k, n);
                    parity = parity + (byte_at(block, a + k, n) & 1);
                    k = k + 1;
                }
                if (cmp <= 0) break;
                ptrs[j] = ptrs[j - gap];
                j = j - gap;
            }
            ptrs[j] = tmp;
        }
        gap = gap / 2;
    }
    long check = parity;
    for (int i = 0; i < n; i++) check += (long)ptrs[i] * (i & 7);
    print_i64(check);
    free((void*)block); free((void*)ptrs);
    return 0;
}
"""

register(Workload(
    name="256bzip2",
    sources={"bzip2_2000_main.c": _BZIP2_2000_MAIN},
    description="block-sort with redundant byte accesses (dominance filter shines)",
    characteristics=("check_dense",),
))

# ---------------------------------------------------------------------
# 300.twolf -- placement and routing (simulated annealing).
# Characteristics: struct grids moved with memcpy (the paper replaced
# its byte-wise pointer copy with memcpy, Section 5.1.2), a size-less
# extern table (SB 0.37%), and external-library state (LF 2.08%).
# ---------------------------------------------------------------------

_TWOLF_DATA = r"""
int feed_table[128];
"""

_TWOLF_LIB = r"""
extern int ext_rand_table[64];

int lib_rand(int i) {
    return ext_rand_table[i & 63];
}
"""

_TWOLF_MAIN = r"""
extern int feed_table[];        // size-less extern declaration
int lib_rand(int i);

struct cell {
    int x; int y;
    int width;
    long cost;
    struct cell *net;           // pointer member: metadata in copies
};

void mark_dirty(struct cell *c) {
    c->y = c->y;    // touches memory: a clobber for load CSE
}

long wire_cost(struct cell *c, struct cell *n) {
    int dx = c->x - n->x; if (dx < 0) dx = -dx;
    int dy = c->y - n->y; if (dy < 0) dy = -dy;
    return dx + dy;
}

int main() {
    int ncells = 100;
    struct cell *cells = (struct cell *) malloc(sizeof(struct cell) * ncells);
    struct cell *scratch = (struct cell *) malloc(sizeof(struct cell));
    int seed = 5;
    for (int i = 0; i < ncells; i++) {
        cells[i].x = i % 10; cells[i].y = i / 10;
        cells[i].width = (i % 4) + 1;
        cells[i].cost = 0;
        cells[i].net = &cells[(i * 7) % ncells];
    }
    long wirelength = 0;
    for (int pass = 0; pass < 30; pass++) {
        for (int i = 0; i < ncells; i++) {
            struct cell *c = &cells[i];
            c->cost = wire_cost(c, c->net);
            wirelength = wirelength + c->cost + c->width;
            mark_dirty(c);
            wirelength = wirelength + (c->width & 1);
        }
        int a = (pass * 13) % ncells;
        int b = (pass * 29) % ncells;
        // Swap two cells via memcpy -- the paper's fixed version of the
        // original byte-wise copy (Section 5.1.2 / 4.5).
        memcpy((void*)scratch, (void*)&cells[a], sizeof(struct cell));
        memcpy((void*)&cells[a], (void*)&cells[b], sizeof(struct cell));
        memcpy((void*)&cells[b], (void*)scratch, sizeof(struct cell));
        wirelength = wirelength + feed_table[pass & 127]
                   + feed_table[(pass * 3) & 127];
        for (int k = 0; k < 14; k++)
            wirelength = wirelength + lib_rand(pass * 14 + k);
    }
    print_i64(wirelength);
    free((void*)cells); free((void*)scratch);
    return 0;
}
"""

register(Workload(
    name="300twolf",
    sources={
        "twolf_data.c": _TWOLF_DATA,
        "twolf_lib.c": _TWOLF_LIB,
        "twolf_main.c": _TWOLF_MAIN,
    },
    description="annealing placement; memcpy struct swaps (fixed byte-wise copy)",
    characteristics=("size_zero_arrays", "external_globals", "memcpy_metadata"),
))

"""The functional-test corpus: ~200 generated small C programs.

The paper's artifact ships "around 200 small C programs which can be
executed to verify the functionality" (Appendix A.5): programs with
heap, stack, or global out-of-bounds accesses that must be reported,
and violation-free programs that must run unmodified.

This module generates an equivalent corpus systematically over the
dimensions

* memory region: heap / stack / global;
* element type: char / int / long / double;
* access kind: read / write;
* violation: none (boundary walk) / adjacent overflow / far overflow /
  underflow;

and *predicts* each approach's verdict from its model:

* SoftBound tracks exact allocation bounds: every out-of-bounds access
  is reported;
* Low-Fat pads allocations to the enclosing size class (one extra byte
  for one-past-the-end pointers), so an overflow is only reported when
  the access leaves the padded class slot; underflows always leave the
  object (the pointer is below the witness base).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..lowfat import layout

REGIONS = ("heap", "stack", "global")
ELEMENT_TYPES = {
    "char": ("char", 1, "(char)(%s)"),
    "int": ("int", 4, "(int)(%s)"),
    "long": ("long", 8, "(long)(%s)"),
    "double": ("double", 8, "(double)(%s)"),
}
ACCESS_KINDS = ("read", "write")
VIOLATIONS = ("none", "adjacent", "far", "underflow")

ELEMENT_COUNT = 24  # per test array


@dataclass
class FunctionalCase:
    name: str
    source: str
    #: expected outcome per approach: "ok" or "violation"
    expected: Dict[str, str]
    region: str
    element: str
    access: str
    violation: str


def _lowfat_expectation(element_size: int, index: int, width: int) -> str:
    """Predict Low-Fat's verdict for an access at ``index`` into an
    array of ELEMENT_COUNT elements of ``element_size`` bytes."""
    requested = ELEMENT_COUNT * element_size
    region = layout.size_class_for(requested)
    class_size = layout.allocation_size(region)
    offset = index * element_size
    if offset < 0:
        return "violation"  # below the witness base
    if offset + width <= class_size:
        return "ok"         # inside the padded class slot
    return "violation"


def _index_for(violation: str, element_size: int) -> Optional[int]:
    if violation == "none":
        return None
    if violation == "adjacent":
        return ELEMENT_COUNT            # one element past the end
    if violation == "far":
        # far enough to leave any padded class slot for our sizes
        return ELEMENT_COUNT + (1 << 16) // element_size
    if violation == "underflow":
        return -2
    raise ValueError(violation)


def _declaration(region: str, ctype: str) -> Dict[str, str]:
    if region == "heap":
        return {
            "decl": f"{ctype} *arr = ({ctype} *) "
                    f"malloc(sizeof({ctype}) * {ELEMENT_COUNT});",
            "cleanup": "free((void*)arr);",
            "prefix": "",
        }
    if region == "stack":
        return {
            "decl": f"{ctype} arr[{ELEMENT_COUNT}];",
            "cleanup": "",
            "prefix": "",
        }
    return {
        "decl": "",
        "cleanup": "",
        "prefix": f"{ctype} arr[{ELEMENT_COUNT}];\n",
    }


def _body(element: str, access: str, index: Optional[int]) -> str:
    ctype, size, cast = ELEMENT_TYPES[element]
    fill = "\n    ".join([
        f"for (int i = 0; i < {ELEMENT_COUNT}; i++)",
        f"    arr[i] = {cast % 'i % 7 + 1'};",
    ])
    printer = "print_f64" if element == "double" else "print_i64"
    accumulate = (
        "double acc = 0.0;" if element == "double" else "long acc = 0;"
    )
    walk = "\n    ".join([
        accumulate,
        f"for (int i = 0; i < {ELEMENT_COUNT}; i++) acc += arr[i];",
        f"{printer}(acc);",
    ])
    if index is None:
        return f"{fill}\n    {walk}"
    if access == "read":
        bad = f"acc += arr[{index}];\n    {printer}(acc);"
    else:
        bad = f"arr[{index}] = {cast % '1'};\n    {printer}(acc);"
    return f"{fill}\n    {walk}\n    {bad}"


def generate_case(region: str, element: str, access: str,
                  violation: str) -> FunctionalCase:
    ctype, size, _ = ELEMENT_TYPES[element]
    parts = _declaration(region, ctype)
    index = _index_for(violation, size)
    body = _body(element, access, index)
    source = (
        f"{parts['prefix']}"
        f"int main() {{\n"
        f"    {parts['decl']}\n"
        f"    {body}\n"
        f"    {parts['cleanup']}\n"
        f"    return 0;\n"
        f"}}\n"
    )
    if violation == "none":
        expected = {"softbound": "ok", "lowfat": "ok"}
    else:
        expected = {
            "softbound": "violation",
            "lowfat": (
                "violation" if index is None or index < 0
                else _lowfat_expectation(size, index, size)
            ),
        }
    name = f"{region}-{element}-{access}-{violation}"
    return FunctionalCase(
        name=name, source=source, expected=expected,
        region=region, element=element, access=access, violation=violation,
    )


def generate_corpus() -> List[FunctionalCase]:
    """All cases; 'none' cases collapse the read/write dimension."""
    cases: List[FunctionalCase] = []
    for region in REGIONS:
        for element in ELEMENT_TYPES:
            cases.append(generate_case(region, element, "read", "none"))
            for access in ACCESS_KINDS:
                for violation in ("adjacent", "far", "underflow"):
                    cases.append(
                        generate_case(region, element, access, violation)
                    )
    return cases


def corpus_by_name() -> Dict[str, FunctionalCase]:
    return {case.name: case for case in generate_corpus()}

"""MiniC workload kernels named after the paper's SPEC benchmarks."""

from .registry import Workload, all_names, all_workloads, get

__all__ = ["Workload", "all_names", "all_workloads", "get"]

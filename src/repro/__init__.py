"""Reproduction of "Memory Safety Instrumentations in Practice:
Usability, Performance, and Security Guarantees" (CGO'25).

A MemInstrument-style instrumentation framework implementing SoftBound
and Low-Fat Pointers over a from-scratch mini-IR compiler (MiniC
frontend, SSA optimizer with extension points) and a deterministic
virtual machine with a simulated 64-bit address space.

Quickstart::

    from repro import compile_program, run_program
    from repro.core import InstrumentationConfig

    src = '''
    int main() {
        int *a = (int*) malloc(sizeof(int) * 4);
        a[4] = 1;              // out of bounds!
        return 0;
    }
    '''
    result = run_program(compile_program(src, InstrumentationConfig.softbound()))
    print(result.describe())   # -> violation: ...
"""

from .driver import (
    CompileOptions,
    CompiledProgram,
    NOOP,
    RunResult,
    compile_and_run,
    compile_program,
    make_vm,
    run_program,
)
from .errors import (
    CompileError,
    MemoryFault,
    MemSafetyViolation,
    ProgramAbort,
    ReproError,
    VMError,
)

__version__ = "1.0.0"

__all__ = [
    "CompileError",
    "CompileOptions",
    "CompiledProgram",
    "MemSafetyViolation",
    "MemoryFault",
    "NOOP",
    "ProgramAbort",
    "ReproError",
    "RunResult",
    "VMError",
    "compile_and_run",
    "compile_program",
    "make_vm",
    "run_program",
    "__version__",
]

"""``python -m repro``: the command-line driver."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())

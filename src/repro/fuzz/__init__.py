"""At-scale differential fuzzing of the instrumentation stack.

The paper's transparency claim -- an instrumentation must never change
*defined* behaviour, only catch undefined behaviour -- is tested here
by construction: :mod:`.generator` emits seeded MiniC programs whose
behaviour is fully defined, :mod:`.oracle` runs each one through the
whole {VM engine} x {mechanism} x {check filter} matrix and compares
every observable, and :mod:`.reduce` shrinks any disagreement to a
minimal reproducer with delta debugging.

``python -m repro fuzz`` is the CLI entry point (see ``cli.py``).
"""

from .generator import (
    CODEGEN_OPCODES,
    CoverageReport,
    GeneratedProgram,
    ast_node_kinds,
    corpus_coverage,
    expected_node_kinds,
    generate_corpus,
    generate_program,
    ir_opcodes,
)
from .oracle import (
    FULL_MATRIX,
    MATRICES,
    QUICK_MATRIX,
    DifferentialOracle,
    FuzzReport,
    Matrix,
    Mismatch,
)
from .reduce import ddmin, minimize_mismatch, reduce_source

__all__ = [
    "CODEGEN_OPCODES",
    "CoverageReport",
    "DifferentialOracle",
    "FULL_MATRIX",
    "FuzzReport",
    "GeneratedProgram",
    "MATRICES",
    "Matrix",
    "Mismatch",
    "QUICK_MATRIX",
    "ast_node_kinds",
    "corpus_coverage",
    "ddmin",
    "expected_node_kinds",
    "generate_corpus",
    "generate_program",
    "ir_opcodes",
    "minimize_mismatch",
    "reduce_source",
]

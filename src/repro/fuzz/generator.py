"""Seeded, Csmith-style MiniC program generator.

Every program this module emits has **fully defined behaviour**: array
indices are masked into power-of-two bounds, integer divisors are
forced nonzero, shift amounts are masked below the bit width, loops
carry constant or monotonically decreasing trip counts, recursion is
depth-guarded, doubles are kept bounded before any float->int cast,
strings always stay NUL-terminated inside their buffer, and pointer
*addresses* never reach program output (only same-object comparisons
and differences, whose results do not depend on allocator layout).

That discipline is what makes the differential oracle sound: if two
cells of the {engine x mechanism x filter} matrix disagree on one of
these programs, the disagreement is a bug in the toolchain, never
"the program was allowed to do that".

The generator is deterministic: ``generate_program(seed, index)`` uses
a :class:`random.Random` seeded from ``(seed, index)`` only, so the
same arguments always produce byte-identical source text, on any
platform and in any process.

Coverage accounting lives here too: :func:`corpus_coverage` reports
which frontend AST node kinds and which IR opcodes a corpus actually
exercises, against the sets the frontend defines
(:func:`expected_node_kinds`) and codegen can emit
(:data:`CODEGEN_OPCODES`).
"""

from __future__ import annotations

import dataclasses
import inspect
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..frontend import ast as cast
from ..frontend import compile_source, parse
from ..ir.instructions import CAST_OPS, FLOAT_BINOPS, INT_BINOPS

#: IR opcodes the MiniC codegen can emit.  ``select`` exists in the IR
#: but no frontend construct lowers to it (ternaries become control
#: flow + phi), and ``fptoui`` is unreachable because MiniC converts
#: floating values through ``fptosi`` for every integer target.
CODEGEN_OPCODES: FrozenSet[str] = frozenset(
    {
        "alloca", "load", "store", "gep", "phi",
        "icmp", "fcmp", "ret", "br", "condbr", "call", "unreachable",
    }
    | set(INT_BINOPS)
    | set(FLOAT_BINOPS)
    | (set(CAST_OPS) - {"fptoui"})
)


def expected_node_kinds() -> FrozenSet[str]:
    """All concrete expression/statement AST classes the frontend defines."""
    kinds: Set[str] = set()
    for obj in vars(cast).values():
        if not inspect.isclass(obj):
            continue
        if obj in (cast.Expr, cast.Stmt):
            continue
        if issubclass(obj, (cast.Expr, cast.Stmt)):
            kinds.add(obj.__name__)
    return frozenset(kinds)


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated workload: a name, its seeds, and its source units."""

    name: str
    seed: int
    index: int
    sources: Dict[str, str]
    features: Tuple[str, ...] = ()

    @property
    def main_source(self) -> str:
        return self.sources["main.c"]


# ---------------------------------------------------------------------------
# expression generation
# ---------------------------------------------------------------------------

#: ``(name, mask)`` for every always-present int-element array; an index
#: expression ``(e) & mask`` is in bounds by construction.
_INT_ARRAYS = (("g_i", 15), ("l_i", 7))

_EXACT_DOUBLES = ("0.5", "1.25", "2.0", "0.75", "3.5", "0.0", "6.25", "12.5")


@dataclass
class _Scope:
    """What the expression generator may reference at a given point."""

    int_vars: List[str] = field(default_factory=list)
    double_vars: List[str] = field(default_factory=list)
    #: generator may call helpers / use globals, pointers, arrays
    full: bool = False
    #: the second translation unit (x_arr / x_val / x_mix) exists
    two_unit: bool = False


class _ExprGen:
    """Generates defined-behaviour MiniC expressions as source text."""

    def __init__(self, rng: random.Random, scope: _Scope):
        self.rng = rng
        self.scope = scope

    # -- integers -------------------------------------------------------
    def int_lit(self) -> str:
        r = self.rng
        roll = r.randrange(10)
        if roll == 0:
            return f"0x{r.randrange(256):x}"
        if roll == 1:
            return f"'{r.choice('aAkQz9 #')}'"
        return str(r.randint(-99, 99))

    def int_atom(self) -> str:
        r = self.rng
        scope = self.scope
        choices: List[Callable[[], str]] = []
        if scope.int_vars:
            choices.append(lambda: r.choice(scope.int_vars))
        if scope.full:
            choices.extend([
                lambda: self._indexed(),
                lambda: r.choice(["g_s.a", "sp->a", "g_acc"]),
                lambda: f"g_s.b[({self.int_expr(3)}) & 3]",
                lambda: f"sp->b[({self.int_expr(3)}) & 3]",
                lambda: f"(int)g_c[({self.int_expr(3)}) & 15]",
                lambda: f"*(p + (({self.int_expr(3)}) & 7))",
                lambda: f"*(q + (({self.int_expr(3)}) & 7))",
                lambda: f"*(hp + (({self.int_expr(3)}) & 15))",
                lambda: f"g_m[({self.int_expr(3)}) & 3][({self.int_expr(3)}) & 3]",
            ])
            if scope.two_unit:
                choices.append(lambda: f"x_arr[({self.int_expr(3)}) & 15]")
                choices.append(lambda: "x_val")
        if not choices:
            return self.int_lit()
        return r.choice(choices)()

    def _indexed(self) -> str:
        name, mask = self.rng.choice(_INT_ARRAYS)
        return f"{name}[({self.int_expr(3)}) & {mask}]"

    def int_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 3:
            return self.int_lit() if r.randrange(2) else self.int_atom()
        roll = r.randrange(20)
        nxt = depth + 1
        if roll <= 2:
            return self.int_lit()
        if roll <= 5:
            return self.int_atom()
        if roll == 6:
            op = r.choice(["-", "~", "!"])
            return f"({op}({self.int_expr(nxt)}))"
        if roll <= 9:
            op = r.choice(["+", "-", "*", "&", "|", "^"])
            return f"(({self.int_expr(nxt)}) {op} ({self.int_expr(nxt)}))"
        if roll == 10:
            op = r.choice(["/", "%"])
            return (f"(({self.int_expr(nxt)}) {op} "
                    f"((({self.int_expr(nxt)}) & 15) + 1))")
        if roll == 11:
            op = r.choice(["<<", ">>"])
            return (f"(({self.int_expr(nxt)}) {op} "
                    f"(({self.int_expr(nxt)}) & 7))")
        if roll == 12:
            op = r.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"(({self.int_expr(nxt)}) {op} ({self.int_expr(nxt)}))"
        if roll == 13:
            op = r.choice(["&&", "||"])
            return f"(({self.int_expr(nxt)}) {op} ({self.int_expr(nxt)}))"
        if roll == 14:
            return (f"(({self.cond_expr(nxt)}) ? "
                    f"({self.int_expr(nxt)}) : ({self.int_expr(nxt)}))")
        if roll == 15:
            ty = r.choice(["int", "long", "unsigned", "char"])
            return f"(({ty})({self.int_expr(nxt)}))"
        if roll == 16:
            # double round trip, bounded so fptosi is always defined
            return f"((long)((double)(({self.int_expr(nxt)}) & 255)))"
        if roll == 17 and self.scope.full:
            return self.int_call(nxt)
        if roll == 18 and self.scope.full:
            return self.pointer_int(nxt)
        return self.int_atom()

    def int_call(self, depth: int) -> str:
        r = self.rng
        a = self.int_expr(depth)
        b = self.int_expr(depth)
        roll = r.randrange(5)
        if roll == 0:
            return f"mix0({a}, {b})"
        if roll == 1:
            return f"mix1({a}, {b})"
        if roll == 2:
            return f"fp({a}, {b})"
        if roll == 3:
            return f"rec0((({a}) & 3) + 2, ({b}) & 15)"
        return f"pick(({a}) & 63)"

    def pointer_int(self, depth: int) -> str:
        """Integer-valued pointer expressions whose results do not
        depend on allocator layout (same-object comparison/difference
        only -- never a raw address)."""
        r = self.rng
        roll = r.randrange(4)
        if roll == 0:
            return f"((q + (({self.int_expr(depth)}) & 7)) - q)"
        if roll == 1:
            a = self.int_expr(depth)
            b = self.int_expr(depth)
            return f"((p + (({a}) & 7)) < (p + (({b}) & 7)))"
        if roll == 2:
            return "(p == np)"
        return "(q != (long *)0)"

    def cond_expr(self, depth: int = 2) -> str:
        r = self.rng
        roll = r.randrange(4)
        if roll == 0:
            op = r.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"(({self.int_expr(depth)}) {op} ({self.int_expr(depth)}))"
        if roll == 1:
            op = r.choice(["&&", "||"])
            return (f"((({self.int_expr(depth)}) > {r.randint(-9, 9)}) {op} "
                    f"(({self.int_expr(depth)}) != {r.randint(-9, 9)}))")
        if roll == 2:
            return f"(!(({self.int_expr(depth)}) & {r.randrange(1, 8)}))"
        return f"(({self.int_expr(depth)}) & 1)"

    # -- doubles --------------------------------------------------------
    def double_atom(self) -> str:
        r = self.rng
        choices = [lambda: r.choice(_EXACT_DOUBLES)]
        if self.scope.double_vars:
            choices.append(lambda: r.choice(self.scope.double_vars))
        if self.scope.full:
            choices.extend([
                lambda: f"g_d[({self.int_expr(3)}) & 7]",
                lambda: r.choice(["g_s.c", "sp->c"]),
                lambda: f"((double)(({self.int_expr(3)}) & 255))",
            ])
        return r.choice(choices)()

    def double_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth >= 2:
            return self.double_atom()
        roll = r.randrange(8)
        nxt = depth + 1
        if roll <= 2:
            return self.double_atom()
        if roll <= 4:
            op = r.choice(["+", "-", "*"])
            return f"(({self.double_expr(nxt)}) {op} ({self.double_expr(nxt)}))"
        if roll == 5:
            return (f"(({self.double_expr(nxt)}) / "
                    f"((double)((({self.int_expr(nxt)}) & 7) + 1)))")
        if roll == 6:
            return f"(({self.double_expr(nxt)}) % {r.choice(['2.5', '3.25', '1.5'])})"
        return f"(-({self.double_expr(nxt)}))"


# ---------------------------------------------------------------------------
# program generation
# ---------------------------------------------------------------------------

class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str = "") -> None:
        if not text:
            self.lines.append("")
            return
        self.lines.append("    " * self.indent + text)

    def open(self, text: str) -> None:
        self.emit(text)
        self.indent += 1

    def close(self, text: str = "}") -> None:
        self.indent -= 1
        self.emit(text)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


class _ProgramBuilder:
    def __init__(self, rng: random.Random, two_unit: bool):
        self.rng = rng
        self.two_unit = two_unit
        self.scope = _Scope(
            int_vars=["v0", "v1", "v2", "v3", "v4"],
            double_vars=["f0"],
            full=True,
            two_unit=two_unit,
        )
        self.gen = _ExprGen(rng, self.scope)
        self.features: Set[str] = {"struct", "nested-array", "heap",
                                   "function-pointer", "recursion"}
        if two_unit:
            self.features.add("two-unit")
            self.features.add("sizeless-extern-array")
        self.w = _Writer()
        self._uid = 0

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    # -- statements -----------------------------------------------------
    def random_stmt(self, depth: int = 0) -> None:
        r = self.rng
        g = self.gen
        w = self.w
        roll = r.randrange(20 if depth < 2 else 12)
        if roll <= 2:
            var = r.choice(self.scope.int_vars)
            op = r.choice(["=", "+=", "-=", "^=", "&=", "|=", "*="])
            w.emit(f"{var} {op} {g.int_expr()};")
        elif roll == 3:
            var = r.choice(self.scope.int_vars)
            if r.randrange(2):
                w.emit(f"{var} <<= ({g.int_expr(2)}) & 7;")
            else:
                w.emit(f"{var} /= (({g.int_expr(2)}) & 7) + 1;")
        elif roll == 4:
            tgt = r.choice(["f0", f"g_d[({g.int_expr(2)}) & 7]",
                            "g_s.c", "sp->c"])
            op = r.choice(["=", "+=", "-=", "*="])
            w.emit(f"{tgt} {op} {g.double_expr()};")
            self.features.add("float")
        elif roll == 5:
            name, mask = r.choice(_INT_ARRAYS)
            w.emit(f"{name}[({g.int_expr()}) & {mask}] = {g.int_expr()};")
        elif roll == 6:
            w.emit(f"g_m[({g.int_expr(2)}) & 3][({g.int_expr(2)}) & 3] "
                   f"= {g.int_expr()};")
        elif roll == 7:
            tgt = r.choice(["g_s.a", "sp->a",
                            f"g_s.b[({g.int_expr(2)}) & 3]",
                            f"sp->b[({g.int_expr(2)}) & 3]"])
            w.emit(f"{tgt} = {g.int_expr()};")
        elif roll == 8:
            ptr, mask = r.choice([("p", 7), ("q", 7), ("hp", 15)])
            w.emit(f"*({ptr} + (({g.int_expr(2)}) & {mask})) = {g.int_expr()};")
        elif roll == 9:
            tgt = r.choice([r.choice(self.scope.int_vars),
                            f"g_i[({g.int_expr(2)}) & 15]"])
            w.emit(f"{tgt}{r.choice(['++', '--'])};")
        elif roll == 10:
            # stores stay below index 16 so g_c[31] == 0 survives and
            # every later strlen/strcmp stays inside the buffer
            w.emit(f"g_c[({g.int_expr(2)}) & 15] = "
                   f"(char)(({g.int_expr(2)}) & 127);")
            self.features.add("strings")
        elif roll == 11:
            var = r.choice(self.scope.int_vars)
            w.emit(f"{var} = {g.int_call(1)};")
        elif roll == 12:
            self.if_stmt(depth)
        elif roll == 13:
            self.for_stmt(depth)
        elif roll == 14:
            self.while_stmt(depth)
        elif roll == 15:
            self.do_while_stmt(depth)
        elif roll == 16:
            self.local_block(depth)
        elif roll == 17:
            w.emit(f"fp = (({g.cond_expr()}) != 0) ? mix0 : mix1;")
        elif roll == 18:
            w.emit(f"p = &g_i[{r.randrange(0, 9)}];")
        else:
            self.mem_stmt()

    def if_stmt(self, depth: int) -> None:
        w = self.w
        w.open(f"if ({self.gen.cond_expr()}) {{")
        for _ in range(self.rng.randint(1, 2)):
            self.random_stmt(depth + 1)
        if self.rng.randrange(2):
            w.close("} else {")
            w.indent += 1
            for _ in range(self.rng.randint(1, 2)):
                self.random_stmt(depth + 1)
        w.close()

    def for_stmt(self, depth: int) -> None:
        r = self.rng
        w = self.w
        i = f"i{self.uid()}"
        trip = r.randint(2, 6)
        w.open(f"for (int {i} = 0; {i} < {trip}; {i}++) {{")
        if r.randrange(3) == 0:
            w.emit(f"if ({i} == {r.randrange(trip)}) {{ continue; }}")
        for _ in range(r.randint(1, 2)):
            self.random_stmt(depth + 1)
        if r.randrange(3) == 0:
            w.emit(f"if ({i} > {r.randrange(1, trip + 1)}) {{ break; }}")
        w.close()

    def while_stmt(self, depth: int) -> None:
        r = self.rng
        w = self.w
        n = f"n{self.uid()}"
        w.emit(f"int {n} = {r.randint(2, 6)};")
        w.open(f"while ({n} > 0) {{")
        w.emit(f"{n} = {n} - 1;")
        for _ in range(r.randint(1, 2)):
            self.random_stmt(depth + 1)
        w.close()

    def do_while_stmt(self, depth: int) -> None:
        r = self.rng
        w = self.w
        n = f"n{self.uid()}"
        w.emit(f"int {n} = {r.randint(1, 5)};")
        w.open("do {")
        w.emit(f"{n} = {n} - 1;")
        for _ in range(r.randint(1, 2)):
            self.random_stmt(depth + 1)
        w.close(f"}} while ({n} > 0);")

    def local_block(self, depth: int) -> None:
        r = self.rng
        w = self.w
        t = f"t{self.uid()}"
        w.open("{")
        w.emit(f"long {t} = {self.gen.int_expr()};")
        self.scope.int_vars.append(t)
        for _ in range(r.randint(1, 2)):
            self.random_stmt(depth + 1)
        self.scope.int_vars.remove(t)
        w.emit(f"{r.choice(['v2', 'g_acc'])} += ({t}) & 1023;")
        w.close()

    def mem_stmt(self) -> None:
        r = self.rng
        g = self.gen
        w = self.w
        roll = r.randrange(6)
        self.features.add("memcpy-family")
        if roll == 0:
            w.emit("memcpy(l_i, g_i, 32);")
        elif roll == 1:
            w.emit(f"memset(g_c + 16, ({g.int_expr(2)}) & 63, 8);")
            self.features.add("strings")
        elif roll == 2:
            w.emit("memmove(g_c + 2, g_c, 6);")
            self.features.add("strings")
        elif roll == 3:
            w.emit(f"v2 += (long)strlen(g_c);")
            self.features.add("strings")
        elif roll == 4:
            lit = r.choice(["fuzz", "abc", "mini"])
            w.emit(f'v0 += (int)strcmp(g_c, "{lit}");')
            self.features.add("strings")
        else:
            w.emit(f"memmove(hp + 2, hp, 48);")

    # -- fixed sections -------------------------------------------------
    def coverage_preamble(self) -> None:
        """A deterministic-shape block (seeded constants) that touches
        every AST node kind and every codegen-emittable opcode, so each
        single program is a full-coverage workload on its own."""
        r = self.rng
        w = self.w

        def k(lo: int = 1, hi: int = 9) -> int:
            return r.randint(lo, hi)

        w.emit("/* coverage preamble: every construct, seeded constants */")
        w.emit(f"v0 = v0 + (g_i[(v1) & 15] - (v2 ^ {k()}));")
        w.emit(f"u0 = (u0 | (unsigned)(v0 & 63)) / (((u0) & 7) + {k(1, 5)});")
        w.emit(f"u0 = u0 % (((unsigned)v1 & 15) + {k(2, 7)});")
        w.emit(f"u0 = u0 >> ((v0) & 7);")
        w.emit(f"v2 = v2 << ((v1) & 15);")
        w.emit(f"v2 = (v2 >> {k(1, 7)}) + v1 / (((v2) & 31) + 1);")
        w.emit(f"v0 = v0 + v1 % (((v0) & 7) + {k(2, 5)});")
        w.emit("v4 = (char)(v0 & 127);")
        w.emit("v2 = v2 + (long)u0;")
        w.emit(f"f0 = f0 * 1.5 + (double)(v0 & 255) - g_d[(v1) & 7];")
        w.emit(f"f0 = f0 / ((double)((v0 & 7) + {k(1, 4)}));")
        w.emit("f0 = (f0 % 2.5) + (double)u0;")
        w.emit("f1 = (float)(f0 % 3.5);")
        w.emit("f0 = f0 + (double)f1;")
        w.emit("v0 = v0 + (int)((double)(v1 & 255));")
        w.emit(f"v0 = v0 + (f0 > {r.choice(_EXACT_DOUBLES)}) - (f1 != 0.0);")
        w.emit("if (p != np) { v0++; } else { v0--; }")
        w.emit("v2 = v2 + ((q + ((v0) & 7)) - q);")
        w.open("{")
        w.emit("long adr = (long)(p + ((v1) & 7));")
        w.emit("int *rp = (int *)adr;")
        w.emit("v0 = v0 + *rp;")
        w.close()
        self.features.add("inttoptr-roundtrip")
        w.open("{")
        w.emit("char *cp = (char *)g_i;")
        w.emit(f"v0 = v0 + (int)cp[(v2) & 63];")
        w.close()
        w.emit(f"v0 = (v1 > {k(0, 5)} && v2 < {k(6, 12)}) "
               f"? pick(v0 & 63) : (v1 < {k(0, 3)} || v0 > {k()});")
        w.emit(f"v1 = (v2 = v2 + {k()}, (int)(v2 & 31));")
        w.emit("v1 = v1 + (int)sizeof(struct S0) - (int)sizeof(long);")
        w.emit(f"v0 = v0 + '{r.choice('AQz#')}' - (-(~v1) + !v2);")
        w.emit('strcpy(g_c, "fuzzcov");')
        w.emit("v2 = v2 + (long)strlen(g_c);")
        w.emit('v0 = v0 + (int)strcmp(g_c, "fuzzcov");')
        w.emit("memmove(g_c + 2, g_c, 6);")
        w.emit("memcpy(l_i, g_i, 32);")
        w.emit(f"memset(g_c + 16, (v0) & 63, {k(4, 8)});")
        self.features.add("memcpy-family")
        self.features.add("strings")
        w.emit("g_s.a = g_s.a + v2;")
        w.emit("sp->c = sp->c + 0.25;")
        w.emit("g_s.b[(v0) & 3] = sp->b[(v1) & 3] + 1;")
        w.emit(f"g_m[(v0) & 3][(v1) & 3] = g_m[(v2) & 3][(v0) & 3] + {k()};")
        w.open(f"{{ int w0 = {k(2, 5)}; do {{")
        w.emit("v0 = v0 + w0;")
        w.close(f"w0 = w0 - 1; }} while (w0 > 0); }}")
        w.open(f"{{ int u1 = {k(3, 6)}; while (u1 > 0) {{")
        w.emit("u1 = u1 - 1;")
        w.emit("if (u1 == 2) { continue; }")
        w.emit(f"if (u1 == {k(4, 5)}) {{ break; }}")
        w.emit("v1 = v1 + u1;")
        w.close("} }")
        w.emit(f"fp = (v0 > {k(0, 5)}) ? mix1 : mix0;")
        w.emit("v2 = v2 + fp(v2 & 1023, v1 & 511);")
        w.emit(f"v2 = v2 + rec0((v0 & 3) + 2, v1 & 15);")
        w.emit("hp = (long *)realloc(hp, 256);")
        self.features.add("realloc")
        w.emit("v2 = v2 + *(hp + ((v0) & 15));")
        w.open("{")
        w.emit("int *cz = (int *)calloc(8, 4);")
        w.emit("v0 = v0 + cz[(v1) & 7];")
        w.emit("free(cz);")
        w.close()
        if self.two_unit:
            w.emit("v2 = v2 + x_mix((long)(v0 & 255));")
            w.emit(f"x_arr[(v1) & 15] = x_arr[(v0) & 15] + {k()};")

    def prints(self) -> None:
        w = self.w
        w.emit("/* observables */")
        for v in ("v0", "v1", "v2", "v4"):
            w.emit(f"print_i64((long){v});")
        w.emit("print_i64((long)u0);")
        w.emit("print_i64(g_acc);")
        w.emit("print_f64(f0);")
        w.emit("print_f64((double)f1);")
        w.emit("print_f64(g_s.c);")
        w.emit("print_i64(g_s.a);")
        w.open("{ long cs = 0; for (int ci = 0; ci < 16; ci++) {")
        w.emit("cs = cs * 31 + g_i[ci];")
        w.close("} print_i64(cs); }")
        w.open("{ long cs = 0; for (int ci = 0; ci < 8; ci++) {")
        w.emit("cs = cs * 31 + g_l[ci] + (long)(g_d[ci] * 4.0);")
        w.close("} print_i64(cs); }")
        w.open("{ long cs = 0; for (int ci = 0; ci < 32; ci++) {")
        w.emit("cs = cs * 7 + (long)g_c[ci];")
        w.close("} print_i64(cs); }")
        w.open("{ long cs = 0; for (int ci = 0; ci < 16; ci++) {")
        w.emit("cs = cs + hp[ci] * (ci + 1);")
        w.close("} print_i64(cs); }")
        w.open("{ long cs = 0; for (int ci = 0; ci < 4; ci++) "
               "{ for (int cj = 0; cj < 4; cj++) {")
        w.emit("cs = cs * 17 + g_m[ci][cj];")
        w.close("} } print_i64(cs); }")
        w.open("{ long cs = 0; for (int ci = 0; ci < 4; ci++) {")
        w.emit("cs = cs * 13 + g_s.b[ci] + l_i[ci];")
        w.close("} print_i64(cs); }")
        if self.two_unit:
            w.open("{ long cs = 0; for (int ci = 0; ci < 16; ci++) {")
            w.emit("cs = cs * 5 + x_arr[ci];")
            w.close("} print_i64(cs); }")
            w.emit("print_i64(x_val);")
        w.emit('print_str("done");')

    def helper_body(self) -> str:
        """Small pure integer expression over params a/b."""
        gen = _ExprGen(self.rng, _Scope(int_vars=["a", "b"]))
        return gen.int_expr(1)

    def build_main_unit(self) -> str:
        r = self.rng
        w = self.w
        w.emit("/* generated by repro.fuzz.generator -- defined behaviour only */")
        w.emit("struct S0 { long a; int b[4]; double c; };")
        w.emit("")
        if self.two_unit:
            w.emit("extern int x_arr[];")
            w.emit("extern long x_val;")
            w.emit("long x_mix(long v);")
            w.emit("")
        w.emit(f"int g_i[16];")
        w.emit(f"long g_l[8];")
        w.emit(f"char g_c[32];")
        w.emit(f"double g_d[8];")
        w.emit(f"int g_m[4][4];")
        w.emit(f"struct S0 g_s;")
        w.emit(f"long g_acc = {r.randint(-50, 50)};")
        w.emit("")
        w.emit(f"static long mix0(long a, long b) {{ "
               f"return ({self.helper_body()}) + a - b; }}")
        w.emit(f"static long mix1(long a, long b) {{ "
               f"return ({self.helper_body()}) ^ (a + b); }}")
        w.emit("")
        w.open("static long rec0(long d, long x) {")
        w.emit("if (d <= 0) { return x; }")
        w.emit(f"return rec0(d - 1, x + d) + {r.randint(1, 9)};")
        w.close()
        w.emit("")
        w.open("static int pick(int x) {")
        w.open(f"if (x > {r.randint(10, 40)}) {{")
        w.emit(f"return x - {r.randint(1, 9)};")
        w.close("} else {")
        w.indent += 1
        w.emit(f"return x + {r.randint(1, 9)};")
        w.close()
        w.close()
        w.emit("")
        w.open("int main() {")
        w.emit(f"int v0 = {r.randint(-50, 50)};")
        w.emit(f"int v1 = {r.randint(-50, 50)};")
        w.emit(f"long v2 = {r.randint(-50, 50)};")
        w.emit(f"int v3 = {r.randint(-50, 50)};")
        w.emit(f"char v4 = {r.randint(0, 60)};")
        w.emit(f"unsigned u0 = {r.randint(0, 99)}u;")
        w.emit(f"double f0 = {r.choice(_EXACT_DOUBLES)};")
        w.emit("float f1 = 0.0;")
        w.emit("int l_i[8];")
        w.emit("int *np = NULL;")
        w.emit("int *p = &g_i[0];")
        w.emit("long *q = &g_l[0];")
        w.emit("struct S0 *sp = &g_s;")
        w.emit("long (*fp)(long, long) = mix0;")
        w.emit("long *hp = (long *)malloc(128);")
        w.emit("/* fills: every byte defined before any read */")
        w.open("for (int fi = 0; fi < 16; fi++) {")
        w.emit(f"g_i[fi] = fi * {r.randint(1, 9)} - {r.randint(0, 20)};")
        w.emit(f"hp[fi] = (long)(fi ^ {r.randint(0, 31)});")
        w.close()
        w.open("for (int fi = 0; fi < 8; fi++) {")
        w.emit(f"g_l[fi] = fi + {r.randint(-9, 9)};")
        w.emit(f"g_d[fi] = (double)fi * {r.choice(['0.5', '0.25', '1.5'])};")
        w.emit(f"l_i[fi] = fi * {r.randint(1, 5)};")
        w.close()
        w.open("for (int fi = 0; fi < 31; fi++) {")
        w.emit(f"g_c[fi] = (char)(((fi + {r.randint(0, 9)}) & 15) + 1);")
        w.close()
        w.emit("g_c[31] = (char)0;")
        w.open("for (int fi = 0; fi < 4; fi++) {")
        w.emit(f"g_s.b[fi] = fi + {r.randint(0, 9)};")
        w.open("for (int fj = 0; fj < 4; fj++) {")
        w.emit(f"g_m[fi][fj] = fi * 4 + fj - {r.randint(0, 9)};")
        w.close()
        w.close()
        w.emit(f"g_s.a = {r.randint(-30, 30)};")
        w.emit(f"g_s.c = {r.choice(_EXACT_DOUBLES)};")
        if self.two_unit:
            w.open("for (int fi = 0; fi < 16; fi++) {")
            w.emit(f"x_arr[fi] = fi * {r.randint(1, 7)};")
            w.close()
        self.coverage_preamble()
        w.emit("/* random body */")
        for _ in range(r.randint(8, 16)):
            self.random_stmt()
        self.prints()
        w.emit("free(hp);")
        w.emit("return 0;")
        w.close()
        return self.w.render()

    def build_lib_unit(self) -> str:
        r = self.rng
        w = _Writer()
        w.emit("/* second translation unit: externally visible state */")
        w.emit("int x_arr[16];")
        w.emit(f"long x_val = {r.randint(-40, 40)};")
        w.emit("")
        gen = _ExprGen(r, _Scope(int_vars=["v"]))
        w.open("long x_mix(long v) {")
        w.emit(f"x_val = x_val + ((v) & 63);")
        w.emit(f"return ({gen.int_expr(1)}) + x_val;")
        w.close()
        return w.render()


def generate_program(seed: int, index: int = 0) -> GeneratedProgram:
    """Deterministically generate one defined-behaviour MiniC program."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    two_unit = rng.randrange(3) == 0
    builder = _ProgramBuilder(rng, two_unit)
    sources = {"main.c": builder.build_main_unit()}
    if two_unit:
        sources["lib.c"] = builder.build_lib_unit()
    return GeneratedProgram(
        name=f"fuzz-s{seed}-p{index:04d}",
        seed=seed,
        index=index,
        sources=sources,
        features=tuple(sorted(builder.features)),
    )


def generate_corpus(seed: int, count: int) -> List[GeneratedProgram]:
    return [generate_program(seed, i) for i in range(count)]


# ---------------------------------------------------------------------------
# coverage accounting
# ---------------------------------------------------------------------------

def ast_node_kinds(source: str, name: str = "main.c") -> Set[str]:
    """AST node kinds (class names) a source unit exercises."""
    kinds: Set[str] = set()
    seen: Set[int] = set()

    def walk(obj: object) -> None:
        if isinstance(obj, (cast.Expr, cast.Stmt)):
            kinds.add(type(obj).__name__)
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            if id(obj) in seen:
                return
            seen.add(id(obj))
            for f in dataclasses.fields(obj):
                walk(getattr(obj, f.name))
        elif isinstance(obj, (list, tuple)):
            for item in obj:
                walk(item)

    walk(parse(source, name))
    return kinds


def ir_opcodes(sources: Dict[str, str]) -> Set[str]:
    """IR opcodes the (uninstrumented, unoptimised) codegen emits."""
    opcodes: Set[str] = set()
    for name, source in sources.items():
        module = compile_source(source, name)
        for fn in module.functions.values():
            for block in fn.blocks:
                for inst in block:
                    opcodes.add(inst.opcode)
    return opcodes


@dataclass
class CoverageReport:
    """What a corpus exercises vs. what the toolchain defines."""

    node_kinds: FrozenSet[str]
    missing_node_kinds: FrozenSet[str]
    opcodes: FrozenSet[str]
    missing_opcodes: FrozenSet[str]
    features: Counter

    @property
    def complete(self) -> bool:
        return not self.missing_node_kinds and not self.missing_opcodes

    def summary(self) -> str:
        lines = [
            f"AST node kinds: {len(self.node_kinds)} exercised, "
            f"{len(self.missing_node_kinds)} missing",
            f"IR opcodes:     {len(self.opcodes)} exercised, "
            f"{len(self.missing_opcodes)} missing",
        ]
        if self.missing_node_kinds:
            lines.append("missing kinds: "
                         + ", ".join(sorted(self.missing_node_kinds)))
        if self.missing_opcodes:
            lines.append("missing opcodes: "
                         + ", ".join(sorted(self.missing_opcodes)))
        for feature, count in sorted(self.features.items()):
            lines.append(f"  feature {feature}: {count} programs")
        return "\n".join(lines)


def corpus_coverage(programs: Iterable[GeneratedProgram]) -> CoverageReport:
    kinds: Set[str] = set()
    opcodes: Set[str] = set()
    features: Counter = Counter()
    for program in programs:
        for unit_name, source in program.sources.items():
            kinds |= ast_node_kinds(source, unit_name)
        opcodes |= ir_opcodes(program.sources)
        features.update(program.features)
    return CoverageReport(
        node_kinds=frozenset(kinds),
        missing_node_kinds=frozenset(expected_node_kinds() - kinds),
        opcodes=frozenset(opcodes),
        missing_opcodes=frozenset(CODEGEN_OPCODES - opcodes),
        features=features,
    )

"""Delta-debugging minimization of mismatching fuzz programs.

Classic ``ddmin`` (Zeller & Hildebrandt) over *source lines*: the
generator emits one statement per line precisely so that removing a
subset of lines usually yields another syntactically valid program.
Candidates whose braces/parens no longer balance are skipped without
consulting the oracle, and candidates that fail to compile can never
satisfy the predicate for a non-compile mismatch (a ``CompileError``
surfaces as a *harness-failure* mismatch, which has a different kind
than the failure being preserved), so the reducer cannot trade the
original bug for a syntax error.

Plain ddmin stalls on brace *pairs* -- removing either line of an
``if (...) { ... }`` skeleton alone unbalances the file -- so
:func:`reduce_source` follows it with a pairwise pass that deletes two
lines at a time until a fixpoint.

:func:`minimize_mismatch` is the top-level driver: it re-checks a
:class:`~repro.fuzz.oracle.Mismatch`'s sources through an oracle,
keeping only candidates that still produce a mismatch with the same
``(kind, label, engine)`` signature, and minimizes each translation
unit in turn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .oracle import Mismatch

Predicate = Callable[[str], bool]


def _balanced(text: str) -> bool:
    """Cheap syntactic prefilter: brace/paren/bracket balance, with
    nesting never going negative.  (String/char literals can in theory
    fool this; the predicate is still the ground truth -- this only
    prunes candidates that cannot possibly parse.)"""
    depth = {"{": 0, "(": 0, "[": 0}
    close = {"}": "{", ")": "(", "]": "["}
    for ch in text:
        if ch in depth:
            depth[ch] += 1
        elif ch in close:
            depth[close[ch]] -= 1
            if depth[close[ch]] < 0:
                return False
    return all(v == 0 for v in depth.values())


@dataclass
class _Budget:
    """Caps how many times the (expensive) predicate may run."""

    limit: int
    spent: int = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit


def _ddmin(lines: List[str], predicate: Callable[[List[str]], bool],
           budget: _Budget) -> List[str]:
    n = 2
    while len(lines) >= 2 and not budget.exhausted:
        chunk = max(1, len(lines) // n)
        reduced = False
        start = 0
        while start < len(lines) and not budget.exhausted:
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and predicate(candidate):
                # keep the same position: the next chunk has shifted
                # into this window
                lines = candidate
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            n = min(len(lines), n * 2)
    return lines


def _pair_pass(lines: List[str], predicate: Callable[[List[str]], bool],
               budget: _Budget) -> List[str]:
    """Remove *pairs* of lines (e.g. a ``{`` opener and its ``}``)
    that single-line ddmin cannot touch without unbalancing."""
    changed = True
    while changed and not budget.exhausted:
        changed = False
        for i in range(len(lines)):
            for j in range(i + 1, len(lines)):
                candidate = lines[:i] + lines[i + 1:j] + lines[j + 1:]
                if candidate and predicate(candidate):
                    lines = candidate
                    changed = True
                    break
            if changed or budget.exhausted:
                break
    return lines


def ddmin(lines: Sequence[str], predicate: Callable[[List[str]], bool],
          max_checks: int = 2000) -> List[str]:
    """Minimize ``lines`` to a subset still satisfying ``predicate``.

    ``predicate(list_of_lines)`` must hold for the input; the result
    is a subset for which it still holds and from which no single
    tested chunk could be removed (1-minimality up to the
    ``max_checks`` budget).
    """
    lines = list(lines)
    if not predicate(lines):
        raise ValueError("ddmin: predicate does not hold on the input")
    budget = _Budget(max_checks)

    def counted(candidate: List[str]) -> bool:
        return budget.take() and predicate(candidate)

    return _ddmin(lines, counted, budget)


def reduce_source(source: str, predicate: Predicate,
                  max_checks: int = 2000) -> str:
    """Line-based ddmin (plus a pairwise cleanup pass) over one
    source text.

    ``predicate(source_text)`` decides whether a candidate still
    reproduces.  Unbalanced candidates are rejected for free; only
    real predicate evaluations count against ``max_checks``.
    """
    budget = _Budget(max_checks)

    def line_predicate(lines: List[str]) -> bool:
        text = "\n".join(lines)
        if not _balanced(text):
            return False
        return budget.take() and predicate(text)

    lines = _ddmin(source.split("\n"), line_predicate, budget)
    lines = _pair_pass(lines, line_predicate, budget)
    return "\n".join(lines)


def mismatch_signature(mismatch: Mismatch) -> tuple:
    """What the reducer preserves: the failure's kind and cell."""
    return (mismatch.kind, mismatch.label, mismatch.engine)


def _matches(mismatches: List[Mismatch], signature: tuple) -> bool:
    return any(mismatch_signature(m) == signature for m in mismatches)


def minimize_mismatch(
    mismatch: Mismatch,
    oracle,
    max_checks: int = 400,
    name: str = "fuzz-reduce",
) -> Dict[str, str]:
    """Shrink ``mismatch.sources`` to a minimal reproducer.

    ``oracle`` needs only a ``check_sources(sources, name)`` method
    returning a list of :class:`Mismatch` -- the real
    :class:`~repro.fuzz.oracle.DifferentialOracle` or any test stub.
    Each translation unit is minimized in turn while the others are
    held fixed; the returned dict still reproduces a mismatch with the
    original's ``(kind, label, engine)`` signature.
    """
    if not mismatch.sources:
        raise ValueError("mismatch carries no sources to minimize")
    signature = mismatch_signature(mismatch)
    sources = dict(mismatch.sources)
    if not _matches(oracle.check_sources(sources, name), signature):
        raise ValueError(
            f"mismatch {signature} does not reproduce from its recorded "
            "sources; nothing to minimize")
    for unit in list(sources):
        def unit_predicate(candidate_text: str, unit=unit) -> bool:
            candidate = dict(sources)
            candidate[unit] = candidate_text
            return _matches(oracle.check_sources(candidate, name), signature)

        sources[unit] = reduce_source(sources[unit], unit_predicate,
                                      max_checks=max_checks)
    # a unit reduced to nothing is just an empty module; drop it
    # (keeping main.c so the reproducer is always runnable-shaped)
    return {unit: text for unit, text in sources.items()
            if text.strip() or unit == "main.c"}

"""Differential oracle over the {engine x mechanism x filter} matrix.

Each generated program is one :class:`~repro.workloads.Workload`; the
oracle schedules every matrix cell for it through a single
:class:`~repro.experiments.runner.ExperimentEngine` batch (mixed-engine
jobs use the per-request ``engine`` override) and then cross-checks the
results five ways:

``harness-failure``
    a worker crashed or timed out (``status == "failed"``);
``baseline-fault``
    the uninstrumented run of a defined-behaviour program did not exit
    cleanly -- a frontend or VM bug, not an instrumentation bug;
``output-divergence``
    an instrumented cell changed the program's observable behaviour
    (output lines, exit status, or a spurious violation/fault) -- the
    transparency property the paper's evaluation rests on;
``engine-divergence``
    any registered execution tier (closure-compiled, reference
    tree-walker, source-codegen) disagrees with the first engine on
    any observable *or any counter* for the same cell (all tiers are
    bit-identical by contract);
``filter-invariant``
    check-elimination filters broke a counting invariant: dynamic
    checks must satisfy ranges <= dominance <= unfiltered for each
    mechanism, the baseline must execute zero checks, and statically
    filtered checks can never exceed statically gathered checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..campaign.model import Instance, standard_instances
from ..errors import ConfigError
from ..experiments.cache import ResultCache
from ..experiments.common import BenchResult
from ..experiments.runner import ExperimentEngine, JobRequest
from ..vm.engines import ENGINES
from ..workloads import Workload
from .generator import CoverageReport, GeneratedProgram


@dataclass(frozen=True)
class Matrix:
    """A named slice of the full configuration space.

    A matrix is a *complete* labels x engines product of campaign
    :class:`~repro.campaign.model.Instance` axes -- the oracle's grid
    comparisons (engine-divergence, filter chains) index cells by
    ``(label, engine)`` and need every cell present.  Build one from
    instances with :meth:`from_instances`, or directly from label and
    engine tuples; :meth:`instances` recovers the instance list either
    way, and is what the oracle actually schedules."""

    name: str
    labels: Tuple[str, ...]
    engines: Tuple[str, ...]

    @classmethod
    def from_instances(cls, name: str,
                       instances: Sequence[Instance]) -> "Matrix":
        """Derive a matrix from campaign instances.

        The instances must form a complete, duplicate-free
        labels x engines product (same check axes for every engine);
        anything else would leave holes in the differential grid."""
        labels = tuple(dict.fromkeys(i.label for i in instances))
        engines = tuple(dict.fromkeys(i.engine for i in instances))
        cells = [(i.label, i.engine) for i in instances]
        if len(set(cells)) != len(cells):
            raise ConfigError(
                f"matrix {name!r}: duplicate (label, engine) cells")
        missing = [f"{label}@{engine}"
                   for engine in engines for label in labels
                   if (label, engine) not in set(cells)]
        if missing:
            raise ConfigError(
                f"matrix {name!r} is not a complete labels x engines "
                f"product; missing: {', '.join(missing)}")
        off_axis = [i.name for i in instances
                    if i.extension_point != "VectorizerStart"
                    or i.config_overrides]
        if off_axis:
            raise ConfigError(
                f"matrix {name!r}: instances with extension-point or "
                f"config overrides are ambiguous as (label, engine) "
                f"cells: {', '.join(off_axis)}")
        return cls(name, labels=labels, engines=engines)

    def instances(self) -> List[Instance]:
        """The campaign instances of this matrix, in cell order."""
        return standard_instances(self.labels, self.engines)

    @property
    def cells(self) -> List[Tuple[str, str]]:
        return [(label, engine)
                for engine in self.engines for label in self.labels]

    def __len__(self) -> int:
        return len(self.labels) * len(self.engines)


FULL_MATRIX = Matrix.from_instances("full", standard_instances(
    ("baseline",
     "softbound-unopt", "softbound", "softbound-ranges", "softbound-hoist",
     "lowfat-unopt", "lowfat", "lowfat-ranges", "lowfat-hoist"),
    engines=ENGINES,
))

QUICK_MATRIX = Matrix.from_instances("quick", standard_instances(
    ("baseline", "softbound", "lowfat"),
    engines=("compiled",),
))

MATRICES: Dict[str, Matrix] = {m.name: m for m in (FULL_MATRIX, QUICK_MATRIX)}


@dataclass
class Mismatch:
    """One disagreement between matrix cells on one program."""

    program: str
    kind: str
    label: str
    engine: str
    detail: str
    seed: int = -1
    index: int = -1
    sources: Dict[str, str] = field(default_factory=dict)

    def to_json(self, include_sources: bool = True) -> dict:
        doc = {
            "program": self.program,
            "kind": self.kind,
            "label": self.label,
            "engine": self.engine,
            "detail": self.detail,
            "seed": self.seed,
            "index": self.index,
        }
        if include_sources:
            doc["sources"] = dict(self.sources)
        return doc

    def headline(self) -> str:
        return (f"{self.program} [{self.kind}] "
                f"{self.label}/{self.engine}: {self.detail}")


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing campaign."""

    matrix: str
    seed: int
    programs: int
    cells_per_program: int
    mismatches: List[Mismatch] = field(default_factory=list)
    executed_jobs: int = 0
    coverage: Optional[CoverageReport] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_json(self, include_sources: bool = True) -> dict:
        doc = {
            "matrix": self.matrix,
            "seed": self.seed,
            "programs": self.programs,
            "cells_per_program": self.cells_per_program,
            "executed_jobs": self.executed_jobs,
            "ok": self.ok,
            "mismatches": [m.to_json(include_sources)
                           for m in self.mismatches],
        }
        if self.coverage is not None:
            doc["coverage"] = {
                "complete": self.coverage.complete,
                "missing_node_kinds":
                    sorted(self.coverage.missing_node_kinds),
                "missing_opcodes": sorted(self.coverage.missing_opcodes),
                "features": dict(sorted(self.coverage.features.items())),
            }
        return doc

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.programs} programs x {self.cells_per_program} "
            f"cells ({self.matrix} matrix, seed {self.seed}), "
            f"{self.executed_jobs} jobs executed",
        ]
        if self.ok:
            lines.append("no mismatches: every cell agreed on every "
                         "observable and counter invariant")
        else:
            lines.append(f"{len(self.mismatches)} MISMATCH(ES):")
            lines.extend(f"  {m.headline()}" for m in self.mismatches)
        if self.coverage is not None:
            lines.append(self.coverage.summary())
        return "\n".join(lines)


#: Fields that must agree bit-for-bit across VM engines for the same
#: (program, label) cell.  This is the closure-compiled tier's
#: "bit-identical statistics" contract, enforced at fuzzing scale.
#: ``static`` covers the whole compile-side TargetStatistics -- in
#: particular, the hoist transform's hoisted/coalesced/synthesized
#: counts must be deterministic across independent compilations.
ENGINE_INVARIANT_FIELDS = (
    "output", "status", "violation_kind", "ok",
    "cycles", "instructions", "checks_executed", "checks_wide",
    "invariant_checks", "trie_loads", "trie_stores", "shadow_stack_ops",
    "lowfat_fallbacks", "lowfat_allocs", "opcode_counts", "static",
)

#: ``(unfiltered, dominance, ranges, hoist)`` label chains; dynamic
#: check counts must be monotonically non-increasing along each chain
#: when every member ran cleanly.  Hoisting preserves this: a widened
#: preheader check executes once where the replaced per-iteration
#: checks executed (trip count) x (group size) >= 1 times, and a
#: coalesced run check executes once where its >= 2 members each
#: executed.
_FILTER_CHAINS = (
    ("softbound-unopt", "softbound", "softbound-ranges", "softbound-hoist"),
    ("lowfat-unopt", "lowfat", "lowfat-ranges", "lowfat-hoist"),
)


class DifferentialOracle:
    """Runs programs through a matrix and cross-checks every cell.

    ``jobs`` fans the matrix out over worker processes (the underlying
    :class:`ExperimentEngine` schedules baselines first, then the rest
    in one wave).  A disk ``cache`` is refused for multi-engine
    matrices: the cache is engine-agnostic by contract, so it would
    satisfy the second engine's cells from the first engine's stored
    results and turn the engine comparison into a tautology.
    """

    def __init__(
        self,
        matrix: Union[Matrix, str] = FULL_MATRIX,
        jobs: int = 1,
        max_instructions: int = 5_000_000,
        job_timeout: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        verify_cache: bool = False,
    ):
        if isinstance(matrix, str):
            try:
                matrix = MATRICES[matrix]
            except KeyError:
                raise ConfigError(
                    f"unknown fuzz matrix {matrix!r}; "
                    f"choose from {', '.join(sorted(MATRICES))}")
        if cache is not None and len(matrix.engines) > 1:
            raise ConfigError(
                "a result cache cannot be used with a multi-engine "
                "matrix: cache keys are engine-agnostic, so cached "
                "results would make the engine comparison vacuous")
        self.matrix = matrix
        self._instances = matrix.instances()
        self.engine = ExperimentEngine(
            jobs=jobs,
            cache=cache,
            max_instructions=max_instructions,
            job_timeout=job_timeout,
            verify_cache=verify_cache,
        )

    # ------------------------------------------------------------------
    @property
    def executed_jobs(self) -> int:
        return self.engine.executed_jobs

    def _requests(self, workload: Workload) -> List[JobRequest]:
        # One request per campaign instance, in the grid's cell order;
        # the instance resolves its own configuration through the
        # mechanism registry.
        return [JobRequest(workload, instance.label,
                           extension_point=instance.extension_point,
                           config_override=instance.config(),
                           engine=instance.engine)
                for instance in self._instances]

    def check_sources(self, sources: Dict[str, str],
                      name: str = "fuzz-candidate") -> List[Mismatch]:
        """Run one program (as raw sources) through the whole matrix."""
        workload = Workload(name=name, sources=dict(sources),
                            description="generated fuzz program")
        results = self.engine.run_many(self._requests(workload))
        grid = {cell: result
                for cell, result in zip(self.matrix.cells, results)}
        mismatches = self._compare(name, grid)
        for m in mismatches:
            m.sources = dict(sources)
        return mismatches

    def check_program(self, program: GeneratedProgram) -> List[Mismatch]:
        mismatches = self.check_sources(program.sources, program.name)
        for m in mismatches:
            m.seed = program.seed
            m.index = program.index
        return mismatches

    def run(
        self,
        programs: Sequence[GeneratedProgram],
        seed: int = -1,
        progress: Optional[Callable[[int, int, int], None]] = None,
        batch: int = 8,
    ) -> FuzzReport:
        """Check a whole corpus; ``batch`` programs share one scheduler
        wave so worker processes stay busy across program boundaries."""
        report = FuzzReport(
            matrix=self.matrix.name,
            seed=seed,
            programs=len(programs),
            cells_per_program=len(self.matrix),
        )
        batch = max(1, batch)
        done = 0
        for start in range(0, len(programs), batch):
            group = programs[start:start + batch]
            requests: List[JobRequest] = []
            for program in group:
                workload = Workload(name=program.name,
                                    sources=dict(program.sources),
                                    description="generated fuzz program")
                requests.extend(self._requests(workload))
            results = self.engine.run_many(requests)
            cells = self.matrix.cells
            for offset, program in enumerate(group):
                chunk = results[offset * len(cells):(offset + 1) * len(cells)]
                grid = dict(zip(cells, chunk))
                found = self._compare(program.name, grid)
                for m in found:
                    m.seed = program.seed
                    m.index = program.index
                    m.sources = dict(program.sources)
                report.mismatches.extend(found)
            done += len(group)
            if progress is not None:
                progress(done, len(programs), len(report.mismatches))
        report.executed_jobs = self.engine.executed_jobs
        return report

    # ------------------------------------------------------------------
    # comparisons

    def _compare(self, name: str,
                 grid: Dict[Tuple[str, str], BenchResult]) -> List[Mismatch]:
        mismatches: List[Mismatch] = []

        def add(kind: str, label: str, engine: str, detail: str) -> None:
            mismatches.append(Mismatch(program=name, kind=kind, label=label,
                                       engine=engine, detail=detail))

        # 1. harness failures poison every other comparison; report
        #    them alone.
        failed = [(cell, r) for cell, r in grid.items()
                  if r.status == "failed"]
        if failed:
            for (label, engine), r in failed:
                add("harness-failure", label, engine, r.failure)
            return mismatches

        # 2. the uninstrumented baseline of a defined-behaviour program
        #    must exit cleanly, per engine.
        for engine in self.matrix.engines:
            base = grid.get(("baseline", engine))
            if base is not None and base.status != "exit":
                add("baseline-fault", "baseline", engine, base.describe)
        if any(m.kind == "baseline-fault" for m in mismatches):
            return mismatches

        # 3. transparency: every instrumented cell must exit cleanly
        #    with the baseline's exact output.
        for engine in self.matrix.engines:
            base = grid.get(("baseline", engine))
            for label in self.matrix.labels:
                if label == "baseline":
                    continue
                r = grid[(label, engine)]
                if r.status != "exit":
                    add("output-divergence", label, engine,
                        f"defined program ended with: {r.describe}")
                elif base is not None and r.output != base.output:
                    add("output-divergence", label, engine,
                        _output_diff(base.output, r.output))

        # 4. the two VM tiers must agree bit-for-bit per cell.
        if len(self.matrix.engines) > 1:
            ref_engine = self.matrix.engines[0]
            for other in self.matrix.engines[1:]:
                for label in self.matrix.labels:
                    a = grid[(label, ref_engine)]
                    b = grid[(label, other)]
                    diffs = [
                        f"{f}: {ref_engine}={getattr(a, f)!r} "
                        f"{other}={getattr(b, f)!r}"
                        for f in ENGINE_INVARIANT_FIELDS
                        if getattr(a, f) != getattr(b, f)
                    ]
                    if diffs:
                        add("engine-divergence", label, other,
                            "; ".join(diffs[:4]))

        # 5. check-count invariants.
        for engine in self.matrix.engines:
            base = grid.get(("baseline", engine))
            if base is not None and base.checks_executed != 0:
                add("filter-invariant", "baseline", engine,
                    f"baseline executed {base.checks_executed} checks")
            for chain in _FILTER_CHAINS:
                counts: List[Tuple[str, int]] = []
                for label in chain:
                    if label not in self.matrix.labels:
                        continue
                    r = grid[(label, engine)]
                    if r.status != "exit":
                        counts = []
                        break
                    counts.append((label, r.checks_executed))
                for (l_weak, c_weak), (l_strong, c_strong) in zip(
                        counts[:-1], counts[1:]):
                    if c_strong > c_weak:
                        add("filter-invariant", l_strong, engine,
                            f"{l_strong} executed {c_strong} checks > "
                            f"{l_weak}'s {c_weak} (filters may only "
                            f"remove checks)")
            for label in self.matrix.labels:
                r = grid[(label, engine)]
                filtered = (r.static.filtered_checks
                            + r.static.range_filtered_checks
                            + r.static.hoisted_checks
                            + r.static.coalesced_checks)
                if filtered > r.static.gathered_checks:
                    add("filter-invariant", label, engine,
                        f"static filtered {filtered} > gathered "
                        f"{r.static.gathered_checks}")
                if (r.static.synthesized_checks
                        > r.static.hoisted_checks
                        + r.static.coalesced_checks):
                    add("filter-invariant", label, engine,
                        f"synthesized {r.static.synthesized_checks} "
                        f"checks exceed the "
                        f"{r.static.hoisted_checks + r.static.coalesced_checks}"
                        f" they replace")
        return mismatches


def _output_diff(expected: List[str], got: List[str]) -> str:
    if len(expected) != len(got):
        return (f"output length {len(got)} != baseline {len(expected)}; "
                f"got tail {got[-3:]!r}")
    for i, (a, b) in enumerate(zip(expected, got)):
        if a != b:
            return f"output line {i}: baseline {a!r} != {b!r}"
    return "outputs differ"

"""Exception hierarchy of the reproduction.

Three different kinds of "going wrong" must stay distinguishable,
because the paper's evaluation is precisely about which tool reports
what:

* :class:`MemSafetyViolation` -- an instrumentation check fired (this is
  the *detection* the sanitizers provide).  Carries the check kind
  (dereference check vs. Low-Fat escape-invariant check) and location.
* :class:`MemoryFault` -- the simulated hardware trapped: an access hit
  unmapped or freed memory.  An uninstrumented program with an
  out-of-bounds access may fault, silently corrupt a neighbouring
  allocation, or read padding -- exactly the behaviours the paper's
  security discussion distinguishes.
* :class:`VMError` / :class:`CompileError` -- bugs in the input program
  or in its compilation, unrelated to memory safety.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of all errors raised by this package."""


class ConfigError(ReproError, ValueError):
    """An invalid instrumentation flag or configuration value.

    Subclasses :class:`ValueError` so programmatic users that predate
    the dedicated class keep working; the CLI catches the
    :class:`ReproError` side and prints a clean one-line message."""


class CompileError(ReproError):
    """The frontend rejected a MiniC program."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class VMError(ReproError):
    """The interpreter hit an unrecoverable condition (e.g. calling an
    undefined function)."""


class CacheVerificationError(ReproError):
    """A cached benchmark result disagrees with a fresh recomputation.

    Raised by the experiment engine's ``--verify-cache`` self-check: the
    VM is deterministic, so a cached :class:`BenchResult` must be
    *identical* to a recomputation from the same inputs.  Any mismatch
    means the cache (or the result transport) corrupted data and is a
    hard error -- never silently prefer either side."""


class MemoryFault(VMError):
    """Simulated hardware trap: access to unmapped or freed memory."""

    def __init__(self, address: int, size: int, reason: str):
        self.address = address
        self.size = size
        self.reason = reason
        super().__init__(f"memory fault at 0x{address:x} (size {size}): {reason}")


class ProgramAbort(ReproError):
    """The interpreted program called ``abort``/``exit`` with nonzero."""

    def __init__(self, code: int = 1):
        self.code = code
        super().__init__(f"program aborted with code {code}")


class MemSafetyViolation(ReproError):
    """A memory-safety check inserted by the instrumentation fired.

    ``kind`` is one of:

    * ``"deref"`` -- an in-bounds check at a load/store failed.
    * ``"invariant"`` -- a Low-Fat escape check (store/call/return of an
      out-of-bounds pointer) failed, cf. paper Section 4.2.
    * ``"wrapper"`` -- a SoftBound standard-library wrapper check failed.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        pointer: int = 0,
        base: int = 0,
        bound: int = 0,
        site: Optional[str] = None,
    ):
        self.kind = kind
        self.pointer = pointer
        self.base = base
        self.bound = bound
        self.site = site
        loc = f" at {site}" if site else ""
        super().__init__(
            f"memory safety violation ({kind}){loc}: {message} "
            f"[ptr=0x{pointer:x} base=0x{base:x} bound=0x{bound:x}]"
        )

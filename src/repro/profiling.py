"""Per-check-site profiling: join static provenance with dynamic counts.

``repro profile`` runs a program with :attr:`RuntimeStats.profile`
enabled and joins two tables this module knows how to combine:

* the **static** side, :attr:`CompiledProgram.check_sites` -- one
  :class:`~repro.core.itarget.CheckSiteInfo` per emitted check site,
  recorded by the mechanisms while lowering (source line, what produced
  the checked pointer, and any statically-known reason the bounds can
  be wide);
* the **dynamic** side, :attr:`RuntimeStats.per_site` -- per-site
  executed/wide counts (always on) plus attributed cycles and dynamic
  wide-bounds reasons (profiling only).

The result is the measured version of the paper's Table 2 attribution:
instead of hand-deriving "gzip's wide accesses come from its size-less
extern arrays", the wide-bounds table names the sites, lines and
reasons with their dynamic shares.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core.itarget import CheckSiteInfo
from .driver import CompiledProgram, RunResult

#: Fallback reasons by static pointer source, for SoftBound sites whose
#: wide bounds have no dynamic reason (SoftBound's wideness is a
#: property of the materialized witness, not of the target allocation).
_SB_SOURCE_REASONS = {
    "trie-load": "missing-or-stale-metadata",
    "call-result": "uninstrumented-or-wrapper-callee",
    "argument": "uninstrumented-caller",
    "phi-or-select": "merged-provenance",
}


def _wide_reasons(counter, info: Optional[CheckSiteInfo]) -> Dict[str, int]:
    """reason -> dynamic wide count for one site.  Dynamic reasons
    (Low-Fat classifies the target allocation per wide check) win;
    static hints cover the remainder."""
    wide = counter.get("wide", 0)
    reasons: Dict[str, int] = {}
    for key, count in counter.items():
        if key.startswith("reason:"):
            reasons[key[len("reason:"):]] = count
    explained = sum(reasons.values())
    rest = wide - explained
    if rest > 0:
        if info is not None and info.wide_hint:
            fallback = info.wide_hint
        elif info is not None and info.source in _SB_SOURCE_REASONS:
            fallback = _SB_SOURCE_REASONS[info.source]
        else:
            source = info.source if info is not None else ""
            fallback = f"wide-{source or 'unknown'}-witness"
        reasons[fallback] = reasons.get(fallback, 0) + rest
    return reasons


def build_profile(
    program: CompiledProgram, result: RunResult, top: int = 20
) -> dict:
    """The ``repro profile`` report as a JSON-ready dict."""
    stats = result.stats
    site_infos = program.check_sites
    verdicts = program.check_verdicts
    rows: List[dict] = []
    for site, counter in stats.per_site.items():
        info = site_infos.get(site)
        rows.append({
            "site": site,
            "line": info.line if info is not None else None,
            "function": info.function if info is not None else "",
            "kind": info.kind if info is not None else "deref",
            "source": info.source if info is not None else "",
            "verdict": verdicts.get(site, ""),
            "executed": counter.get("executed", 0),
            "wide": counter.get("wide", 0),
            "invariant": counter.get("invariant", 0),
            "cycles": counter.get("cycles", 0),
        })
    rows.sort(key=lambda r: (-r["cycles"], -r["executed"], r["site"]))

    # The static-vs-dynamic join the verdicts exist for: what share of
    # the *executed* dereference checks ran at a site the range
    # analysis had already proven safe (pure overhead under these
    # configs -- exactly what ``-mi-opt-ranges`` would have removed).
    provable_executed = sum(
        c.get("executed", 0) for site, c in stats.per_site.items()
        if verdicts.get(site) == "proven-safe"
    )

    total_wide = stats.checks_wide
    wide_sites: List[dict] = []
    for site, counter in stats.per_site.items():
        wide = counter.get("wide", 0)
        if not wide:
            continue
        info = site_infos.get(site)
        wide_sites.append({
            "site": site,
            "line": info.line if info is not None else None,
            "source": info.source if info is not None else "",
            "wide": wide,
            "percent_of_wide": (100.0 * wide / total_wide
                                if total_wide else 0.0),
            "reasons": _wide_reasons(counter, info),
        })
    wide_sites.sort(key=lambda r: (-r["wide"], r["site"]))

    instr = stats.instrumentation_cycles
    return {
        "approach": program.config.approach,
        "totals": {
            "cycles": stats.cycles,
            "instructions": stats.instructions,
            "checks_executed": stats.checks_executed,
            "checks_wide": stats.checks_wide,
            "unsafe_percent": stats.unsafe_percent,
            "invariant_checks": stats.invariant_checks,
            "instrumentation_cycles": instr,
            "instrumentation_percent": (100.0 * instr / stats.cycles
                                        if stats.cycles else 0.0),
            "provable_executed": provable_executed,
            "provable_percent": (100.0 * provable_executed
                                 / stats.checks_executed
                                 if stats.checks_executed else 0.0),
        },
        "verdicts": dict(program.instrumentation.verdicts),
        "site_count": len(stats.per_site),
        "sums": {
            "executed": sum(c.get("executed", 0)
                            for c in stats.per_site.values()),
            "wide": sum(c.get("wide", 0) for c in stats.per_site.values()),
        },
        "sites": rows[:top],
        "wide_sites": wide_sites,
    }


def render_text(profile: dict) -> str:
    from .experiments.common import format_table

    totals = profile["totals"]
    lines = [
        f"approach: {profile['approach']}",
        f"cycles: {totals['cycles']}  "
        f"(instrumentation: {totals['instrumentation_cycles']}, "
        f"{totals['instrumentation_percent']:.2f}%)",
        f"checks: {totals['checks_executed']} executed, "
        f"{totals['checks_wide']} wide "
        f"({totals['unsafe_percent']:.2f}%), "
        f"{totals['invariant_checks']} invariant; "
        f"{profile['site_count']} static sites",
    ]
    if profile.get("verdicts"):
        lines.append(
            f"statically provable: {totals['provable_executed']} of "
            f"{totals['checks_executed']} executed checks "
            f"({totals['provable_percent']:.2f}%) ran at proven-safe "
            f"sites (static verdicts: {profile['verdicts']})")
    lines += [
        "",
        "Hottest check sites (by attributed cycles):",
    ]
    rows = [
        [
            r["site"],
            "-" if r["line"] is None else str(r["line"]),
            r["kind"],
            r["source"],
            r["verdict"] or "-",
            str(r["executed"] + r["invariant"]),
            str(r["wide"]),
            str(r["cycles"]),
        ]
        for r in profile["sites"]
    ]
    lines.append(format_table(
        ["site", "line", "kind", "source", "verdict", "executed", "wide",
         "cycles"],
        rows,
    ))
    lines.append("")
    lines.append("Wide-bounds attribution (site -> reason -> share of "
                 "dynamic wide checks):")
    if profile["wide_sites"]:
        wrows = []
        for r in profile["wide_sites"]:
            for reason, count in sorted(
                r["reasons"].items(), key=lambda kv: -kv[1]
            ):
                total_wide = profile["totals"]["checks_wide"]
                share = 100.0 * count / total_wide if total_wide else 0.0
                wrows.append([
                    r["site"],
                    "-" if r["line"] is None else str(r["line"]),
                    reason,
                    str(count),
                    f"{share:.1f}%",
                ])
        lines.append(format_table(
            ["site", "line", "reason", "wide", "% of wide"], wrows))
    else:
        lines.append("  (no wide-bounds checks executed)")
    return "\n".join(lines)

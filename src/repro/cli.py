"""Command-line driver, mirroring the paper artifact's usage.

The artifact wraps clang with MemInstrument flags; this CLI does the
same for the reproduction::

    python -m repro run  prog.c lib.c -mi-config=softbound -mi-opt-dominance
    python -m repro run  prog.c -mi-config=lowfat --extension-point ModuleOptimizerEarly
    python -m repro emit prog.c -mi-config=softbound      # print final IR
    python -m repro bench 183equake -mi-config=lowfat     # run a workload

``-mi-*`` flags use the artifact's exact syntax (Appendix A.6) and are
parsed by :meth:`InstrumentationConfig.from_flags`.

Every table/figure of the evaluation is also a subcommand, executed by
the parallel, disk-cached experiment engine::

    python -m repro table1 --jobs 4
    python -m repro report --jobs 4 --output report.md   # warm rerun is near-instant
    python -m repro fig9 --workloads 164gzip,183equake --no-cache

``lint`` runs the static pitfall detectors (paper Section 4) over
source files or bundled workloads, without executing anything::

    python -m repro lint prog.c lib.c
    python -m repro lint 164gzip 429mcf --format json
    python -m repro lint --all-workloads

``campaign`` executes a declarative instance x target spec (sharded,
cached, resumable), and ``serve`` runs the long-lived HTTP daemon::

    python -m repro campaign nightly.toml --jobs 0 --history BENCH_nightly.json
    python -m repro campaign nightly.toml --shard-index 1 --shard-count 4
    python -m repro serve --port 8642 --cache-dir /var/cache/repro
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.config import InstrumentationConfig
from .driver import CompileOptions, compile_program, run_program
from .errors import ConfigError, ReproError
from .ir.printer import format_module
from .opt.pipeline import EXTENSION_POINTS


def _split_mi_flags(argv: List[str]):
    mi_flags = [a for a in argv if a.startswith("-mi-")]
    rest = [a for a in argv if not a.startswith("-mi-")]
    return mi_flags, rest


#: Experiment subcommands -> (module name, generator attribute).  The
#: modules are imported lazily; each generator is called as
#: ``generate(engine, workloads)``.
EXPERIMENT_COMMANDS = {
    "table1": ("table1", "generate", "Table 1: instrumentation targets per task"),
    "table2": ("table2", "generate", "Table 2: unsafe dereferences in %"),
    "fig9": ("fig9", "generate", "Figure 9: SoftBound vs Low-Fat overhead"),
    "fig10": ("fig10", "generate", "Figure 10: SoftBound config comparison"),
    "fig11": ("fig11", "generate", "Figure 11: Low-Fat config comparison"),
    "fig12": ("fig12_13", "generate_fig12", "Figure 12: SoftBound extension points"),
    "fig13": ("fig12_13", "generate_fig13", "Figure 13: Low-Fat extension points"),
    "optstats": ("optstats", "generate", "Section 5.3: dominance elimination stats"),
    "breakdown": ("breakdown", "generate", "Section 5.4: overhead attribution"),
    "ablation": ("ablation", "generate", "configuration trade-off ablations"),
    "report": (None, None, "full evaluation report (all tables and figures)"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MemInstrument reproduction driver "
                    "(SoftBound / Low-Fat Pointers on the mini-IR stack)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .experiments.runner import (add_cache_arguments,
                                     add_engine_arguments,
                                     add_pool_arguments,
                                     add_vm_engine_argument)

    # Shared parent parsers: every subcommand that touches the VM, the
    # worker pool, or the result cache inherits the same option group,
    # so spelling, defaults, and help text cannot drift apart.
    vm_parent = argparse.ArgumentParser(add_help=False)
    add_vm_engine_argument(vm_parent)
    pool_parent = argparse.ArgumentParser(add_help=False)
    add_pool_arguments(pool_parent)
    pool0_parent = argparse.ArgumentParser(add_help=False)
    add_pool_arguments(pool0_parent, default_jobs=0)
    cache_parent = argparse.ArgumentParser(add_help=False)
    add_cache_arguments(cache_parent)
    experiment_parent = argparse.ArgumentParser(add_help=False)
    add_engine_arguments(experiment_parent)

    def common(p):
        p.add_argument("-O", dest="opt_level", type=int, default=3,
                       choices=(0, 1, 2, 3), help="optimization level")
        p.add_argument("--extension-point", default="VectorizerStart",
                       choices=EXTENSION_POINTS,
                       help="where the instrumentation runs in the pipeline")
        p.add_argument("--no-lto", action="store_true",
                       help="skip link-time optimization")
        p.add_argument("--verify", action="store_true",
                       help="verify the IR after every pass")

    run_p = sub.add_parser("run", parents=[vm_parent],
                           help="compile, instrument, and execute")
    run_p.add_argument("files", nargs="+", help="MiniC source files")
    common(run_p)
    run_p.add_argument("--entry", default="main")
    run_p.add_argument("--max-instructions", type=int, default=500_000_000)
    run_p.add_argument("--stats", action="store_true",
                       help="print the runtime statistics summary")
    run_p.add_argument("--dump-codegen", default=None, metavar="DIR",
                       help="with --engine codegen: write the generated "
                            "Python source of every compiled function "
                            "into DIR (numbered, IR block names as "
                            "comments)")

    emit_p = sub.add_parser("emit", parents=[vm_parent],
                            help="print the final (instrumented) IR")
    emit_p.add_argument("files", nargs="+", help="MiniC source files")
    common(emit_p)

    bench_p = sub.add_parser(
        "bench", parents=[vm_parent, pool_parent, cache_parent],
        help="run one workload benchmark through the experiment engine")
    bench_p.add_argument("workload", help="benchmark name, e.g. 183equake")
    common(bench_p)
    bench_p.add_argument("--compare-baseline", action="store_true",
                         help="also run uninstrumented and print overhead")

    profile_p = sub.add_parser(
        "profile", parents=[vm_parent],
        help="per-check-site profile: hottest sites and wide-bounds "
             "attribution (requires an instrumented -mi-config)",
    )
    profile_p.add_argument("targets", nargs="+",
                           help="MiniC source files, or one workload name")
    common(profile_p)
    profile_p.add_argument("--entry", default="main")
    profile_p.add_argument("--max-instructions", type=int,
                           default=100_000_000)
    profile_p.add_argument("--top", type=int, default=20,
                           help="number of hottest sites to show")
    profile_p.add_argument("--format", choices=("text", "json"),
                           default="text", help="output format")

    lint_p = sub.add_parser(
        "lint",
        help="statically flag the paper's Section 4 pitfalls",
    )
    lint_p.add_argument("targets", nargs="*",
                        help="MiniC source files or workload names")
    lint_p.add_argument("--all-workloads", action="store_true",
                        help="lint every bundled workload")
    lint_p.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")

    fuzz_p = sub.add_parser(
        "fuzz", parents=[pool0_parent, cache_parent],
        help="differential fuzzing: generated defined-behaviour "
             "programs through the {engine x mechanism x filter} matrix",
    )
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="corpus seed (default: 0)")
    fuzz_p.add_argument("--count", type=int, default=100,
                        help="number of generated programs (default: 100)")
    from .fuzz import MATRICES

    matrix_help = "; ".join(
        f"{m.name}: {len(m.labels)} configs x "
        + (f"{len(m.engines)} VM engines" if len(m.engines) > 1
           else f"{m.engines[0]} engine only")
        for m in MATRICES.values())
    fuzz_p.add_argument("--matrix", choices=tuple(MATRICES),
                        default="full", help=matrix_help)
    fuzz_p.add_argument("--minimize", action="store_true",
                        help="delta-debug each mismatching program to a "
                             "minimal reproducer")
    fuzz_p.add_argument("--max-instructions", type=int, default=5_000_000,
                        help="per-run instruction budget")
    fuzz_p.add_argument("--coverage", action="store_true",
                        help="include AST-kind / IR-opcode coverage "
                             "accounting in the report")
    fuzz_p.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    fuzz_p.add_argument("--output", "-o", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")
    fuzz_p.add_argument("--emit-dir", default=None, metavar="DIR",
                        help="write mismatching programs (and minimized "
                             "reproducers) into DIR")

    campaign_p = sub.add_parser(
        "campaign", parents=[pool0_parent, cache_parent],
        help="run a declarative instance x target campaign spec "
             "(sharded, cached, resumable)",
    )
    campaign_p.add_argument("spec",
                            help="campaign spec file (.toml or .json)")
    campaign_p.add_argument("--shard-index", type=int, default=0,
                            metavar="I",
                            help="this worker's shard (0-based)")
    campaign_p.add_argument("--shard-count", type=int, default=1,
                            metavar="N",
                            help="total number of shards")
    campaign_p.add_argument("--batch", type=int, default=32, metavar="N",
                            help="cells per scheduler wave (default: 32)")
    campaign_p.add_argument("--dry-run", action="store_true",
                            help="list this shard's cells without "
                                 "running anything")
    campaign_p.add_argument("--history", default=None, metavar="FILE",
                            help="append the campaign summary to this "
                                 "BENCH_*.json time series and report "
                                 "regressions against the previous run")
    campaign_p.add_argument("--fail-on-regression", action="store_true",
                            help="exit non-zero when --history flags a "
                                 "cycle/overhead/status regression")
    campaign_p.add_argument("--format", choices=("text", "json"),
                            default="text", help="result format")
    campaign_p.add_argument("--output", "-o", default=None, metavar="FILE",
                            help="write the result to FILE instead of "
                                 "stdout")

    serve_p = sub.add_parser(
        "serve", parents=[pool0_parent, cache_parent],
        help="long-lived HTTP/JSON daemon: POST MiniC sources or a "
             "workload name + an instance spec, get stats back",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="TCP port; 0 picks a free one "
                              "(default: 8642)")
    serve_p.add_argument("--max-instructions", type=int, default=None,
                         help="default per-job instruction budget for "
                              "submitted jobs")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")

    for name, (_, _, help_text) in EXPERIMENT_COMMANDS.items():
        exp_p = sub.add_parser(name, parents=[experiment_parent],
                               help=help_text)
        exp_p.add_argument("--output", "-o", default=None, metavar="FILE",
                           help="write the result to FILE instead of stdout")
    return parser


def _load_sources(paths: List[str]):
    sources = {}
    for path in paths:
        with open(path) as handle:
            sources[path] = handle.read()
    return sources


def _config_from(mi_flags: List[str]) -> InstrumentationConfig:
    if not mi_flags:
        return InstrumentationConfig(approach="noop")
    return InstrumentationConfig.from_flags(mi_flags)


def _run_lint(args) -> int:
    import json as json_mod

    from .analysis import lint as lint_mod
    from .workloads import all_names, get

    targets = list(args.targets)
    if args.all_workloads:
        targets.extend(n for n in all_names() if n not in targets)
    if not targets:
        raise ConfigError(
            "nothing to lint: pass source files, workload names, "
            "or --all-workloads"
        )

    results = {}
    for target in targets:
        if target in all_names():
            diagnostics = lint_mod.lint_workload(get(target))
        else:
            with open(target) as handle:
                source = handle.read()
            diagnostics = lint_mod.lint_sources({target: source})
        results[target] = diagnostics

    if args.format == "json":
        payload = {
            target: [d.to_dict() for d in diagnostics]
            for target, diagnostics in results.items()
        }
        print(json_mod.dumps(payload, indent=2))
    else:
        total = 0
        for target, diagnostics in results.items():
            print(f"== {target}")
            print(lint_mod.render_text(diagnostics))
            total += len(diagnostics)
        print(f"-- {total} finding(s) in {len(results)} target(s)")
    # Findings are expected output, not an error: keep exit status 0 so
    # pipelines can post-process the report.
    return 0


def _run_profile(args, config: InstrumentationConfig) -> int:
    import json as json_mod

    from .profiling import build_profile, render_text
    from .workloads import all_names, get

    if config.approach == "noop":
        raise ConfigError(
            "profile requires an instrumented configuration; pass "
            "-mi-config=softbound or -mi-config=lowfat"
        )

    options_kwargs = dict(
        opt_level=args.opt_level,
        extension_point=args.extension_point,
        link_time_optimization=not args.no_lto,
        verify=args.verify,
        # The profile report joins dynamic per-site counts against the
        # static safety verdicts whatever the profiled configuration.
        collect_verdicts=True,
    )
    if len(args.targets) == 1 and args.targets[0] in all_names():
        workload = get(args.targets[0])
        options = CompileOptions(
            obfuscate_pointer_copies=tuple(workload.obfuscated_units),
            **options_kwargs,
        )
        sources = workload.sources
    else:
        options = CompileOptions(**options_kwargs)
        sources = _load_sources(args.targets)

    program = compile_program(sources, config, options)
    result = run_program(program, entry=args.entry,
                         max_instructions=args.max_instructions,
                         engine=args.engine, profile=True)
    if not result.ok:
        print(result.describe(), file=sys.stderr)
    profile = build_profile(program, result, top=args.top)
    if args.format == "json":
        print(json_mod.dumps(profile, indent=2))
    else:
        print(render_text(profile))
    return 0


def _run_fuzz(args) -> int:
    import json as json_mod
    import os

    from .experiments.cache import ResultCache
    from .experiments.runner import resolve_jobs
    from .fuzz import (DifferentialOracle, MATRICES, corpus_coverage,
                       generate_corpus, minimize_mismatch)

    if args.count <= 0:
        raise ConfigError("--count must be positive")
    jobs = resolve_jobs(args.jobs)
    # The cache is opt-in for fuzzing: only an explicit --cache-dir is
    # used (and the oracle still refuses it for multi-engine matrices).
    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    oracle = DifferentialOracle(
        matrix=MATRICES[args.matrix],
        jobs=jobs,
        max_instructions=args.max_instructions,
        job_timeout=args.job_timeout,
        cache=cache,
        verify_cache=args.verify_cache,
    )
    programs = generate_corpus(args.seed, args.count)

    def progress(done: int, total: int, bad: int) -> None:
        print(f"[fuzz] {done}/{total} programs, {bad} mismatch(es)",
              file=sys.stderr)

    report = oracle.run(programs, seed=args.seed, progress=progress,
                        batch=max(jobs, 4))
    if args.coverage:
        report.coverage = corpus_coverage(programs)

    minimized = {}
    if args.minimize and report.mismatches:
        for mismatch in report.mismatches:
            if mismatch.program in minimized:
                continue
            print(f"[fuzz] minimizing {mismatch.program} "
                  f"({mismatch.kind})", file=sys.stderr)
            try:
                minimized[mismatch.program] = minimize_mismatch(
                    mismatch, oracle)
            except ValueError as exc:
                # a flaky / non-reproducing mismatch must not take the
                # report (and the CI artifact) down with it
                print(f"[fuzz] cannot minimize {mismatch.program}: "
                      f"{exc}", file=sys.stderr)

    if args.emit_dir and report.mismatches:
        os.makedirs(args.emit_dir, exist_ok=True)
        for mismatch in report.mismatches:
            for unit, text in mismatch.sources.items():
                path = os.path.join(args.emit_dir,
                                    f"{mismatch.program}.{unit}")
                with open(path, "w") as handle:
                    handle.write(text)
        for name, sources in minimized.items():
            for unit, text in sources.items():
                path = os.path.join(args.emit_dir, f"{name}.min.{unit}")
                with open(path, "w") as handle:
                    handle.write(text)

    if args.format == "json":
        doc = report.to_json(include_sources=True)
        if minimized:
            doc["minimized"] = minimized
        text = json_mod.dumps(doc, indent=2)
    else:
        parts = [report.summary()]
        for name, sources in minimized.items():
            parts.append(f"-- minimized reproducer for {name}:")
            for unit, unit_text in sources.items():
                parts.append(f"// {unit}\n{unit_text}")
        text = "\n".join(parts)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"written to {args.output}")
    else:
        print(text)
    return 0 if report.ok else 1


def _run_bench(args, config: InstrumentationConfig, parser) -> int:
    from .experiments.common import CONFIG_LABELS, config_for
    from .experiments.runner import JobRequest, engine_from_args
    from .workloads import all_names, get

    if args.workload not in all_names():
        parser.error(
            f"unknown workload {args.workload!r}; "
            f"choose from {', '.join(all_names())}"
        )
    workload = get(args.workload)
    # The cache is opt-in for one-off benches (explicit --cache-dir);
    # canonical configurations share entries with the experiment matrix
    # by resolving to their CONFIG_LABELS label.
    engine = engine_from_args(args, require_cache_dir=True)
    if config.approach == "noop":
        label, override = "baseline", None
    else:
        label = next((name for name in CONFIG_LABELS
                      if config_for(name) == config),
                     f"{config.approach}-custom")
        override = config
    result = engine.run_request(JobRequest(
        workload, label,
        extension_point=args.extension_point,
        config_override=override,
        engine=args.engine,
    ))
    print(f"{args.workload}: {result.describe}  cycles={result.cycles}")
    if result.checks_executed:
        print(f"checks: {result.checks_executed} "
              f"({result.unsafe_percent:.2f}% wide)")
    if args.compare_baseline and label != "baseline":
        base = engine.run_request(JobRequest(workload, "baseline",
                                             engine=args.engine))
        print(f"baseline cycles={base.cycles}  "
              f"overhead={result.cycles / base.cycles:.2f}x")
    return 0 if result.ok else 1


def _run_campaign(args) -> int:
    import json as json_mod

    from .campaign import (CampaignRunner, append_entry, find_regressions,
                           load_spec)
    from .experiments.runner import engine_from_args

    spec = load_spec(args.spec)
    engine = engine_from_args(args, engine_keyed_cache=True)
    runner = CampaignRunner(spec, engine,
                            shard_index=args.shard_index,
                            shard_count=args.shard_count)
    if args.dry_run:
        cells = runner.shard_cells()
        for cell in cells:
            print(cell.id)
        print(f"-- {len(cells)} cell(s) in shard "
              f"{args.shard_index + 1}/{args.shard_count} "
              f"(of {len(runner.cells())} total)", file=sys.stderr)
        return 0

    def progress(done: int, total: int) -> None:
        print(f"[campaign] {done}/{total} cells", file=sys.stderr)

    result = runner.run(progress=progress, batch=args.batch)

    regressions = []
    if args.history:
        append_entry(args.history, result)
        regressions = find_regressions(args.history)
        for regression in regressions:
            print(f"[campaign] {regression.describe()}", file=sys.stderr)

    if args.format == "json":
        text = json_mod.dumps(result.to_json(), indent=2)
    else:
        text = result.summary()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"written to {args.output}")
    else:
        print(text)
    print(f"[engine] {engine.executed_jobs} jobs executed, "
          f"{engine.cache_hits} served from cache", file=sys.stderr)
    if not result.ok:
        return 1
    if regressions and args.fail_on_regression:
        return 1
    return 0


def _run_serve(args) -> int:
    from .campaign import make_server
    from .experiments.runner import engine_from_args

    engine = engine_from_args(args, engine_keyed_cache=True)
    server, _ = make_server(args.host, args.port, engine,
                            default_max_instructions=args.max_instructions,
                            verbose=args.verbose)
    host, port = server.server_address[:2]
    # Machine-readable: CI starts with --port 0 and parses this line.
    print(f"repro serve listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return 0


def _run_experiment(args, parser) -> int:
    import importlib

    from .experiments.runner import engine_from_args, workloads_from_args

    try:
        workloads = workloads_from_args(args)
    except ValueError as exc:
        parser.error(str(exc))
    engine = engine_from_args(args)

    if args.command == "report":
        from .experiments import report

        text = report.generate(engine, workloads)
    else:
        module_name, attribute, _ = EXPERIMENT_COMMANDS[args.command]
        module = importlib.import_module(f".experiments.{module_name}",
                                         __package__)
        text = getattr(module, attribute)(engine, workloads)

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"written to {args.output}")
    else:
        print(text)
    print(f"[engine] {engine.executed_jobs} jobs executed, "
          f"{engine.cache_hits} served from cache", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    mi_flags, rest = _split_mi_flags(argv)
    parser = _build_parser()
    args = parser.parse_args(rest)
    try:
        config = _config_from(mi_flags)
    except ReproError as exc:
        # Unknown -mi-* flags and bad config values get a clean
        # one-line diagnostic, not a traceback or a usage dump.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "lint":
        try:
            return _run_lint(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "profile":
        try:
            return _run_profile(args, config)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "fuzz":
        try:
            return _run_fuzz(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "bench":
        try:
            return _run_bench(args, config, parser)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "campaign":
        try:
            return _run_campaign(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "serve":
        try:
            return _run_serve(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command in EXPERIMENT_COMMANDS:
        try:
            return _run_experiment(args, parser)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    options_kwargs = dict(
        opt_level=args.opt_level,
        extension_point=args.extension_point,
        link_time_optimization=not args.no_lto,
        verify=args.verify,
    )

    try:
        if args.command == "run":
            program = compile_program(
                _load_sources(args.files), config,
                CompileOptions(**options_kwargs),
            )
            result = run_program(program, entry=args.entry,
                                 max_instructions=args.max_instructions,
                                 engine=args.engine,
                                 dump_codegen=args.dump_codegen)
            for line in result.output:
                print(line)
            if not result.ok:
                print(result.describe(), file=sys.stderr)
            if args.stats:
                print(result.stats.summary(), file=sys.stderr)
            if result.violation is not None or result.abort is not None:
                return 134
            if result.fault is not None:
                return 139
            return result.exit_code or 0

        if args.command == "emit":
            program = compile_program(
                _load_sources(args.files), config,
                CompileOptions(**options_kwargs),
            )
            print(format_module(program.module), end="")
            return 0

    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Shared infrastructure for the experiment harness.

Each experiment module (table1, table2, fig9, ...) regenerates one
table or figure of the paper from the same primitives: compile a
workload under a configuration, run it on the VM, and collect the
statistics.  Results are cached per (workload, configuration label)
within a process so that e.g. the Figure 9 runs are reused by Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.config import InstrumentationConfig
from ..core.itarget import TargetStatistics
from ..driver import CompileOptions, CompiledProgram, compile_program, run_program
from ..vm.stats import RuntimeStats
from ..workloads import Workload, all_workloads

MAX_INSTRUCTIONS = 50_000_000

#: Named configurations used across the evaluation (paper Section 5).
#: "optimized" = dominance check elimination on (the Figure 9 setting),
#: "unoptimized" = all gathered checks emitted,
#: "metadata" = -mi-mode=geninvariants (no dereference checks).
CONFIG_LABELS = (
    "baseline",
    "softbound", "softbound-unopt", "softbound-meta",
    "lowfat", "lowfat-unopt", "lowfat-meta",
)


def config_for(label: str) -> Optional[InstrumentationConfig]:
    if label == "baseline":
        return None
    approach, _, variant = label.partition("-")
    base = (
        InstrumentationConfig.softbound()
        if approach == "softbound"
        else InstrumentationConfig.lowfat()
    )
    if variant == "":
        return base.with_(opt_dominance=True)
    if variant == "unopt":
        return base.with_(opt_dominance=False)
    if variant == "meta":
        return base.with_(mode="geninvariants", opt_dominance=False)
    raise ValueError(f"unknown configuration label {label!r}")


@dataclass
class BenchResult:
    workload: str
    label: str
    extension_point: str
    cycles: int
    instructions: int
    output: List[str]
    ok: bool
    describe: str
    checks_executed: int
    checks_wide: int
    unsafe_percent: float
    invariant_checks: int
    trie_loads: int
    trie_stores: int
    shadow_stack_ops: int
    lowfat_fallbacks: int
    static: TargetStatistics

    @staticmethod
    def from_run(workload: Workload, label: str, ep: str,
                 program: CompiledProgram, stats: RuntimeStats,
                 ok: bool, describe: str, output: List[str]) -> "BenchResult":
        return BenchResult(
            workload=workload.name, label=label, extension_point=ep,
            cycles=stats.cycles, instructions=stats.instructions,
            output=output, ok=ok, describe=describe,
            checks_executed=stats.checks_executed,
            checks_wide=stats.checks_wide,
            unsafe_percent=stats.unsafe_percent,
            invariant_checks=stats.invariant_checks,
            trie_loads=stats.trie_loads, trie_stores=stats.trie_stores,
            shadow_stack_ops=stats.shadow_stack_ops,
            lowfat_fallbacks=stats.lowfat_fallback_allocs,
            static=program.instrumentation,
        )


class Runner:
    """Compiles and runs workloads, caching results per configuration."""

    def __init__(self, max_instructions: int = MAX_INSTRUCTIONS):
        self.max_instructions = max_instructions
        self._cache: Dict[Tuple[str, str, str], BenchResult] = {}
        self._reference_output: Dict[str, List[str]] = {}

    def run(
        self,
        workload: Workload,
        label: str,
        extension_point: str = "VectorizerStart",
    ) -> BenchResult:
        key = (workload.name, label, extension_point)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = config_for(label)
        options = CompileOptions(
            extension_point=extension_point,
            obfuscate_pointer_copies=tuple(workload.obfuscated_units),
        )
        if config is None:
            program = compile_program(workload.sources, options=options)
        else:
            program = compile_program(workload.sources, config, options)
        run = run_program(program, max_instructions=self.max_instructions)
        reference = self._reference_output.get(workload.name)
        if label == "baseline" and run.ok:
            self._reference_output[workload.name] = list(run.output)
            output_ok = True
        else:
            output_ok = reference is None or run.output == reference
        result = BenchResult.from_run(
            workload, label, extension_point, program, run.stats,
            ok=run.ok and output_ok, describe=run.describe(),
            output=list(run.output),
        )
        self._cache[key] = result
        return result

    def baseline(self, workload: Workload) -> BenchResult:
        return self.run(workload, "baseline")

    def overhead(self, workload: Workload, label: str,
                 extension_point: str = "VectorizerStart") -> float:
        base = self.baseline(workload)
        inst = self.run(workload, label, extension_point)
        return inst.cycles / base.cycles if base.cycles else math.inf


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)

"""Shared infrastructure for the experiment harness.

Each experiment module (table1, table2, fig9, ...) regenerates one
table or figure of the paper from the same primitives: compile a
workload under a configuration, run it on the VM, and collect the
statistics.  Results are requested through the execution engine in
:mod:`.runner`, which memoizes them in-process, can fan independent
jobs out over worker processes, and can persist them in the
content-addressed on-disk cache of :mod:`.cache` so that a second full
report regeneration is near-instant.

``Runner`` remains the name of the engine (it is an alias of
:class:`.runner.ExperimentEngine`) so existing call sites keep working;
the default construction ``Runner()`` is serial and memory-only, just
like the historical per-process runner.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.config import InstrumentationConfig
from ..core.itarget import TargetStatistics
from ..driver import CompiledProgram, RunResult

MAX_INSTRUCTIONS = 50_000_000

#: Named configurations used across the evaluation (paper Section 5).
#: "optimized" = dominance check elimination on (the Figure 9 setting),
#: "unoptimized" = all gathered checks emitted,
#: "metadata" = -mi-mode=geninvariants (no dereference checks),
#: "ranges" = dominance elimination plus the interprocedural
#: value-range / pointer-provenance filter (-mi-opt-ranges),
#: "hoist" = ranges plus the loop-aware check hoisting / block
#: coalescing transform (-mi-opt-hoist).
CONFIG_LABELS = (
    "baseline",
    "softbound", "softbound-unopt", "softbound-meta", "softbound-ranges",
    "softbound-hoist",
    "lowfat", "lowfat-unopt", "lowfat-meta", "lowfat-ranges",
    "lowfat-hoist",
)


def config_for(label: str) -> Optional[InstrumentationConfig]:
    if label == "baseline":
        return None
    approach, _, variant = label.partition("-")
    base = (
        InstrumentationConfig.softbound()
        if approach == "softbound"
        else InstrumentationConfig.lowfat()
    )
    if variant == "":
        return base.with_(opt_dominance=True)
    if variant == "unopt":
        return base.with_(opt_dominance=False)
    if variant == "meta":
        return base.with_(mode="geninvariants", opt_dominance=False)
    if variant == "ranges":
        return base.with_(opt_dominance=True, opt_ranges=True)
    if variant == "hoist":
        return base.with_(opt_dominance=True, opt_ranges=True,
                          opt_hoist=True)
    raise ValueError(f"unknown configuration label {label!r}")


@dataclass
class BenchResult:
    """One (workload, configuration, extension point) measurement.

    JSON-serializable: ``to_json``/``from_json`` round-trip exactly,
    which is what makes results survive both worker-process transport
    and the on-disk cache (and what makes benchmark trajectories
    machine-readable).

    ``status`` distinguishes how the run ended: ``"exit"`` (normal
    termination), ``"violation"`` (an instrumentation check fired,
    ``violation_kind`` says which), ``"fault"`` (simulated hardware
    trap), ``"abort"``, or ``"failed"`` (the job itself crashed or
    timed out; ``failure`` carries the reason and every counter is 0).
    """

    workload: str
    label: str
    extension_point: str
    cycles: int
    instructions: int
    output: List[str]
    ok: bool
    describe: str
    checks_executed: int
    checks_wide: int
    unsafe_percent: float
    invariant_checks: int
    trie_loads: int
    trie_stores: int
    shadow_stack_ops: int
    lowfat_fallbacks: int
    static: TargetStatistics
    status: str = "exit"
    violation_kind: str = ""
    failure: str = ""
    lowfat_allocs: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def from_run(workload, label: str, ep: str,
                 program: CompiledProgram, run: RunResult,
                 output_ok: bool = True) -> "BenchResult":
        stats = run.stats
        if run.violation is not None:
            status, violation_kind = "violation", run.violation.kind
        elif run.fault is not None:
            status, violation_kind = "fault", ""
        elif run.abort is not None:
            status, violation_kind = "abort", ""
        else:
            status, violation_kind = "exit", ""
        return BenchResult(
            workload=getattr(workload, "name", workload),
            label=label, extension_point=ep,
            cycles=stats.cycles, instructions=stats.instructions,
            output=list(run.output), ok=run.ok and output_ok,
            describe=run.describe(),
            checks_executed=stats.checks_executed,
            checks_wide=stats.checks_wide,
            unsafe_percent=stats.unsafe_percent,
            invariant_checks=stats.invariant_checks,
            trie_loads=stats.trie_loads, trie_stores=stats.trie_stores,
            shadow_stack_ops=stats.shadow_stack_ops,
            lowfat_fallbacks=stats.lowfat_fallback_allocs,
            static=program.instrumentation,
            status=status, violation_kind=violation_kind,
            lowfat_allocs=stats.lowfat_allocs,
            opcode_counts=dict(stats.opcode_counts),
        )

    @staticmethod
    def failed(workload, label: str, ep: str, failure: str) -> "BenchResult":
        """A structured failure: the job crashed or exceeded its time
        limit.  The run as a whole survives; this result records why
        the cell is missing."""
        return BenchResult(
            workload=getattr(workload, "name", workload),
            label=label, extension_point=ep,
            cycles=0, instructions=0, output=[], ok=False,
            describe=f"failed: {failure}",
            checks_executed=0, checks_wide=0, unsafe_percent=0.0,
            invariant_checks=0, trie_loads=0, trie_stores=0,
            shadow_stack_ops=0, lowfat_fallbacks=0,
            static=TargetStatistics(),
            status="failed", failure=failure,
        )

    def to_json(self) -> dict:
        """Plain-data representation; ``from_json`` inverts it exactly."""
        return asdict(self)

    @staticmethod
    def from_json(data: dict) -> "BenchResult":
        data = dict(data)
        static = data["static"]
        if not isinstance(static, TargetStatistics):
            data["static"] = TargetStatistics(
                gathered_checks=static["gathered_checks"],
                gathered_invariants=static["gathered_invariants"],
                filtered_checks=static["filtered_checks"],
                # .get: cache entries written before the range/hoist
                # filters existed lack the fields.
                range_filtered_checks=static.get("range_filtered_checks", 0),
                hoisted_checks=static.get("hoisted_checks", 0),
                coalesced_checks=static.get("coalesced_checks", 0),
                synthesized_checks=static.get("synthesized_checks", 0),
                verdicts=dict(static.get("verdicts", {})),
                by_kind=dict(static["by_kind"]),
            )
        data["output"] = list(data["output"])
        data["opcode_counts"] = dict(data["opcode_counts"])
        return BenchResult(**data)


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


# The engine lives in .runner (which itself imports BenchResult and
# config_for from this module); re-export it lazily under its
# historical name so the import works regardless of which module is
# loaded first.
def __getattr__(name):
    if name in ("Runner", "ExperimentEngine", "JobRequest"):
        from .runner import ExperimentEngine, JobRequest

        globals()["ExperimentEngine"] = ExperimentEngine
        globals()["Runner"] = ExperimentEngine
        globals()["JobRequest"] = JobRequest
        return globals()[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BenchResult", "CONFIG_LABELS", "ExperimentEngine", "JobRequest",
    "MAX_INSTRUCTIONS", "Runner", "config_for", "format_table", "geomean",
]

"""Full evaluation report: regenerate every table and figure.

``python -m repro.experiments.report [output.md]`` runs the complete
evaluation (sharing one result cache across experiments) and writes a
Markdown report; without an argument it prints to stdout.
"""

from __future__ import annotations

import sys
import time

from . import ablation, breakdown, fig9, fig10, fig11, fig12_13, optstats, table1, table2
from .common import Runner


def generate(runner: Runner = None) -> str:
    runner = runner or Runner()
    sections = []
    start = time.time()
    for producer in (
        table1.generate,
        table2.generate,
        fig9.generate,
        fig10.generate,
        fig11.generate,
        fig12_13.generate_fig12,
        fig12_13.generate_fig13,
        lambda r=runner: optstats.generate(r),
        lambda r=runner: breakdown.generate(r),
        lambda r=runner: ablation.generate(r),
    ):
        try:
            sections.append(producer(runner))
        except TypeError:
            sections.append(producer())
    elapsed = time.time() - start
    header = (
        "# Evaluation report\n\n"
        "Regenerated tables and figures of 'Memory Safety "
        "Instrumentations in Practice' (CGO'25) on the deterministic "
        "VM substrate.\n"
        f"(wall time: {elapsed:.0f}s)\n"
    )
    body = "\n\n".join(f"```\n{section}\n```" for section in sections)
    return header + "\n" + body + "\n"


def main() -> None:
    report = generate()
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(report)
        print(f"report written to {sys.argv[1]}")
    else:
        print(report)


if __name__ == "__main__":
    main()

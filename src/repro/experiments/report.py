"""Full evaluation report: regenerate every table and figure.

``python -m repro report`` (or ``python -m repro.experiments.report``)
runs the complete evaluation and writes a Markdown report.  All
experiment modules share one execution engine: the report first
collects every module's job matrix, resolves it in a single wave
(``--jobs N`` fans the jobs out over worker processes, the on-disk
cache makes a rerun near-instant), then renders the sections from the
memoized results.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from ..workloads import Workload
from . import (
    ablation, breakdown, fig9, fig10, fig11, fig12_13, optstats,
    table1, table2,
)
from .common import JobRequest, Runner
from .runner import add_engine_arguments, engine_from_args, workloads_from_args

_REQUEST_PRODUCERS = (
    table1.requests,
    table2.requests,
    fig9.requests,
    fig10.requests,
    fig11.requests,
    fig12_13.requests,
    optstats.requests,
    breakdown.requests,
    ablation.requests,
)


def all_requests(
    workloads: Optional[Sequence[Workload]] = None,
) -> List[JobRequest]:
    """Union of every experiment module's job matrix (the engine
    dedupes overlapping cells by cache key)."""
    requests: List[JobRequest] = []
    for producer in _REQUEST_PRODUCERS:
        requests.extend(producer(workloads))
    return requests


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None,
             timing: bool = True) -> str:
    runner = runner or Runner()
    start = time.time()
    runner.prefetch(all_requests(workloads))
    sections = [
        table1.generate(runner, workloads),
        table2.generate(runner, workloads),
        fig9.generate(runner, workloads),
        fig10.generate(runner, workloads),
        fig11.generate(runner, workloads),
        fig12_13.generate_fig12(runner, workloads),
        fig12_13.generate_fig13(runner, workloads),
        optstats.generate(runner, workloads),
        breakdown.generate(runner, workloads),
        ablation.generate(runner, workloads),
    ]
    elapsed = time.time() - start
    header = (
        "# Evaluation report\n\n"
        "Regenerated tables and figures of 'Memory Safety "
        "Instrumentations in Practice' (CGO'25) on the deterministic "
        "VM substrate.\n"
    )
    if timing:
        header += f"(wall time: {elapsed:.0f}s)\n"
    body = "\n\n".join(f"```\n{section}\n```" for section in sections)
    return header + "\n" + body + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="regenerate the full evaluation report",
    )
    parser.add_argument("output", nargs="?", default=None,
                        help="output file (default: stdout)")
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    try:
        workloads = workloads_from_args(args)
    except ValueError as exc:
        parser.error(str(exc))
    engine = engine_from_args(args)
    report = generate(engine, workloads)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    print(f"[engine] {engine.executed_jobs} jobs executed, "
          f"{engine.cache_hits} served from cache", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation studies for the design choices the paper discusses.

Not a table in the paper, but each knob is a decision Sections 4.3-4.6
and 5.1.2 analyse in prose; this experiment makes the trade-offs
measurable:

* **SoftBound: size-less extern arrays** -- wide upper bound
  (``-mi-sb-size-zero-wide-upper``, unchecked but usable) vs. NULL
  bounds (safe but spuriously rejects 164gzip).
* **SoftBound: integer-to-pointer casts** -- wide bounds vs. NULL
  bounds on the benchmarks with cold inttoptr round trips.
* **SoftBound: libc wrapper checks** -- disabled (the paper's
  comparability setting) vs. enabled (extra safety, extra cost).
* **Low-Fat: region capacity** -- shrinking per-class regions forces
  standard-allocator fallbacks, trading protection for memory
  (the configuration lever of Section 4.6).
* **Value-range check elimination** -- the interprocedural range /
  provenance filter (``-mi-opt-ranges``) stacked on the dominance
  filter: extra statically removed checks and the dynamic check-count
  delta, with the guarantee that program output is unchanged.

The ablation cells go through the same execution engine as the main
experiments (custom configurations ride in ``config_override``), so
they parallelize and cache like everything else.  Output validation is
off: several cells *expect* spurious violations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.config import InstrumentationConfig
from ..workloads import get
from .common import BenchResult, JobRequest, Runner, format_table

#: (label, constructor) for every ablation configuration; the label is
#: only for display and cache diagnostics -- the cache key hashes the
#: actual configuration contents.
_SB_WIDE = InstrumentationConfig.softbound
_SIZE_ZERO_BENCHMARKS = ("164gzip", "445gobmk", "433milc")
_INTTOPTR_BENCHMARKS = ("456hmmer", "458sjeng")
_WRAPPER_BENCHMARKS = ("464h264ref", "300twolf")
_CAPACITIES = (None, 1 << 16, 1 << 12, 1 << 10)
_RANGE_BENCHMARKS = ("164gzip", "177mesa", "300twolf", "186crafty")


def _request(workload_name: str, label: str,
             config: Optional[InstrumentationConfig],
             lf_region_capacity: Optional[int] = None) -> JobRequest:
    return JobRequest(
        get(workload_name), label,
        config_override=config,
        lf_region_capacity=lf_region_capacity,
        validate_output=False,
    )


def _capacity_label(capacity: Optional[int]) -> str:
    return "lf-cap-full" if capacity is None else f"lf-cap-{capacity}"


def requests(workloads=None) -> List[JobRequest]:
    """The full ablation matrix.  The benchmark set is fixed by the
    study design, so the ``workloads`` subset argument is ignored."""
    reqs: List[JobRequest] = []
    for benchmark in _SIZE_ZERO_BENCHMARKS:
        reqs.append(_request(benchmark, "sb-size-zero-wide", _SB_WIDE()))
        reqs.append(_request(benchmark, "sb-size-zero-null",
                             _SB_WIDE(sb_size_zero_wide_upper=False)))
    for benchmark in _INTTOPTR_BENCHMARKS:
        reqs.append(_request(benchmark, "sb-inttoptr-wide", _SB_WIDE()))
        reqs.append(_request(benchmark, "sb-inttoptr-null",
                             _SB_WIDE(sb_inttoptr_wide_bounds=False)))
    for benchmark in _WRAPPER_BENCHMARKS:
        reqs.append(_request(benchmark, "baseline", None))
        reqs.append(_request(benchmark, "sb-wrappers-off",
                             _SB_WIDE(opt_dominance=True)))
        reqs.append(_request(benchmark, "sb-wrappers-on",
                             _SB_WIDE(opt_dominance=True,
                                      sb_wrapper_checks=True)))
    for capacity in _CAPACITIES:
        reqs.append(_request("197parser", _capacity_label(capacity),
                             InstrumentationConfig.lowfat(),
                             lf_region_capacity=capacity))
    for benchmark in _RANGE_BENCHMARKS:
        reqs.append(JobRequest(get(benchmark), "softbound"))
        reqs.append(JobRequest(get(benchmark), "softbound-ranges"))
    return reqs


def _verdict(result: BenchResult) -> str:
    if result.status == "violation":
        return f"spurious {result.violation_kind} report"
    if result.status == "fault":
        return "fault"
    return "runs"


def ablate_sb_size_zero(runner: Runner) -> str:
    rows: List[List[str]] = []
    for benchmark in _SIZE_ZERO_BENCHMARKS:
        wide = runner.run_request(
            _request(benchmark, "sb-size-zero-wide", _SB_WIDE()))
        null = runner.run_request(
            _request(benchmark, "sb-size-zero-null",
                     _SB_WIDE(sb_size_zero_wide_upper=False)))
        rows.append([
            benchmark,
            f"{_verdict(wide)} ({wide.unsafe_percent:.1f}% wide)",
            _verdict(null),
        ])
    return (
        "SoftBound size-less extern arrays: wide upper bound vs NULL bounds\n"
        "(wide = applicable but unchecked; NULL = safe but spurious reports)\n\n"
        + format_table(["benchmark", "wide upper (default)", "NULL bounds"], rows)
    )


def ablate_sb_inttoptr(runner: Runner) -> str:
    rows: List[List[str]] = []
    for benchmark in _INTTOPTR_BENCHMARKS:
        wide = runner.run_request(
            _request(benchmark, "sb-inttoptr-wide", _SB_WIDE()))
        null = runner.run_request(
            _request(benchmark, "sb-inttoptr-null",
                     _SB_WIDE(sb_inttoptr_wide_bounds=False)))
        rows.append([benchmark, _verdict(wide), _verdict(null)])
    return (
        "SoftBound integer-to-pointer casts: wide bounds vs NULL bounds\n"
        "(C allows ptr->int->ptr round trips; NULL bounds reject them)\n\n"
        + format_table(["benchmark", "wide (default)", "NULL bounds"], rows)
    )


def ablate_sb_wrapper_checks(runner: Runner) -> str:
    rows: List[List[str]] = []
    for benchmark in _WRAPPER_BENCHMARKS:
        base = runner.run_request(_request(benchmark, "baseline", None))
        off = runner.run_request(
            _request(benchmark, "sb-wrappers-off",
                     _SB_WIDE(opt_dominance=True)))
        on = runner.run_request(
            _request(benchmark, "sb-wrappers-on",
                     _SB_WIDE(opt_dominance=True, sb_wrapper_checks=True)))
        rows.append([
            benchmark,
            f"{off.cycles / base.cycles:.2f}x",
            f"{on.cycles / base.cycles:.2f}x",
        ])
    return (
        "SoftBound libc wrapper checks (Section 5.1.2 disables them for "
        "comparability)\n\n"
        + format_table(["benchmark", "checks off (paper)", "checks on"], rows)
    )


def ablate_lf_region_capacity(runner: Runner) -> str:
    rows: List[List[str]] = []
    for capacity in _CAPACITIES:
        result = runner.run_request(
            _request("197parser", _capacity_label(capacity),
                     InstrumentationConfig.lowfat(),
                     lf_region_capacity=capacity))
        label = "full (4 GiB)" if capacity is None else f"{capacity} B"
        rows.append([
            label,
            str(result.lowfat_allocs),
            str(result.lowfat_fallbacks),
            f"{result.unsafe_percent:.2f}%",
        ])
    return (
        "Low-Fat region capacity sweep on 197parser: exhausted regions "
        "fall back\nto the standard allocator, weakening the guarantees "
        "(Section 4.6)\n\n"
        + format_table(
            ["region capacity", "low-fat allocs", "fallbacks", "unsafe %"],
            rows,
        )
    )


def ablate_range_filter(runner: Runner) -> str:
    rows: List[List[str]] = []
    for benchmark in _RANGE_BENCHMARKS:
        dom = runner.run_request(JobRequest(get(benchmark), "softbound"))
        rng = runner.run_request(
            JobRequest(get(benchmark), "softbound-ranges"))
        same = (rng.output == dom.output and rng.status == dom.status)
        rows.append([
            benchmark,
            str(rng.static.filtered_checks),
            str(rng.static.range_filtered_checks),
            str(dom.checks_executed),
            str(rng.checks_executed),
            "identical" if same else "DIVERGED",
        ])
    return (
        "Value-range check elimination (-mi-opt-ranges) on top of the\n"
        "dominance filter: statically discharged in-bounds proofs must "
        "not change behaviour\n\n"
        + format_table(
            ["benchmark", "dom removed", "ranges removed",
             "dyn checks (dom)", "dyn checks (ranges)", "output"],
            rows,
        )
    )


def generate(runner: Runner = None, workloads=None) -> str:
    runner = runner or Runner()
    runner.prefetch(requests())
    sections = [
        ablate_sb_size_zero(runner),
        ablate_sb_inttoptr(runner),
        ablate_sb_wrapper_checks(runner),
        ablate_lf_region_capacity(runner),
        ablate_range_filter(runner),
    ]
    return "Ablations: configuration trade-offs (paper Sections 4.3-4.6, "\
           "5.1.2)\n\n" + "\n\n".join(sections)


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Ablation studies for the design choices the paper discusses.

Not a table in the paper, but each knob is a decision Sections 4.3-4.6
and 5.1.2 analyse in prose; this experiment makes the trade-offs
measurable:

* **SoftBound: size-less extern arrays** -- wide upper bound
  (``-mi-sb-size-zero-wide-upper``, unchecked but usable) vs. NULL
  bounds (safe but spuriously rejects 164gzip).
* **SoftBound: integer-to-pointer casts** -- wide bounds vs. NULL
  bounds on the benchmarks with cold inttoptr round trips.
* **SoftBound: libc wrapper checks** -- disabled (the paper's
  comparability setting) vs. enabled (extra safety, extra cost).
* **Low-Fat: region capacity** -- shrinking per-class regions forces
  standard-allocator fallbacks, trading protection for memory
  (the configuration lever of Section 4.6).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import InstrumentationConfig
from ..driver import CompileOptions, compile_program, run_program
from ..workloads import get
from .common import format_table


def _run(workload_name: str, config: Optional[InstrumentationConfig],
         lf_region_capacity: Optional[int] = None):
    workload = get(workload_name)
    options = CompileOptions(
        obfuscate_pointer_copies=tuple(workload.obfuscated_units)
    )
    if config is None:
        program = compile_program(workload.sources, options=options)
    else:
        program = compile_program(workload.sources, config, options)
    return run_program(program, max_instructions=100_000_000,
                       lf_region_capacity=lf_region_capacity)


def _verdict(result) -> str:
    if result.violation is not None:
        return f"spurious {result.violation.kind} report"
    if result.fault is not None:
        return "fault"
    return "runs"


def ablate_sb_size_zero() -> str:
    rows: List[List[str]] = []
    for benchmark in ("164gzip", "445gobmk", "433milc"):
        wide = _run(benchmark, InstrumentationConfig.softbound())
        null = _run(
            benchmark,
            InstrumentationConfig.softbound(sb_size_zero_wide_upper=False),
        )
        rows.append([
            benchmark,
            f"{_verdict(wide)} ({wide.stats.unsafe_percent:.1f}% wide)",
            _verdict(null),
        ])
    return (
        "SoftBound size-less extern arrays: wide upper bound vs NULL bounds\n"
        "(wide = applicable but unchecked; NULL = safe but spurious reports)\n\n"
        + format_table(["benchmark", "wide upper (default)", "NULL bounds"], rows)
    )


def ablate_sb_inttoptr() -> str:
    rows: List[List[str]] = []
    for benchmark in ("456hmmer", "458sjeng"):
        wide = _run(benchmark, InstrumentationConfig.softbound())
        null = _run(
            benchmark,
            InstrumentationConfig.softbound(sb_inttoptr_wide_bounds=False),
        )
        rows.append([benchmark, _verdict(wide), _verdict(null)])
    return (
        "SoftBound integer-to-pointer casts: wide bounds vs NULL bounds\n"
        "(C allows ptr->int->ptr round trips; NULL bounds reject them)\n\n"
        + format_table(["benchmark", "wide (default)", "NULL bounds"], rows)
    )


def ablate_sb_wrapper_checks() -> str:
    rows: List[List[str]] = []
    for benchmark in ("464h264ref", "300twolf"):
        base = _run(benchmark, None)
        off = _run(benchmark, InstrumentationConfig.softbound(opt_dominance=True))
        on = _run(
            benchmark,
            InstrumentationConfig.softbound(opt_dominance=True,
                                            sb_wrapper_checks=True),
        )
        rows.append([
            benchmark,
            f"{off.stats.cycles / base.stats.cycles:.2f}x",
            f"{on.stats.cycles / base.stats.cycles:.2f}x",
        ])
    return (
        "SoftBound libc wrapper checks (Section 5.1.2 disables them for "
        "comparability)\n\n"
        + format_table(["benchmark", "checks off (paper)", "checks on"], rows)
    )


def ablate_lf_region_capacity() -> str:
    rows: List[List[str]] = []
    for capacity in (None, 1 << 16, 1 << 12, 1 << 10):
        result = _run("197parser", InstrumentationConfig.lowfat(),
                      lf_region_capacity=capacity)
        label = "full (4 GiB)" if capacity is None else f"{capacity} B"
        rows.append([
            label,
            str(result.stats.lowfat_allocs),
            str(result.stats.lowfat_fallback_allocs),
            f"{result.stats.unsafe_percent:.2f}%",
        ])
    return (
        "Low-Fat region capacity sweep on 197parser: exhausted regions "
        "fall back\nto the standard allocator, weakening the guarantees "
        "(Section 4.6)\n\n"
        + format_table(
            ["region capacity", "low-fat allocs", "fallbacks", "unsafe %"],
            rows,
        )
    )


def generate(runner=None) -> str:
    sections = [
        ablate_sb_size_zero(),
        ablate_sb_inttoptr(),
        ablate_sb_wrapper_checks(),
        ablate_lf_region_capacity(),
    ]
    return "Ablations: configuration trade-offs (paper Sections 4.3-4.6, "\
           "5.1.2)\n\n" + "\n\n".join(sections)


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Figure 9: execution time comparison of SoftBound and Low-Fat.

Runtime overheads normalized to the uninstrumented -O3 build, both
approaches with the dominance check elimination, instrumented at
extension point VectorizerStart (the paper's Figure 9 setting).

Expected shape: comparable means (paper: SB 1.74x, LF 1.77x) with wide
per-benchmark variation; Low-Fat wins on the pointer-loading hot loop
of 183equake, SoftBound wins on check-dense 186crafty.
"""

from __future__ import annotations

from typing import Dict, List

from ..workloads import all_workloads
from .common import Runner, format_table, geomean


def collect(runner: Runner = None) -> Dict[str, Dict[str, float]]:
    runner = runner or Runner()
    data: Dict[str, Dict[str, float]] = {}
    for workload in all_workloads():
        data[workload.name] = {
            "softbound": runner.overhead(workload, "softbound"),
            "lowfat": runner.overhead(workload, "lowfat"),
        }
    return data


def generate(runner: Runner = None) -> str:
    runner = runner or Runner()
    data = collect(runner)
    headers = ["benchmark", "SoftBound", "Low-Fat"]
    rows: List[List[str]] = []
    for name, overheads in data.items():
        rows.append([name, f"{overheads['softbound']:.2f}x",
                     f"{overheads['lowfat']:.2f}x"])
    rows.append(["geomean",
                 f"{geomean(v['softbound'] for v in data.values()):.2f}x",
                 f"{geomean(v['lowfat'] for v in data.values()):.2f}x"])
    table = format_table(headers, rows)
    return (
        "Figure 9: execution time overhead vs uninstrumented -O3\n"
        "(optimized configs, extension point VectorizerStart)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

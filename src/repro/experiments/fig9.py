"""Figure 9: execution time comparison of SoftBound and Low-Fat.

Runtime overheads normalized to the uninstrumented -O3 build, both
approaches with the dominance check elimination, instrumented at
extension point VectorizerStart (the paper's Figure 9 setting).

Expected shape: comparable means (paper: SB 1.74x, LF 1.77x) with wide
per-benchmark variation; Low-Fat wins on the pointer-loading hot loop
of 183equake, SoftBound wins on check-dense 186crafty.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table, geomean


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads for label in ("softbound", "lowfat")]


def collect(runner: Runner = None,
            workloads: Optional[Sequence[Workload]] = None
            ) -> Dict[str, Dict[str, float]]:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    data: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        data[workload.name] = {
            "softbound": runner.overhead(workload, "softbound"),
            "lowfat": runner.overhead(workload, "lowfat"),
        }
    return data


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    data = collect(runner, workloads)
    headers = ["benchmark", "SoftBound", "Low-Fat"]
    rows: List[List[str]] = []
    for name, overheads in data.items():
        rows.append([name, f"{overheads['softbound']:.2f}x",
                     f"{overheads['lowfat']:.2f}x"])
    rows.append(["geomean",
                 f"{geomean(v['softbound'] for v in data.values()):.2f}x",
                 f"{geomean(v['lowfat'] for v in data.values()):.2f}x"])
    table = format_table(headers, rows)
    return (
        "Figure 9: execution time overhead vs uninstrumented -O3\n"
        "(optimized configs, extension point VectorizerStart)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

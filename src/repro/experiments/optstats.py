"""Section 5.3 statistics: effect of the static check eliminations.

For each benchmark, two layers of static check removal:

* the *dominance* filter (paper Section 5.3: between 8% for 177mesa
  and 50% for 256bzip2 of the statically gathered checks), and
* the *value-range* filter stacked on top of it (``-mi-opt-ranges``):
  checks whose pointer provably stays inside its allocation on every
  execution, discharged by the interprocedural range / provenance
  analysis of :mod:`repro.analysis.ranges`.

Static columns count gathered checks, checks each layer removes, and
the cumulative removal percentage; the dynamic columns report how many
checks actually execute under dominance-only vs dominance+ranges, plus
the runtime overhead of each configuration (paper: minor deltas,
because the compiler removes dominated duplicate checks on its own).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table, geomean

LABELS = ("softbound", "softbound-unopt", "softbound-ranges",
          "lowfat", "lowfat-unopt", "lowfat-ranges")


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads for label in LABELS]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    headers = ["benchmark", "checks", "dom", "dom %", "ranges", "total %",
               "dyn dom", "dyn ranges",
               "SB unopt", "SB opt", "SB rng", "LF opt", "LF rng"]
    rows: List[List[str]] = []
    dom_fractions = []
    range_extra = 0
    range_workloads = 0
    for workload in workloads:
        opt = runner.run(workload, "softbound")
        rng = runner.run(workload, "softbound-ranges")
        static = rng.static
        dom_fraction = 100.0 * static.filtered_fraction
        total_fraction = dom_fraction + 100.0 * static.range_filtered_fraction
        dom_fractions.append(dom_fraction)
        if static.range_filtered_checks:
            range_extra += static.range_filtered_checks
            range_workloads += 1
        rows.append([
            workload.name,
            str(static.gathered_checks),
            str(static.filtered_checks),
            f"{dom_fraction:.1f}%",
            str(static.range_filtered_checks),
            f"{total_fraction:.1f}%",
            str(opt.checks_executed),
            str(rng.checks_executed),
            f"{runner.overhead(workload, 'softbound-unopt'):.2f}x",
            f"{runner.overhead(workload, 'softbound'):.2f}x",
            f"{runner.overhead(workload, 'softbound-ranges'):.2f}x",
            f"{runner.overhead(workload, 'lowfat'):.2f}x",
            f"{runner.overhead(workload, 'lowfat-ranges'):.2f}x",
        ])
    table = format_table(headers, rows)
    lo, hi = min(dom_fractions), max(dom_fractions)
    return (
        "Section 5.3: static check elimination "
        "(dominance filter + value-range filter)\n"
        f"(dominance removes {lo:.0f}%..{hi:.0f}% of static checks; "
        f"the range filter removes {range_extra} more "
        f"on {range_workloads}/{len(workloads)} benchmarks; "
        "runtime impact is minor)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Section 5.3 statistics: effect of the static check eliminations.

For each benchmark, two layers of static check removal:

* the *dominance* filter (paper Section 5.3: between 8% for 177mesa
  and 50% for 256bzip2 of the statically gathered checks), and
* the *value-range* filter stacked on top of it (``-mi-opt-ranges``):
  checks whose pointer provably stays inside its allocation on every
  execution, discharged by the interprocedural range / provenance
  analysis of :mod:`repro.analysis.ranges`, and
* the *loop hoist / coalesce* transform stacked on both
  (``-mi-opt-hoist``): per-iteration checks of counted loops replaced
  by one widened preheader check, plus block-level coalescing of
  consecutive same-object checks.

Static columns count gathered checks, checks each layer removes /
replaces, and the cumulative reduction percentage; the ``provable``
column reports the share of gathered checks the range analysis proved
safe (static verdicts); the dynamic columns report how many checks
actually execute under each configuration, plus the runtime overhead
of each (paper: minor deltas for the dominance filter, because the
compiler removes dominated duplicate checks on its own).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table, geomean

LABELS = ("softbound", "softbound-unopt", "softbound-ranges",
          "softbound-hoist",
          "lowfat", "lowfat-unopt", "lowfat-ranges", "lowfat-hoist")


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads for label in LABELS]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    headers = ["benchmark", "checks", "dom", "dom %", "ranges", "hoist",
               "total %", "provable",
               "dyn dom", "dyn ranges", "dyn hoist",
               "SB unopt", "SB opt", "SB rng", "SB hoist",
               "LF opt", "LF rng", "LF hoist"]
    rows: List[List[str]] = []
    dom_fractions = []
    range_extra = 0
    range_workloads = 0
    hoist_extra = 0
    hoist_workloads = 0
    hoist_dyn_wins = 0
    for workload in workloads:
        opt = runner.run(workload, "softbound")
        rng = runner.run(workload, "softbound-ranges")
        hoist = runner.run(workload, "softbound-hoist")
        static = rng.static
        hstatic = hoist.static
        dom_fraction = 100.0 * static.filtered_fraction
        total_fraction = (dom_fraction
                          + 100.0 * hstatic.range_filtered_fraction
                          + 100.0 * hstatic.hoisted_fraction)
        dom_fractions.append(dom_fraction)
        if static.range_filtered_checks:
            range_extra += static.range_filtered_checks
            range_workloads += 1
        replaced = hstatic.hoisted_checks + hstatic.coalesced_checks
        if replaced:
            hoist_extra += replaced
            hoist_workloads += 1
        if hoist.checks_executed < rng.checks_executed:
            hoist_dyn_wins += 1
        rows.append([
            workload.name,
            str(static.gathered_checks),
            str(static.filtered_checks),
            f"{dom_fraction:.1f}%",
            str(static.range_filtered_checks),
            str(replaced),
            f"{total_fraction:.1f}%",
            f"{100.0 * hstatic.proven_safe_fraction:.0f}%",
            str(opt.checks_executed),
            str(rng.checks_executed),
            str(hoist.checks_executed),
            f"{runner.overhead(workload, 'softbound-unopt'):.2f}x",
            f"{runner.overhead(workload, 'softbound'):.2f}x",
            f"{runner.overhead(workload, 'softbound-ranges'):.2f}x",
            f"{runner.overhead(workload, 'softbound-hoist'):.2f}x",
            f"{runner.overhead(workload, 'lowfat'):.2f}x",
            f"{runner.overhead(workload, 'lowfat-ranges'):.2f}x",
            f"{runner.overhead(workload, 'lowfat-hoist'):.2f}x",
        ])
    table = format_table(headers, rows)
    lo, hi = min(dom_fractions), max(dom_fractions)
    return (
        "Section 5.3: static check elimination "
        "(dominance filter + value-range filter + loop hoisting)\n"
        f"(dominance removes {lo:.0f}%..{hi:.0f}% of static checks; "
        f"the range filter removes {range_extra} more "
        f"on {range_workloads}/{len(workloads)} benchmarks; "
        f"hoisting/coalescing replaces {hoist_extra} more "
        f"on {hoist_workloads}/{len(workloads)}, reducing executed "
        f"checks on {hoist_dyn_wins}/{len(workloads)}; "
        "runtime impact is minor)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Section 5.3 statistics: effect of the dominance check elimination.

For each benchmark: the fraction of statically gathered checks the
dominance filter removes (paper: between 8% for 177mesa and 50% for
256bzip2), and the runtime delta it buys (paper: minor, because the
compiler removes dominated duplicate checks on its own).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table, geomean

LABELS = ("softbound", "softbound-unopt", "lowfat", "lowfat-unopt")


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads for label in LABELS]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    headers = ["benchmark", "checks", "removed", "removed %",
               "SB unopt", "SB opt", "LF unopt", "LF opt"]
    rows: List[List[str]] = []
    fractions = []
    for workload in workloads:
        opt = runner.run(workload, "softbound")
        static = opt.static
        fraction = 100.0 * static.filtered_fraction
        fractions.append(fraction)
        rows.append([
            workload.name,
            str(static.gathered_checks),
            str(static.filtered_checks),
            f"{fraction:.1f}%",
            f"{runner.overhead(workload, 'softbound-unopt'):.2f}x",
            f"{runner.overhead(workload, 'softbound'):.2f}x",
            f"{runner.overhead(workload, 'lowfat-unopt'):.2f}x",
            f"{runner.overhead(workload, 'lowfat'):.2f}x",
        ])
    table = format_table(headers, rows)
    lo, hi = min(fractions), max(fractions)
    return (
        "Section 5.3: dominance-based check elimination\n"
        f"(static checks removed: {lo:.0f}%..{hi:.0f}% across benchmarks; "
        "runtime impact is minor)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Figure 10: SoftBound -- optimized vs unoptimized vs metadata only.

Three configurations per benchmark, normalized to -O3:

* *optimized*   -- full checks + dominance check elimination;
* *unoptimized* -- full checks, no filter;
* *metadata*    -- ``-mi-mode=geninvariants``: only metadata
  propagation (trie + shadow stack), no dereference checks.

Expected shape (paper Section 5.3/5.4): the dominance optimization has
minor runtime impact (the compiler removes dominated duplicates
anyway); metadata-only overhead is low for most benchmarks but
*dominates* for trie-heavy ones (197parser, 464h264ref); 183equake's
metadata-only cost is deceptively low because unused trie loads are
removed by dead-code elimination.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table, geomean

APPROACH = "softbound"


def requests_for(approach: str,
                 workloads: Optional[Sequence[Workload]] = None
                 ) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    labels = (approach, f"{approach}-unopt", f"{approach}-meta")
    return [JobRequest(workload, label)
            for workload in workloads for label in labels]


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    return requests_for(APPROACH, workloads)


def collect(runner: Runner, approach: str,
            workloads: Optional[Sequence[Workload]] = None
            ) -> Dict[str, Dict[str, float]]:
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests_for(approach, workloads))
    data: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        data[workload.name] = {
            "optimized": runner.overhead(workload, approach),
            "unoptimized": runner.overhead(workload, f"{approach}-unopt"),
            "metadata": runner.overhead(workload, f"{approach}-meta"),
        }
    return data


def generate_for(approach: str, title: str, runner: Runner = None,
                 workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    data = collect(runner, approach, workloads)
    headers = ["benchmark", "optimized", "unoptimized", "metadata only"]
    rows: List[List[str]] = []
    for name, d in data.items():
        rows.append([name, f"{d['optimized']:.2f}x", f"{d['unoptimized']:.2f}x",
                     f"{d['metadata']:.2f}x"])
    rows.append([
        "geomean",
        f"{geomean(d['optimized'] for d in data.values()):.2f}x",
        f"{geomean(d['unoptimized'] for d in data.values()):.2f}x",
        f"{geomean(d['metadata'] for d in data.values()):.2f}x",
    ])
    return title + "\n\n" + format_table(headers, rows)


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    return generate_for(
        APPROACH,
        "Figure 10: SoftBound optimized / unoptimized / metadata-only "
        "overhead vs -O3",
        runner,
        workloads,
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Section 5.4 counterpart: where the instrumentation cycles go.

The paper attributes execution-time overhead to instrumentation parts
(dereference checks vs. metadata propagation, with the trie dominating
SoftBound's invariant cost).  The deterministic cost model makes this
attribution *exact*: every runtime operation is charged under its own
opcode, so the harness can split each benchmark's added cycles into

* SoftBound: dereference checks / trie / shadow stack / wrappers;
* Low-Fat: dereference checks / escape-invariant checks / base
  recomputation / allocator.

Residual cycles ("other") are second-order compilation differences
(blocked optimizations, changed inlining) -- the part of the overhead
that is *not* runtime library work, which Section 5.5 shows can
dominate at early extension points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..vm import costs
from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table

SB_CATEGORIES: List[Tuple[str, Tuple[str, ...]]] = [
    ("checks", ("__sb_check",)),
    ("trie", ("__sb_trie_load_base", "__sb_trie_load_bound",
              "__sb_trie_store")),
    ("shadow stack", ("__sb_ss_enter", "__sb_ss_exit", "__sb_ss_set",
                      "__sb_ss_get_base", "__sb_ss_get_bound",
                      "__sb_ss_set_ret", "__sb_ss_get_ret_base",
                      "__sb_ss_get_ret_bound")),
]

LF_CATEGORIES: List[Tuple[str, Tuple[str, ...]]] = [
    ("checks", ("__lf_check",)),
    ("invariants", ("__lf_invariant_check",)),
    ("base recompute", ("__lf_compute_base",)),
    ("allocator", ("__lf_malloc", "__lf_calloc", "__lf_realloc",
                   "__lf_free", "__lf_alloca")),
]


def _runtime_cycles(opcode_counts, names: Tuple[str, ...]) -> int:
    total = 0
    for name in names:
        total += opcode_counts.get(f"native:{name}", 0) * costs.call_cost(name)
    return total


def _wrapper_cycles(opcode_counts) -> int:
    total = 0
    for opcode, count in opcode_counts.items():
        if opcode.startswith("native:__sb_wrap_"):
            name = opcode[len("native:"):]
            wrapped = name[len("__sb_wrap_"):]
            per_call = costs.call_cost(name) - costs.call_cost(wrapped)
            total += count * max(per_call, 0)
    return total


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads
            for label in ("baseline", "softbound", "lowfat")]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    # BenchResult carries the raw per-opcode counts, so the attribution
    # runs off the same engine (and cache) as every other experiment.
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))

    rows_sb: List[List[str]] = []
    rows_lf: List[List[str]] = []
    for workload in workloads:
        base_cycles = runner.baseline(workload).cycles

        for label, categories, rows in (
            ("softbound", SB_CATEGORIES, rows_sb),
            ("lowfat", LF_CATEGORIES, rows_lf),
        ):
            result = runner.run(workload, label)
            counts = result.opcode_counts
            overhead = result.cycles - base_cycles
            parts = {
                name: _runtime_cycles(counts, natives)
                for name, natives in categories
            }
            if label == "softbound":
                parts["wrappers"] = _wrapper_cycles(counts)
            other = overhead - sum(parts.values())
            row = [workload.name, f"{overhead}"]
            for name, _ in categories:
                share = 100.0 * parts[name] / overhead if overhead else 0.0
                row.append(f"{share:.0f}%")
            if label == "softbound":
                share = 100.0 * parts["wrappers"] / overhead if overhead else 0.0
                row.append(f"{share:.0f}%")
            row.append(f"{100.0 * other / overhead if overhead else 0.0:.0f}%")
            rows.append(row)

    sb_headers = ["benchmark", "added cycles", "checks", "trie",
                  "shadow stack", "wrappers", "other"]
    lf_headers = ["benchmark", "added cycles", "checks", "invariants",
                  "base recompute", "allocator", "other"]
    return (
        "Section 5.4 counterpart: overhead attribution (optimized "
        "configs, EP=VectorizerStart)\n"
        "('other' = second-order compilation effects: blocked "
        "optimizations, changed inlining)\n\n"
        "SoftBound\n\n" + format_table(sb_headers, rows_sb)
        + "\n\nLow-Fat Pointers\n\n" + format_table(lf_headers, rows_lf)
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

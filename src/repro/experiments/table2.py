"""Table 2: number of unsafe (wide-bounds) dereferences in percent.

For each benchmark and approach, the percentage of dynamically executed
dereference checks that had to use *wide* bounds -- i.e. could not
actually be checked (paper Section 4.6).  Benchmarks containing
size-zero (size-less extern) array declarations are marked **bold** in
the paper; an asterisk marks benchmarks with not a single wide check.

Expected shape (paper): almost all benchmarks fully checked; 164gzip
suffers ~62% unchecked under SoftBound (size-less arrays everywhere),
429mcf ~54% unchecked under Low-Fat (one >1 GiB allocation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import (
    MAX_INSTRUCTIONS,
    JobRequest,
    Runner,
    config_for,
    format_table,
)


def _cell(percent: float, wide_count: int) -> str:
    star = "*" if wide_count == 0 else ""
    return f"{percent:.2f}{star}"


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads for label in ("softbound", "lowfat")]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    headers = ["benchmark", "SB %", "LF %", "size-zero decls"]
    rows: List[List[str]] = []
    for workload in workloads:
        sb = runner.run(workload, "softbound")
        lf = runner.run(workload, "lowfat")
        rows.append([
            workload.name,
            _cell(sb.unsafe_percent, sb.checks_wide),
            _cell(lf.unsafe_percent, lf.checks_wide),
            "yes" if workload.has_size_zero_arrays else "",
        ])
    table = format_table(headers, rows)
    return (
        "Table 2: unsafe dereferences in % (dynamic checks with wide "
        "bounds)\n(* = zero wide-bounds checks; 'yes' marks the paper's "
        "bold size-zero-array benchmarks)\n\n" + table
        + "\n\n" + _attribution_section(runner, workloads)
    )


def _attribution_section(runner: Runner, workloads: Sequence[Workload],
                         top_sites: int = 3) -> str:
    """Measured wide-bounds attribution for every starred cell.

    Cells with wide checks are re-run *fresh* with profiling on (the
    cached results must stay bit-identical to unprofiled runs, so
    profiled runs never go through the experiment cache) and the
    per-site reasons are aggregated via :mod:`repro.profiling`.
    """
    from ..driver import CompileOptions, compile_program, run_program
    from ..profiling import build_profile

    rows: List[List[str]] = []
    for workload in workloads:
        for label in ("softbound", "lowfat"):
            cached = runner.run(workload, label)
            if cached.checks_wide == 0:
                continue
            options = CompileOptions(
                obfuscate_pointer_copies=tuple(workload.obfuscated_units),
            )
            program = compile_program(
                workload.sources, config_for(label), options)
            run = run_program(program, max_instructions=MAX_INSTRUCTIONS,
                              profile=True)
            profile = build_profile(program, run)
            total_wide = profile["totals"]["checks_wide"]
            for site in profile["wide_sites"][:top_sites]:
                for reason, count in sorted(site["reasons"].items(),
                                            key=lambda kv: -kv[1]):
                    share = (100.0 * count / total_wide
                             if total_wide else 0.0)
                    rows.append([
                        workload.name,
                        label,
                        site["site"],
                        "-" if site["line"] is None else str(site["line"]),
                        reason,
                        str(count),
                        f"{share:.1f}%",
                    ])
    if not rows:
        return ("Wide-bounds attribution: no benchmark executed a "
                "wide-bounds check.")
    table = format_table(
        ["benchmark", "approach", "site", "line", "reason", "wide",
         "% of wide"],
        rows,
    )
    return (
        "Wide-bounds attribution (measured, per static check site; "
        f"top {top_sites} sites per cell with wide checks):\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

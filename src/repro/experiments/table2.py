"""Table 2: number of unsafe (wide-bounds) dereferences in percent.

For each benchmark and approach, the percentage of dynamically executed
dereference checks that had to use *wide* bounds -- i.e. could not
actually be checked (paper Section 4.6).  Benchmarks containing
size-zero (size-less extern) array declarations are marked **bold** in
the paper; an asterisk marks benchmarks with not a single wide check.

Expected shape (paper): almost all benchmarks fully checked; 164gzip
suffers ~62% unchecked under SoftBound (size-less arrays everywhere),
429mcf ~54% unchecked under Low-Fat (one >1 GiB allocation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table


def _cell(percent: float, wide_count: int) -> str:
    star = "*" if wide_count == 0 else ""
    return f"{percent:.2f}{star}"


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, label)
            for workload in workloads for label in ("softbound", "lowfat")]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    headers = ["benchmark", "SB %", "LF %", "size-zero decls"]
    rows: List[List[str]] = []
    for workload in workloads:
        sb = runner.run(workload, "softbound")
        lf = runner.run(workload, "lowfat")
        rows.append([
            workload.name,
            _cell(sb.unsafe_percent, sb.checks_wide),
            _cell(lf.unsafe_percent, lf.checks_wide),
            "yes" if workload.has_size_zero_arrays else "",
        ])
    table = format_table(headers, rows)
    return (
        "Table 2: unsafe dereferences in % (dynamic checks with wide "
        "bounds)\n(* = zero wide-bounds checks; 'yes' marks the paper's "
        "bold size-zero-array benchmarks)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Figure 11: Low-Fat Pointers -- optimized, unoptimized, metadata only.

Same three configurations as Figure 10, for Low-Fat Pointers.  The
"metadata" configuration carries Low-Fat's *escape-invariant checks*
(pointers stored / passed / returned must be in bounds) without
dereference checks -- the paper's "only metadata propagation" series.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..workloads import Workload
from .common import JobRequest, Runner
from .fig10 import generate_for, requests_for


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    return requests_for("lowfat", workloads)


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    return generate_for(
        "lowfat",
        "Figure 11: Low-Fat Pointers optimized / unoptimized / "
        "metadata-only overhead vs -O3",
        runner,
        workloads,
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

"""Experiment harness: regenerates every table and figure of the paper.

Results are produced by the parallel, disk-cached execution engine in
:mod:`.runner`; see EXPERIMENTS.md for the ``--jobs`` / ``--cache-dir``
workflow.
"""

from .cache import ResultCache, default_cache_dir, job_key
from .common import (
    BenchResult,
    CONFIG_LABELS,
    ExperimentEngine,
    JobRequest,
    Runner,
    config_for,
    format_table,
    geomean,
)

__all__ = [
    "BenchResult",
    "CONFIG_LABELS",
    "ExperimentEngine",
    "JobRequest",
    "ResultCache",
    "Runner",
    "config_for",
    "default_cache_dir",
    "format_table",
    "geomean",
    "job_key",
]

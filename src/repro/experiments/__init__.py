"""Experiment harness: regenerates every table and figure of the paper."""

from .common import Runner, config_for, format_table, geomean

__all__ = ["Runner", "config_for", "format_table", "geomean"]

"""Content-addressed on-disk cache for benchmark results.

Every experiment job is described by a *self-contained payload*: the
workload sources, the full :class:`InstrumentationConfig`, the compile
options, the VM budget, and the runtime knobs.  The cache key is the
SHA-256 of the canonical JSON of that payload plus the repro package
version, so

* identical (workload, configuration) requests -- whether they come
  from another experiment module, another process, or another
  ``benchmarks/bench_*.py`` invocation -- resolve to the same entry;
* *any* change to the keyed inputs (a workload source edit, a config
  flag, a different extension point or instruction budget, a package
  upgrade) changes the key and therefore invalidates the entry
  automatically.  Stale entries are never consulted; they are simply
  unreachable garbage.

Entries are one JSON file per key under ``<dir>/<key[:2]>/<key>.json``,
written atomically (temp file + ``os.replace``) so concurrent writers
of the *same* key are harmless.  Unreadable or malformed entries are
treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional

from .. import __version__

#: Bump when the BenchResult JSON schema changes incompatibly; old
#: entries then miss instead of deserializing garbage.  Version 3:
#: TargetStatistics gained the hoist counters and static verdicts, and
#: InstrumentationConfig gained ``opt_hoist`` (part of every job key).
CACHE_FORMAT_VERSION = 3

#: Payload fields that do not influence the measured result: the
#: reference output is itself a deterministic function of the keyed
#: inputs (it is the baseline run's output), the timeout only bounds
#: the job's wall clock, and the VM execution engine is bit-identical
#: by contract (the closure-compiled tier produces exactly the tree-
#: walker's RuntimeStats), so results cached under either engine
#: replay for both.
_NON_KEY_FIELDS = ("reference_output", "timeout", "engine")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-bench``,
    else ``~/.cache/repro-bench``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return Path(base) / "repro-bench"


def job_key(payload: dict, engine_keyed: bool = False) -> str:
    """Content hash of a job payload (minus the non-key fields).

    With ``engine_keyed=True`` the VM execution engine *is* part of the
    key: campaigns that deliberately sweep both VM tiers partition the
    cache per engine, so a shard resuming an ``interp`` instance can
    never be served a ``compiled`` entry (and vice versa) -- which is
    what keeps mixed-engine campaign results honest while still fully
    resumable.  The default, engine-agnostic key encodes the two tiers'
    bit-identical-statistics contract: either engine's result answers
    for both."""
    keyed = {k: v for k, v in payload.items() if k not in _NON_KEY_FIELDS}
    if engine_keyed:
        keyed["engine"] = payload.get("engine", "compiled")
    keyed["repro_version"] = __version__
    keyed["cache_format"] = CACHE_FORMAT_VERSION
    blob = json.dumps(keyed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of content-addressed ``BenchResult`` JSON documents."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored result JSON for ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            result = document["result"]
            if document.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("stale cache format")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: dict, describe: Optional[dict] = None) -> None:
        """Store ``result`` (a ``BenchResult.to_json()`` dict) under
        ``key``.  ``describe`` is an optional human-readable summary of
        the keyed inputs, kept alongside for debugging."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "inputs": describe or {},
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def paths(self) -> Iterator[Path]:
        """All entry files currently in the cache directory."""
        if not self.directory.is_dir():
            return iter(())
        return self.directory.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self.paths())

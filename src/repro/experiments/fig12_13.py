"""Figures 12 and 13: impact of the compiler-pipeline extension point.

Each approach instrumented at the three extension points of the
pipeline (paper Figure 8):

* ``ModuleOptimizerEarly`` -- before the main scalar optimizations;
* ``ScalarOptimizerLate``  -- after them;
* ``VectorizerStart``      -- after all mid-end optimization.

Expected shape (paper Section 5.5): early instrumentation is ~30%
slower -- the may-abort checks block LICM and load CSE on code that the
optimizer has not cleaned up yet, and more memory accesses exist to be
checked; the two late points are comparable.
"""

from __future__ import annotations

from typing import Dict, List

from ..opt.pipeline import EXTENSION_POINTS
from ..workloads import all_workloads
from .common import Runner, format_table, geomean


def collect(runner: Runner, approach: str) -> Dict[str, Dict[str, float]]:
    data: Dict[str, Dict[str, float]] = {}
    for workload in all_workloads():
        data[workload.name] = {
            ep: runner.overhead(workload, approach, extension_point=ep)
            for ep in EXTENSION_POINTS
        }
    return data


def generate_for(approach: str, figure: str, runner: Runner = None) -> str:
    runner = runner or Runner()
    data = collect(runner, approach)
    headers = ["benchmark"] + list(EXTENSION_POINTS)
    rows: List[List[str]] = []
    for name, d in data.items():
        rows.append([name] + [f"{d[ep]:.2f}x" for ep in EXTENSION_POINTS])
    rows.append(["geomean"] + [
        f"{geomean(d[ep] for d in data.values()):.2f}x"
        for ep in EXTENSION_POINTS
    ])
    title = (
        f"Figure {figure}: {approach} overhead vs -O3 at the three "
        "pipeline extension points"
    )
    return title + "\n\n" + format_table(headers, rows)


def generate_fig12(runner: Runner = None) -> str:
    return generate_for("softbound", "12", runner)


def generate_fig13(runner: Runner = None) -> str:
    return generate_for("lowfat", "13", runner)


def main() -> None:
    runner = Runner()
    print(generate_fig12(runner))
    print()
    print(generate_fig13(runner))


if __name__ == "__main__":
    main()

"""Figures 12 and 13: impact of the compiler-pipeline extension point.

Each approach instrumented at the three extension points of the
pipeline (paper Figure 8):

* ``ModuleOptimizerEarly`` -- before the main scalar optimizations;
* ``ScalarOptimizerLate``  -- after them;
* ``VectorizerStart``      -- after all mid-end optimization.

Expected shape (paper Section 5.5): early instrumentation is ~30%
slower -- the may-abort checks block LICM and load CSE on code that the
optimizer has not cleaned up yet, and more memory accesses exist to be
checked; the two late points are comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..opt.pipeline import EXTENSION_POINTS
from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table, geomean


def requests_for(approach: str,
                 workloads: Optional[Sequence[Workload]] = None
                 ) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, approach, extension_point=ep)
            for workload in workloads for ep in EXTENSION_POINTS]


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    return (requests_for("softbound", workloads)
            + requests_for("lowfat", workloads))


def collect(runner: Runner, approach: str,
            workloads: Optional[Sequence[Workload]] = None
            ) -> Dict[str, Dict[str, float]]:
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests_for(approach, workloads))
    data: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        data[workload.name] = {
            ep: runner.overhead(workload, approach, extension_point=ep)
            for ep in EXTENSION_POINTS
        }
    return data


def generate_for(approach: str, figure: str, runner: Runner = None,
                 workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    data = collect(runner, approach, workloads)
    headers = ["benchmark"] + list(EXTENSION_POINTS)
    rows: List[List[str]] = []
    for name, d in data.items():
        rows.append([name] + [f"{d[ep]:.2f}x" for ep in EXTENSION_POINTS])
    rows.append(["geomean"] + [
        f"{geomean(d[ep] for d in data.values()):.2f}x"
        for ep in EXTENSION_POINTS
    ])
    title = (
        f"Figure {figure}: {approach} overhead vs -O3 at the three "
        "pipeline extension points"
    )
    return title + "\n\n" + format_table(headers, rows)


def generate_fig12(runner: Runner = None,
                   workloads: Optional[Sequence[Workload]] = None) -> str:
    return generate_for("softbound", "12", runner, workloads)


def generate_fig13(runner: Runner = None,
                   workloads: Optional[Sequence[Workload]] = None) -> str:
    return generate_for("lowfat", "13", runner, workloads)


def main() -> None:
    runner = Runner()
    print(generate_fig12(runner))
    print()
    print(generate_fig13(runner))


if __name__ == "__main__":
    main()

"""Parallel, disk-cached experiment execution engine.

The paper's evaluation re-compiles and re-runs every workload under up
to 7 configurations at multiple pipeline extension points.  All of
those (workload, config, extension-point) jobs are independent and the
VM is CPU-bound pure Python, so the engine fans them out over
``multiprocessing`` worker *processes* and persists every result in
the content-addressed on-disk cache of :mod:`.cache`:

* :meth:`ExperimentEngine.run_many` is the scheduler.  It dedupes the
  requested jobs, resolves what it can from the in-process memo and
  the disk cache, runs the remaining *baseline* jobs first (their
  outputs are the references the instrumented runs are validated
  against), then fans the remaining instrumented jobs out in one wave.
* Results travel between processes as ``BenchResult.to_json()``
  documents -- the same representation the disk cache stores -- and the
  serial path round-trips through the same JSON, so serial, parallel,
  and cached runs are bit-identical.
* A worker that raises, or exceeds the per-job timeout (enforced with
  ``SIGALRM`` inside the worker), yields a structured *failed*
  ``BenchResult`` (``status == "failed"``) instead of taking down the
  run.  Failed results are never written to the cache.
* With ``verify_cache=True`` the engine recomputes one disk-cache hit
  per run (the canary) and requires the cached counters to match the
  fresh recomputation exactly; any mismatch raises
  :class:`~repro.errors.CacheVerificationError` -- the VM is
  deterministic, so a mismatch always means corruption.

``ExperimentEngine`` is exported from :mod:`.common` as ``Runner`` and
keeps the historical serial runner's API (``run`` / ``baseline`` /
``overhead`` and in-process memoization: repeated requests return the
same object).
"""

from __future__ import annotations

import math
import multiprocessing
import signal
import threading
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import InstrumentationConfig
from ..driver import CompileOptions, compile_program, run_program
from ..errors import CacheVerificationError
from ..workloads import Workload
from .cache import ResultCache, default_cache_dir, job_key
from .common import MAX_INSTRUCTIONS, BenchResult, config_for


@dataclass
class JobRequest:
    """One cell of the experiment matrix.

    ``label`` names the configuration (see ``CONFIG_LABELS``); for
    configurations outside the named set (the ablations), pass the
    exact :class:`InstrumentationConfig` as ``config_override`` and a
    descriptive label of your choice.  ``validate_output`` controls
    whether the engine schedules the workload's baseline first and
    compares outputs against it (the transparency check); ablation
    runs that *expect* spurious violations turn it off.

    ``engine`` overrides the engine-wide VM execution tier
    (``vm_engine``) for this one job, which lets a single batch mix
    ``compiled`` and ``interp`` cells -- the differential fuzzing
    oracle schedules the whole engine matrix through one
    :meth:`ExperimentEngine.run_many` wave this way.
    """

    workload: Workload
    label: str
    extension_point: str = "VectorizerStart"
    config_override: Optional[InstrumentationConfig] = None
    lf_region_capacity: Optional[int] = None
    max_instructions: Optional[int] = None
    validate_output: bool = True
    engine: Optional[str] = None

    def config(self) -> Optional[InstrumentationConfig]:
        if self.config_override is not None:
            return self.config_override
        return config_for(self.label)


class _JobTimeout(Exception):
    pass


def _alarm_handler(signum, frame):
    raise _JobTimeout()


def _execute_payload(payload: dict) -> BenchResult:
    """Compile and run one job from its self-contained payload.

    Runs in a worker process (or inline for serial engines); must not
    touch any engine state.
    """
    config = (InstrumentationConfig(**payload["config"])
              if payload["config"] is not None else None)
    options = CompileOptions(
        opt_level=payload["opt_level"],
        extension_point=payload["extension_point"],
        obfuscate_pointer_copies=tuple(payload["obfuscated_units"]),
        link_time_optimization=payload["link_time_optimization"],
    )
    if config is None:
        program = compile_program(payload["sources"], options=options)
    else:
        program = compile_program(payload["sources"], config, options)
    run = run_program(program,
                      max_instructions=payload["max_instructions"],
                      lf_region_capacity=payload["lf_region_capacity"],
                      engine=payload.get("engine", "compiled"))
    reference = payload["reference_output"]
    if payload["label"] == "baseline" and run.ok:
        output_ok = True
    else:
        output_ok = reference is None or run.output == reference
    return BenchResult.from_run(payload["workload"], payload["label"],
                                payload["extension_point"], program, run,
                                output_ok=output_ok)


def _run_job(payload: dict) -> Tuple[str, object]:
    """Worker entry point: never raises; returns ``("ok", json_dict)``
    or ``("failed", reason)`` so one bad job cannot break the pool."""
    timeout = payload.get("timeout")
    use_alarm = (bool(timeout)
                 and threading.current_thread() is threading.main_thread())
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return ("ok", _execute_payload(payload).to_json())
    except _JobTimeout:
        return ("failed", f"timed out after {timeout:g}s")
    except Exception as exc:
        return ("failed", f"{type(exc).__name__}: {exc}")
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


#: Fields the --verify-cache canary compares.  ``ok``/``describe``/
#: ``failure`` are excluded because the fresh recomputation runs
#: without the stored run's baseline reference; every measured counter
#: must match exactly.
_CANARY_FIELDS = (
    "workload", "label", "extension_point", "cycles", "instructions",
    "output", "checks_executed", "checks_wide", "unsafe_percent",
    "invariant_checks", "trie_loads", "trie_stores", "shadow_stack_ops",
    "lowfat_fallbacks", "lowfat_allocs", "status", "violation_kind",
    "opcode_counts", "static",
)


class ExperimentEngine:
    """Work-queue scheduler + memo + disk cache for benchmark results.

    ``jobs=1`` (the default) executes inline; ``jobs=N`` fans each
    phase of independent jobs out over N forked worker processes.
    ``cache`` is a :class:`ResultCache` (or None for memory-only).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        max_instructions: int = MAX_INSTRUCTIONS,
        job_timeout: Optional[float] = None,
        verify_cache: bool = False,
        vm_engine: str = "compiled",
        engine_keyed_cache: bool = False,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.max_instructions = max_instructions
        self.job_timeout = job_timeout
        self.verify_cache = verify_cache
        self.vm_engine = vm_engine
        #: campaign mode: partition the disk cache per VM engine so a
        #: mixed-engine batch caches (and resumes) every cell, and no
        #: cell can ever be served another engine's stored stats.  Off
        #: (the default), the cache is engine-agnostic and per-request
        #: engine overrides bypass it entirely (the fuzz oracle's
        #: differential setting).
        self.engine_keyed_cache = engine_keyed_cache
        self.executed_jobs = 0
        self._memo: Dict[str, BenchResult] = {}
        self._payloads: Dict[str, dict] = {}
        self._disk_hits: List[str] = []
        self._canary_checked = False

    # ------------------------------------------------------------------
    # public API (superset of the historical serial Runner)

    def run(self, workload: Workload, label: str,
            extension_point: str = "VectorizerStart") -> BenchResult:
        return self.run_many([JobRequest(workload, label, extension_point)])[0]

    def run_request(self, request: JobRequest) -> BenchResult:
        return self.run_many([request])[0]

    def prefetch(self, requests: Iterable[JobRequest]) -> None:
        """Resolve a whole job matrix (in parallel for ``jobs>1``);
        subsequent ``run`` calls are memo hits."""
        self.run_many(list(requests))

    def baseline(self, workload: Workload) -> BenchResult:
        return self.run(workload, "baseline")

    def overhead(self, workload: Workload, label: str,
                 extension_point: str = "VectorizerStart") -> float:
        base = self.baseline(workload)
        inst = self.run(workload, label, extension_point)
        return inst.cycles / base.cycles if base.cycles else math.inf

    @property
    def cache_hits(self) -> int:
        return len(self._disk_hits)

    # ------------------------------------------------------------------
    # scheduler

    def run_many(self, requests: Sequence[JobRequest]) -> List[BenchResult]:
        order: List[str] = []
        pending_baselines: Dict[str, dict] = {}
        pending_rest: Dict[str, dict] = {}
        needs_reference: Dict[str, str] = {}

        def admit(request: JobRequest) -> str:
            payload = self._payload(request)
            # ``engine`` is a non-key cache field (the two VM tiers are
            # bit-identical by contract), but the in-process memo must
            # keep mixed-engine batches apart or the second engine's
            # cells would be served from the first's results -- which
            # would make any engine-differential comparison vacuous.
            key = f"{job_key(payload)}|{payload['engine']}"
            if key in self._memo or key in pending_baselines \
                    or key in pending_rest:
                return key
            self._payloads[key] = payload
            cached = (self.cache.get(self._disk_key(payload))
                      if self._cache_covers(payload) else None)
            if cached is not None:
                self._memo[key] = BenchResult.from_json(cached)
                self._disk_hits.append(key)
                return key
            if request.label == "baseline":
                pending_baselines[key] = payload
            else:
                pending_rest[key] = payload
                if request.validate_output:
                    # the reference inherits the instruction budget so
                    # it coincides (memo and cache key) with an
                    # explicitly requested baseline cell of the same
                    # batch -- a campaign never runs its baseline twice
                    needs_reference[key] = admit(
                        JobRequest(request.workload, "baseline",
                                   max_instructions=request.max_instructions,
                                   engine=request.engine))
            return key

        for request in requests:
            order.append(admit(request))

        # Phase 1: baselines (their outputs are the validation
        # references for phase 2).
        self._execute(pending_baselines)
        for key, baseline_key in needs_reference.items():
            if key in pending_rest:
                base = self._memo.get(baseline_key)
                if base is not None and base.ok:
                    pending_rest[key]["reference_output"] = list(base.output)
        # Phase 2: all instrumented / ablation jobs in one wave.
        self._execute(pending_rest)

        self._maybe_verify_canary()
        return [self._memo[key] for key in order]

    # ------------------------------------------------------------------
    # internals

    def _payload(self, request: JobRequest) -> dict:
        workload = request.workload
        config = request.config()
        return {
            "workload": workload.name,
            "label": request.label,
            "extension_point": request.extension_point,
            "sources": dict(workload.sources),
            "obfuscated_units": sorted(workload.obfuscated_units),
            "config": None if config is None else asdict(config),
            "opt_level": 3,
            "link_time_optimization": True,
            "max_instructions": request.max_instructions
                                or self.max_instructions,
            "lf_region_capacity": request.lf_region_capacity,
            "reference_output": None,
            "timeout": self.job_timeout,
            "engine": request.engine or self.vm_engine,
        }

    def _disk_key(self, payload: dict) -> str:
        return job_key(payload, engine_keyed=self.engine_keyed_cache)

    def fingerprint(self, request: JobRequest) -> str:
        """A shard-stable content key for ``request``.

        Always engine-qualified, independent of request order and of
        this engine's cache mode -- the campaign layer assigns cells to
        shards by hashing this, so every shard of a sweep agrees on the
        partition without coordination."""
        return job_key(self._payload(request), engine_keyed=True)

    def _cache_covers(self, payload: dict) -> bool:
        """Whether the disk cache may serve/store this job's result.

        Engine-agnostic mode (the default): the cache speaks for the
        engine-wide ``vm_engine`` only.  Per-request engine overrides
        bypass it, because serving (or storing) an override's result
        under the engine-agnostic key would let a ``compiled`` entry
        answer an ``interp`` job, and the whole point of mixed-engine
        batches is to *check* that those agree.

        Engine-keyed mode (campaigns): every job is covered -- the key
        itself carries the engine, so mixed-engine shards cache every
        cell without any risk of cross-engine serving.
        """
        if self.cache is None:
            return False
        if self.engine_keyed_cache:
            return True
        return payload["engine"] == self.vm_engine

    def _execute(self, pending: Dict[str, dict]) -> None:
        if not pending:
            return
        items = list(pending.items())
        payloads = [payload for _, payload in items]
        if self.jobs == 1 or len(items) == 1:
            outcomes = [_run_job(payload) for payload in payloads]
        else:
            outcomes = self._map_parallel(payloads)
        for (key, payload), outcome in zip(items, outcomes):
            result = self._materialize(payload, outcome)
            self._memo[key] = result
            self.executed_jobs += 1
            if self._cache_covers(payload) and result.status != "failed":
                self.cache.put(self._disk_key(payload), result.to_json(),
                               describe={
                    "workload": payload["workload"],
                    "label": payload["label"],
                    "extension_point": payload["extension_point"],
                    "engine": payload["engine"],
                })
        pending.clear()

    def _map_parallel(self, payloads: List[dict]) -> List[Tuple[str, object]]:
        methods = multiprocessing.get_all_start_methods()
        context = (multiprocessing.get_context("fork")
                   if "fork" in methods else multiprocessing.get_context())
        processes = min(self.jobs, len(payloads))
        with context.Pool(processes=processes) as pool:
            async_result = pool.map_async(_run_job, payloads, chunksize=1)
            if self.job_timeout:
                # Safety net for workers that die outright (the in-worker
                # alarm already converts ordinary timeouts to failures).
                budget = self.job_timeout * len(payloads) + 30.0
                try:
                    return async_result.get(budget)
                except multiprocessing.TimeoutError:
                    pool.terminate()
                    return [("failed", "worker pool stalled past the "
                                       "job-timeout budget")] * len(payloads)
            return async_result.get()

    @staticmethod
    def _materialize(payload: dict, outcome: Tuple[str, object]) -> BenchResult:
        status, value = outcome
        if status == "ok":
            return BenchResult.from_json(value)
        return BenchResult.failed(payload["workload"], payload["label"],
                                  payload["extension_point"], str(value))

    def _maybe_verify_canary(self) -> None:
        if not self.verify_cache or self._canary_checked \
                or not self._disk_hits:
            return
        self._canary_checked = True
        key = self._disk_hits[0]
        payload = dict(self._payloads[key])
        payload["timeout"] = None
        payload["reference_output"] = None
        cached = self._memo[key]
        fresh = _execute_payload(payload)
        mismatches = [
            name for name in _CANARY_FIELDS
            if getattr(fresh, name) != getattr(cached, name)
        ]
        if mismatches:
            raise CacheVerificationError(
                f"cached result for {cached.workload}/{cached.label}"
                f"@{cached.extension_point} disagrees with a fresh "
                f"recomputation in field(s): {', '.join(mismatches)} "
                f"(cache key {key}); the VM is deterministic, so the "
                "cache entry is corrupt -- delete the cache directory"
            )


# ----------------------------------------------------------------------
# argparse integration shared by cli.py and report.py
#
# The option groups below are the single source of truth for the
# engine's command-line surface: every subcommand that runs jobs
# composes them (directly or through a cli.py parent parser), so
# ``--jobs``/``--cache-dir``/``--engine`` spell, default, and document
# themselves identically everywhere.

def add_pool_arguments(parser, default_jobs: int = 1) -> None:
    """``--jobs`` / ``--job-timeout`` (the worker-pool knobs)."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=default_jobs, metavar="N",
        help=f"number of worker processes (default: {default_jobs}; "
             "0 = all CPU cores)")
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job time limit; jobs past it become failed results")


def add_cache_arguments(parser) -> None:
    """``--cache-dir`` / ``--no-cache`` / ``--verify-cache``."""
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk result cache directory "
             f"(default: {default_cache_dir()})")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache")
    parser.add_argument(
        "--verify-cache", action="store_true",
        help="recompute one cached result per run and hard-error on "
             "any mismatch")


def add_vm_engine_argument(parser) -> None:
    """``--engine`` (the VM execution tier)."""
    from ..vm.engines import ENGINE_DESCRIPTIONS, ENGINES

    tiers = "; ".join(f"'{name}' is the {desc}"
                      for name, desc in ENGINE_DESCRIPTIONS.items())
    parser.add_argument(
        "--engine", default="compiled", choices=ENGINES,
        help=f"VM execution engine: {tiers}; results are bit-identical")


def add_engine_arguments(parser) -> None:
    """Attach the engine's full option set (pool + cache + workload
    subset + VM engine) to ``parser``."""
    add_pool_arguments(parser)
    add_cache_arguments(parser)
    parser.add_argument(
        "--workloads", default=None, metavar="NAME[,NAME...]",
        help="restrict matrix experiments to these workloads")
    add_vm_engine_argument(parser)


def resolve_jobs(jobs: int) -> int:
    """``--jobs 0`` means one worker per CPU core."""
    import os

    return jobs if jobs > 0 else (os.cpu_count() or 1)


def engine_from_args(args, engine_keyed_cache: bool = False,
                     require_cache_dir: bool = False) -> ExperimentEngine:
    """Build the engine an argparse namespace describes.

    ``engine_keyed_cache`` turns on the per-VM-engine cache partition
    (campaign / serve mode).  With ``require_cache_dir`` the disk cache
    is opt-in: it is only built when ``--cache-dir`` was passed
    explicitly (the fuzz oracle's setting -- differential runs must not
    silently reuse a stale default cache)."""
    cache = None
    if not args.no_cache:
        if args.cache_dir:
            cache = ResultCache(args.cache_dir)
        elif not require_cache_dir:
            cache = ResultCache(default_cache_dir())
    return ExperimentEngine(
        jobs=resolve_jobs(args.jobs),
        cache=cache,
        job_timeout=args.job_timeout,
        verify_cache=args.verify_cache,
        vm_engine=getattr(args, "engine", "compiled"),
        engine_keyed_cache=engine_keyed_cache,
    )


def workloads_from_args(args) -> Optional[List[Workload]]:
    """The ``--workloads`` subset as Workload objects (None = all)."""
    if not getattr(args, "workloads", None):
        return None
    from ..workloads import all_names, get

    names = [name.strip() for name in args.workloads.split(",") if name.strip()]
    known = set(all_names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValueError(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(known))}")
    return [get(name) for name in names]

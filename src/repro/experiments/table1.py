"""Table 1 counterpart: instrumentation locations per task.

The paper's Table 1 is qualitative (which IR locations each approach
instruments for which task).  This experiment makes it quantitative
over our workloads: for every benchmark, the number of gathered
instrumentation targets per kind (dereference checks, store/call/
return/cast invariants), which are exactly the rows of Table 1.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.itarget import TargetKind
from ..workloads import Workload, all_workloads
from .common import JobRequest, Runner, format_table

KIND_COLUMNS = [
    (TargetKind.CHECK_DEREF, "deref checks"),
    (TargetKind.INVARIANT_STORE, "store inv"),
    (TargetKind.INVARIANT_CALL, "call inv"),
    (TargetKind.INVARIANT_RET, "ret inv"),
    (TargetKind.INVARIANT_CAST, "cast inv"),
]


def requests(workloads: Optional[Sequence[Workload]] = None) -> List[JobRequest]:
    workloads = all_workloads() if workloads is None else list(workloads)
    return [JobRequest(workload, "softbound") for workload in workloads]


def generate(runner: Runner = None,
             workloads: Optional[Sequence[Workload]] = None) -> str:
    runner = runner or Runner()
    workloads = all_workloads() if workloads is None else list(workloads)
    runner.prefetch(requests(workloads))
    headers = ["benchmark"] + [label for _, label in KIND_COLUMNS] + ["total"]
    rows: List[List[str]] = []
    for workload in workloads:
        result = runner.run(workload, "softbound")
        by_kind = result.static.by_kind
        counts = [by_kind.get(kind, 0) for kind, _ in KIND_COLUMNS]
        rows.append([workload.name] + [str(c) for c in counts]
                    + [str(sum(counts))])
    table = format_table(headers, rows)
    return (
        "Table 1 counterpart: static instrumentation targets per task\n"
        "(gathered by the shared framework before filtering)\n\n" + table
    )


def main() -> None:
    print(generate())


if __name__ == "__main__":
    main()

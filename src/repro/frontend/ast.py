"""Abstract syntax tree for MiniC.

The AST stores *C-level* types (:class:`CType` and friends), which
the codegen lowers to IR types.  Keeping the two type worlds separate
lets the reproduction discuss C-vs-IR mismatches faithfully (paper
Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------
# C types
# ---------------------------------------------------------------------


class CType:
    def is_pointer(self) -> bool:
        return isinstance(self, CPointer)

    def is_array(self) -> bool:
        return isinstance(self, CArray)

    def is_struct(self) -> bool:
        return isinstance(self, CStruct)

    def is_void(self) -> bool:
        return isinstance(self, CPrim) and self.name == "void"

    def is_integer(self) -> bool:
        return isinstance(self, CPrim) and self.name in (
            "char", "int", "long", "unsigned",
        )

    def is_float(self) -> bool:
        return isinstance(self, CPrim) and self.name in ("float", "double")

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_float()


@dataclass(frozen=True)
class CPrim(CType):
    name: str  # void | char | int | long | unsigned | float | double

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CPointer(CType):
    pointee: CType

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class CArray(CType):
    element: CType
    count: Optional[int]  # None: size-less declaration (extern int a[];)

    def __str__(self) -> str:
        return f"{self.element}[{self.count if self.count is not None else ''}]"


@dataclass(frozen=True)
class CStruct(CType):
    tag: str

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class CFunction(CType):
    """A function signature; only occurs behind a CPointer (function
    pointers declared as ``RET (*name)(T1, T2)``)."""

    ret: "CType"
    params: Tuple["CType", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.params)
        return f"{self.ret} (*)({inner})"


CVOID = CPrim("void")
CCHAR = CPrim("char")
CINT = CPrim("int")
CLONG = CPrim("long")
CUNSIGNED = CPrim("unsigned")
CFLOAT = CPrim("float")
CDOUBLE = CPrim("double")


# ---------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0
    is_long: bool = False


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StringLit(Expr):
    value: bytes = b""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""          # - ! ~ * & ++pre --pre
    operand: Optional[Expr] = None


@dataclass
class Postfix(Expr):
    op: str = ""          # ++ --
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="         # = += -= *= /= %= &= |= ^= <<= >>=
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False   # "->" vs "."


@dataclass
class CastExpr(Expr):
    target: Optional[CType] = None
    value: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    target: Optional[CType] = None


# ---------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    ctype: Optional[CType] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None
    is_do_while: bool = False


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------


@dataclass
class StructDef:
    tag: str = ""
    members: List[Tuple[CType, str]] = field(default_factory=list)
    line: int = 0


@dataclass
class GlobalDecl:
    ctype: Optional[CType] = None
    name: str = ""
    init: Optional[Expr] = None
    extern: bool = False
    static: bool = False
    line: int = 0


@dataclass
class FunctionDef:
    return_type: Optional[CType] = None
    name: str = ""
    params: List[Tuple[CType, str]] = field(default_factory=list)
    body: Optional[Block] = None   # None: declaration only
    static: bool = False
    line: int = 0


@dataclass
class TranslationUnit:
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    name: str = "tu"

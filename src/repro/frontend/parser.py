"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import CompileError
from . import ast
from .lexer import Token, tokenize

_TYPE_KEYWORDS = {"int", "long", "char", "double", "float", "void", "unsigned", "struct", "const"}

# binary operator precedence (higher binds tighter)
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source: str, name: str = "tu"):
        self.tokens = tokenize(source)
        self.pos = 0
        self.unit = ast.TranslationUnit(name=name)
        self.struct_tags = set()

    # -- token helpers ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.current
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {self.current.text!r}", self.current.line
            )
        return self.advance()

    # -- types ---------------------------------------------------------------
    def at_type(self) -> bool:
        tok = self.current
        return tok.kind == "keyword" and tok.text in _TYPE_KEYWORDS

    def parse_base_type(self) -> ast.CType:
        while self.accept("keyword", "const"):
            pass
        tok = self.expect("keyword")
        if tok.text == "struct":
            tag = self.expect("ident").text
            return ast.CStruct(tag)
        if tok.text == "unsigned":
            # "unsigned", "unsigned int", "unsigned long", "unsigned char"
            if self.check("keyword", "int") or self.check("keyword", "long") or self.check("keyword", "char"):
                self.advance()
            return ast.CUNSIGNED
        if tok.text == "long":
            self.accept("keyword", "long")  # "long long"
            self.accept("keyword", "int")
            return ast.CLONG
        if tok.text in ("int", "char", "double", "float", "void"):
            return ast.CPrim(tok.text)
        raise CompileError(f"expected a type, found {tok.text!r}", tok.line)

    def parse_pointers(self, base: ast.CType) -> ast.CType:
        while self.accept("op", "*"):
            while self.accept("keyword", "const"):
                pass
            base = ast.CPointer(base)
        return base

    def parse_type(self) -> ast.CType:
        return self.parse_pointers(self.parse_base_type())

    def parse_declarator(self, base: ast.CType):
        """Parse ``*... name[dims]`` or the function-pointer form
        ``(*name)(T1, T2)``; returns (ctype, name)."""
        base = self.parse_pointers(base)
        if self.check("op", "(") and self.peek().text == "*":
            self.advance()
            self.expect("op", "*")
            name = self.expect("ident").text
            self.expect("op", ")")
            self.expect("op", "(")
            params = []
            if not self.check("op", ")"):
                if self.check("keyword", "void") and self.peek().text == ")":
                    self.advance()
                else:
                    while True:
                        pty = self.parse_type()
                        if self.check("ident"):
                            self.advance()  # optional parameter name
                        params.append(pty)
                        if not self.accept("op", ","):
                            break
            self.expect("op", ")")
            return ast.CPointer(ast.CFunction(base, tuple(params))), name
        name = self.expect("ident").text
        return self.parse_array_suffix(base), name

    def parse_array_suffix(self, base: ast.CType) -> ast.CType:
        """Array suffixes bind outermost-first: ``int a[2][3]``."""
        dims: List[Optional[int]] = []
        while self.accept("op", "["):
            if self.accept("op", "]"):
                dims.append(None)
            else:
                tok = self.expect("int")
                self.expect("op", "]")
                dims.append(int(tok.value))
        for count in reversed(dims):
            base = ast.CArray(base, count)
        return base

    # -- top level --------------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        while not self.check("eof"):
            self.parse_top_level()
        return self.unit

    def parse_top_level(self) -> None:
        line = self.current.line
        extern = bool(self.accept("keyword", "extern"))
        static = bool(self.accept("keyword", "static"))

        if self.check("keyword", "struct") and self.peek(2).text == "{":
            self.parse_struct_def()
            return

        base = self.parse_base_type()
        if self.accept("op", ";"):
            return  # e.g. "struct tag;" forward declaration
        self.parse_declarators(base, extern, static, line)

    def parse_struct_def(self) -> None:
        line = self.current.line
        self.expect("keyword", "struct")
        tag = self.expect("ident").text
        self.expect("op", "{")
        members: List[Tuple[ast.CType, str]] = []
        while not self.accept("op", "}"):
            base = self.parse_base_type()
            while True:
                mty = self.parse_pointers(base)
                name = self.expect("ident").text
                mty = self.parse_array_suffix(mty)
                members.append((mty, name))
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
        self.expect("op", ";")
        self.struct_tags.add(tag)
        self.unit.structs.append(ast.StructDef(tag, members, line))

    def parse_declarators(self, base: ast.CType, extern: bool, static: bool, line: int) -> None:
        first = True
        while True:
            ctype, name = self._global_declarator(base, first, static, line)
            if ctype is None:
                return  # was a function definition/declaration
            first = False
            init: Optional[ast.Expr] = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            self.unit.globals.append(
                ast.GlobalDecl(ctype=ctype, name=name, init=init,
                               extern=extern, static=static, line=line)
            )
            if self.accept("op", ","):
                continue
            self.expect("op", ";")
            return

    def _global_declarator(self, base, first, static, line):
        """One global declarator; returns (None, None) if it turned out
        to be a function definition (handled internally)."""
        ctype = self.parse_pointers(base)
        if self.check("op", "(") and self.peek().text == "*":
            return self.parse_declarator(ctype)
        name = self.expect("ident").text
        if first and self.check("op", "("):
            self.parse_function(ctype, name, static, line)
            return None, None
        return self.parse_array_suffix(ctype), name

    def parse_function(self, ret: ast.CType, name: str, static: bool, line: int) -> None:
        self.expect("op", "(")
        params: List[Tuple[ast.CType, str]] = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    base = self.parse_base_type()
                    pty, pname = self.parse_declarator(base)
                    if isinstance(pty, ast.CArray):
                        pty = ast.CPointer(pty.element)  # parameter decay
                    params.append((pty, pname))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body: Optional[ast.Block] = None
        if not self.accept("op", ";"):
            body = self.parse_block()
        self.unit.functions.append(
            ast.FunctionDef(return_type=ret, name=name, params=params,
                            body=body, static=static, line=line)
        )

    # -- statements -----------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.expect("op", "{").line
        statements: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            statements.append(self.parse_statement())
        return ast.Block(line=line, statements=statements)

    def parse_statement(self) -> ast.Stmt:
        tok = self.current
        if tok.kind == "op" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "do":
                return self.parse_do_while()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "return":
                self.advance()
                value = None if self.check("op", ";") else self.parse_expression()
                self.expect("op", ";")
                return ast.Return(line=tok.line, value=value)
            if tok.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=tok.line)
            if tok.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=tok.line)
            if tok.text in _TYPE_KEYWORDS:
                return self.parse_local_decl()
        if self.accept("op", ";"):
            return ast.Block(line=tok.line)  # empty statement
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def parse_local_decl(self) -> ast.Stmt:
        line = self.current.line
        base = self.parse_base_type()
        decls: List[ast.Stmt] = []
        while True:
            ctype, name = self.parse_declarator(base)
            init: Optional[ast.Expr] = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            decls.append(ast.DeclStmt(line=line, ctype=ctype, name=name, init=init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line=line, statements=decls)

    def parse_if(self) -> ast.Stmt:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        otherwise = self.parse_statement() if self.accept("keyword", "else") else None
        return ast.If(line=line, cond=cond, then=then, otherwise=otherwise)

    def parse_while(self) -> ast.Stmt:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(line=line, cond=cond, body=body)

    def parse_do_while(self) -> ast.Stmt:
        line = self.expect("keyword", "do").line
        body = self.parse_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.While(line=line, cond=cond, body=body, is_do_while=True)

    def parse_for(self) -> ast.Stmt:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.accept("op", ";"):
            if self.at_type():
                init = self.parse_local_decl()
            else:
                init = ast.ExprStmt(line=line, expr=self.parse_expression())
                self.expect("op", ";")
        cond = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, cond=cond, step=step, body=body)

    # -- expressions --------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept("op", ","):
            rhs = self.parse_assignment()
            expr = ast.Binary(line=rhs.line, op=",", lhs=expr, rhs=rhs)
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        tok = self.current
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(line=tok.line, op=tok.text, target=lhs, value=rhs)
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_assignment()
            self.expect("op", ":")
            otherwise = self.parse_conditional()
            return ast.Conditional(line=cond.line, cond=cond, then=then, otherwise=otherwise)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.current
            if tok.kind != "op":
                return lhs
            prec = _BINARY_PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.Binary(line=tok.line, op=tok.text, lhs=lhs, rhs=rhs)

    def _at_cast(self) -> bool:
        if not self.check("op", "("):
            return False
        nxt = self.peek()
        return nxt.kind == "keyword" and nxt.text in _TYPE_KEYWORDS

    def parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            # ++x is sugar for (x += 1)
            op = "+=" if tok.text == "++" else "-="
            return ast.Assign(line=tok.line, op=op, target=operand,
                              value=ast.IntLit(line=tok.line, value=1))
        if tok.kind == "keyword" and tok.text == "sizeof":
            self.advance()
            self.expect("op", "(")
            target = self.parse_type()
            target = self.parse_abstract_array_suffix(target)
            self.expect("op", ")")
            return ast.SizeofExpr(line=tok.line, target=target)
        if self._at_cast():
            line = self.current.line
            self.advance()  # "("
            target = self.parse_type()
            self.expect("op", ")")
            value = self.parse_unary()
            return ast.CastExpr(line=line, target=target, value=value)
        return self.parse_postfix()

    def parse_abstract_array_suffix(self, base: ast.CType) -> ast.CType:
        dims: List[int] = []
        while self.accept("op", "["):
            tok = self.expect("int")
            self.expect("op", "]")
            dims.append(int(tok.value))
        for count in reversed(dims):
            base = ast.CArray(base, count)
        return base

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.current
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(line=tok.line, base=expr, index=index)
            elif self.accept("op", "."):
                name = self.expect("ident").text
                expr = ast.Member(line=tok.line, base=expr, name=name, arrow=False)
            elif self.accept("op", "->"):
                name = self.expect("ident").text
                expr = ast.Member(line=tok.line, base=expr, name=name, arrow=True)
            elif tok.kind == "op" and tok.text in ("++", "--"):
                self.advance()
                expr = ast.Postfix(line=tok.line, op=tok.text, operand=expr)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(line=tok.line, value=int(tok.value),
                              is_long="l" in tok.text.lower() or int(tok.value) > 0x7FFFFFFF)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(line=tok.line, value=float(tok.value))
        if tok.kind == "char":
            self.advance()
            return ast.CharLit(line=tok.line, value=int(tok.value))
        if tok.kind == "string":
            self.advance()
            return ast.StringLit(line=tok.line, value=tok.value)
        if tok.kind == "keyword" and tok.text == "NULL":
            self.advance()
            return ast.NullLit(line=tok.line)
        if tok.kind == "ident":
            self.advance()
            if self.check("op", "("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.CallExpr(line=tok.line, name=tok.text, args=args)
            return ast.Ident(line=tok.line, name=tok.text)
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {tok.text!r}", tok.line)


def parse(source: str, name: str = "tu") -> ast.TranslationUnit:
    """Parse MiniC source text into a translation unit."""
    return Parser(source, name).parse_unit()

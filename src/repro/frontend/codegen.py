"""MiniC to IR code generation (with integrated semantic checking).

One pass over the AST lowers each translation unit to a
:class:`~repro.ir.module.Module`.  Local variables become entry-block
``alloca``s with explicit loads/stores; ``mem2reg`` later promotes them
to SSA registers, exactly like clang at ``-O0`` plus LLVM's pipeline.

Two codegen options reproduce frontend behaviours the paper analyses:

* ``obfuscate_pointer_copies`` -- lower loads/stores of pointer-typed
  values through ``i64`` (``ptrtoint``/``inttoptr``), the LLVM-12-style
  translation of Figure 7 that hides pointer stores from SoftBound's
  metadata propagation.
* size-less ``extern`` array declarations produce globals flagged
  ``declared_without_size`` (paper Section 4.3); under separate
  compilation SoftBound cannot derive their bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CompileError
from ..ir import (
    ArrayType,
    BasicBlock,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantZero,
    F32,
    F64,
    Function,
    FunctionType,
    GlobalVariable,
    I1,
    I8,
    I16,
    I32,
    I64,
    IRBuilder,
    IntType,
    FloatType,
    Module,
    PointerType,
    StructType,
    Type,
    VOID,
    VoidType,
    ptr,
    size_of,
)
from ..ir.values import Constant, Value
from ..vm.native import LIBC_ATTRIBUTES, LIBC_SIGNATURES
from . import ast
from .parser import parse

# C signatures of the libc builtins, for argument checking.
_VOIDP = ast.CPointer(ast.CVOID)
BUILTIN_SIGNATURES: Dict[str, Tuple[ast.CType, List[ast.CType]]] = {
    "malloc": (_VOIDP, [ast.CLONG]),
    "calloc": (_VOIDP, [ast.CLONG, ast.CLONG]),
    "realloc": (_VOIDP, [_VOIDP, ast.CLONG]),
    "free": (ast.CVOID, [_VOIDP]),
    "memcpy": (_VOIDP, [_VOIDP, _VOIDP, ast.CLONG]),
    "memmove": (_VOIDP, [_VOIDP, _VOIDP, ast.CLONG]),
    "memset": (_VOIDP, [_VOIDP, ast.CINT, ast.CLONG]),
    "strlen": (ast.CLONG, [ast.CPointer(ast.CCHAR)]),
    "strcpy": (ast.CPointer(ast.CCHAR), [ast.CPointer(ast.CCHAR), ast.CPointer(ast.CCHAR)]),
    "strcmp": (ast.CINT, [ast.CPointer(ast.CCHAR), ast.CPointer(ast.CCHAR)]),
    "print_i64": (ast.CVOID, [ast.CLONG]),
    "print_f64": (ast.CVOID, [ast.CDOUBLE]),
    "print_str": (ast.CVOID, [ast.CPointer(ast.CCHAR)]),
    "abort": (ast.CVOID, []),
    "exit": (ast.CVOID, [ast.CINT]),
    "sqrt": (ast.CDOUBLE, [ast.CDOUBLE]),
    "fabs": (ast.CDOUBLE, [ast.CDOUBLE]),
    "sin": (ast.CDOUBLE, [ast.CDOUBLE]),
    "cos": (ast.CDOUBLE, [ast.CDOUBLE]),
    "llabs": (ast.CLONG, [ast.CLONG]),
}

_INT_RANK = {"char": 0, "int": 1, "unsigned": 2, "long": 3}


@dataclass
class TypedValue:
    value: Value
    ctype: ast.CType


class CodeGenerator:
    def __init__(self, unit: ast.TranslationUnit, obfuscate_pointer_copies: bool = False):
        self.unit = unit
        self.module = Module(unit.name)
        self.obfuscate_pointer_copies = obfuscate_pointer_copies
        self.struct_defs: Dict[str, ast.StructDef] = {}
        self.struct_member_index: Dict[str, Dict[str, int]] = {}
        self.global_ctypes: Dict[str, ast.CType] = {}
        self.function_sigs: Dict[str, Tuple[ast.CType, List[ast.CType]]] = {}
        self._string_pool: Dict[bytes, GlobalVariable] = {}
        # per-function state
        self.builder: IRBuilder = IRBuilder()
        self.fn: Optional[Function] = None
        self.locals: List[Dict[str, TypedValue]] = []
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []
        self.current_return_ctype: ast.CType = ast.CVOID

    # ------------------------------------------------------------------
    # type lowering
    # ------------------------------------------------------------------
    def lower_type(self, ctype: ast.CType, line: int = 0) -> Type:
        if isinstance(ctype, ast.CPrim):
            table = {
                "char": I8, "int": I32, "unsigned": I32, "long": I64,
                "float": F32, "double": F64, "void": VOID,
            }
            return table[ctype.name]
        if isinstance(ctype, ast.CPointer):
            if ctype.pointee.is_void():
                return ptr(I8)
            inner = self.lower_type(ctype.pointee, line)
            if isinstance(inner, VoidType):
                return ptr(I8)
            return ptr(inner)
        if isinstance(ctype, ast.CFunction):
            ret = self.lower_type(ctype.ret, line)
            params = [self.lower_type(p, line) for p in ctype.params]
            return FunctionType(ret, params)
        if isinstance(ctype, ast.CArray):
            count = ctype.count if ctype.count is not None else 0
            return ArrayType(self.lower_type(ctype.element, line), count)
        if isinstance(ctype, ast.CStruct):
            if ctype.tag not in self.struct_defs:
                raise CompileError(f"unknown struct '{ctype.tag}'", line)
            return self.module.get_or_create_struct(ctype.tag)
        raise CompileError(f"cannot lower type {ctype}", line)

    def sizeof_ctype(self, ctype: ast.CType, line: int = 0) -> int:
        return size_of(self.lower_type(ctype, line))

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def generate(self) -> Module:
        for struct in self.unit.structs:
            self.struct_defs[struct.tag] = struct
            self.struct_member_index[struct.tag] = {
                name: i for i, (_, name) in enumerate(struct.members)
            }
        # Struct bodies (two passes for recursive structs).
        for struct in self.unit.structs:
            self.module.get_or_create_struct(struct.tag)
        for struct in self.unit.structs:
            sty = self.module.get_or_create_struct(struct.tag)
            sty.set_body([self.lower_type(t, struct.line) for t, _ in struct.members])

        for decl in self.unit.globals:
            self._gen_global(decl)

        # Declare all functions first so forward calls work.
        for fndef in self.unit.functions:
            self._declare_function(fndef)
        for fndef in self.unit.functions:
            if fndef.body is not None:
                self._gen_function(fndef)
        return self.module

    def _gen_global(self, decl: ast.GlobalDecl) -> None:
        assert decl.ctype is not None
        declared_without_size = (
            isinstance(decl.ctype, ast.CArray) and decl.ctype.count is None
        )
        value_type = self.lower_type(decl.ctype, decl.line)
        if decl.extern:
            linkage = "external"
            initializer = None
        else:
            linkage = "internal" if decl.static else "common"
            if decl.init is not None:
                linkage = "internal"
                initializer = self._const_expr(decl.init, decl.ctype)
            else:
                initializer = ConstantZero(value_type)
        existing = self.module.get_global(decl.name)
        if existing is not None:
            if existing.is_declaration and initializer is not None:
                existing.initializer = initializer
                existing.linkage = linkage
            self.global_ctypes[decl.name] = decl.ctype
            return
        self.module.add_global(
            decl.name, value_type, initializer, linkage, declared_without_size
        )
        self.global_ctypes[decl.name] = decl.ctype

    def _const_expr(self, expr: ast.Expr, ctype: ast.CType) -> Constant:
        ty = self.lower_type(ctype, expr.line)
        if isinstance(expr, ast.IntLit):
            if isinstance(ty, FloatType):
                return ConstantFloat(ty, float(expr.value))
            assert isinstance(ty, IntType)
            return ConstantInt(ty, expr.value)
        if isinstance(expr, ast.CharLit):
            assert isinstance(ty, IntType)
            return ConstantInt(ty, expr.value)
        if isinstance(expr, ast.FloatLit):
            assert isinstance(ty, FloatType)
            return ConstantFloat(ty, expr.value)
        if isinstance(expr, ast.NullLit):
            assert isinstance(ty, PointerType)
            return ConstantNull(ty)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._const_expr(expr.operand, ctype)
            if isinstance(inner, ConstantInt):
                return ConstantInt(inner.type, -inner.signed_value)
            if isinstance(inner, ConstantFloat):
                return ConstantFloat(inner.type, -inner.value)
        if isinstance(expr, ast.StringLit) and isinstance(ctype, ast.CPointer):
            raise CompileError(
                "string-initialized global pointers are not supported; "
                "use a char array", expr.line,
            )
        raise CompileError("unsupported constant initializer", expr.line)

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------
    def _declare_function(self, fndef: ast.FunctionDef) -> None:
        assert fndef.return_type is not None
        ret = self.lower_type(fndef.return_type, fndef.line)
        params = [self.lower_type(t, fndef.line) for t, _ in fndef.params]
        fnty = FunctionType(ret, params)
        existing = self.module.get_function(fndef.name)
        if existing is None:
            self.module.add_function(fndef.name, fnty, [n for _, n in fndef.params])
        self.function_sigs[fndef.name] = (
            fndef.return_type,
            [t for t, _ in fndef.params],
        )

    def _declare_builtin(self, name: str, line: int) -> Function:
        fnty = LIBC_SIGNATURES[name]
        fn = self.module.get_or_declare_function(
            name, fnty, LIBC_ATTRIBUTES.get(name, set())
        )
        fn.native = True
        return fn

    def _gen_function(self, fndef: ast.FunctionDef) -> None:
        fn = self.module.get_function(fndef.name)
        assert fn is not None
        if fn.blocks:
            raise CompileError(f"redefinition of function '{fndef.name}'", fndef.line)
        self.fn = fn
        self.current_return_ctype = fndef.return_type or ast.CVOID
        entry = fn.add_block("entry")
        self.builder = IRBuilder(entry)
        self.locals = [{}]
        # Spill parameters to allocas (mem2reg will promote).
        for formal, (pctype, pname) in zip(fn.args, fndef.params):
            slot = self.builder.alloca(formal.type, name=f"{pname}.addr")
            self.builder.store(formal, slot)
            self.locals[-1][pname] = TypedValue(slot, pctype)
        assert fndef.body is not None
        self._gen_block(fndef.body)
        # Implicit return.
        if self.builder.block.terminator is None:
            if isinstance(fn.return_type, VoidType):
                self.builder.ret()
            elif fndef.name == "main":
                self.builder.ret(ConstantInt(I32, 0))
            else:
                self.builder.unreachable()
        self._hoist_static_allocas(fn)
        self.fn = None

    @staticmethod
    def _hoist_static_allocas(fn) -> None:
        """Move all fixed-size allocas to the entry block, as clang
        does.  Keeps stack allocation out of loops and lets mem2reg
        (which only scans the entry block) see every local."""
        from ..ir.instructions import Alloca

        hoisted = []
        for block in fn.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, Alloca) and inst.count is None and block is not fn.entry:
                    block.remove_instruction(inst)
                    inst.parent = None
                    hoisted.append(inst)
        for inst in reversed(hoisted):
            fn.entry.insert(0, inst)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _gen_block(self, block: ast.Block) -> None:
        self.locals.append({})
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self.locals.pop()

    def _terminated(self) -> bool:
        return self.builder.block.terminator is not None

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        line = getattr(stmt, "line", None)
        if line is not None:
            self.builder.current_line = line
        if self._terminated():
            # Dead code after return/break: put it in a fresh block so
            # the IR stays well-formed; DCE removes it.
            dead = self.fn.add_block("dead")
            self.builder.position_at_end(dead)
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._gen_expr(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            self._gen_decl(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise CompileError("break outside of loop", stmt.line)
            self.builder.br(self.break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise CompileError("continue outside of loop", stmt.line)
            self.builder.br(self.continue_targets[-1])
        else:
            raise CompileError(f"cannot compile statement {stmt!r}", stmt.line)

    def _gen_decl(self, stmt: ast.DeclStmt) -> None:
        assert stmt.ctype is not None
        if isinstance(stmt.ctype, ast.CArray) and stmt.ctype.count is None:
            raise CompileError("local array needs a size", stmt.line)
        ty = self.lower_type(stmt.ctype, stmt.line)
        slot = self.builder.alloca(ty, name=stmt.name)
        if stmt.name in self.locals[-1]:
            raise CompileError(f"redeclaration of '{stmt.name}'", stmt.line)
        self.locals[-1][stmt.name] = TypedValue(slot, stmt.ctype)
        if stmt.init is not None:
            value = self._gen_expr(stmt.init)
            converted = self._convert(value, stmt.ctype, stmt.line)
            self._emit_store(converted.value, slot, stmt.ctype)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._to_bool(self._gen_expr(stmt.cond), stmt.line)
        then_bb = self.fn.add_block("if.then")
        merge_bb = self.fn.add_block("if.end")
        else_bb = self.fn.add_block("if.else") if stmt.otherwise else merge_bb
        self.builder.cond_br(cond, then_bb, else_bb)
        self.builder.position_at_end(then_bb)
        self._gen_stmt(stmt.then)
        if not self._terminated():
            self.builder.br(merge_bb)
        if stmt.otherwise is not None:
            self.builder.position_at_end(else_bb)
            self._gen_stmt(stmt.otherwise)
            if not self._terminated():
                self.builder.br(merge_bb)
        self.builder.position_at_end(merge_bb)

    def _gen_while(self, stmt: ast.While) -> None:
        cond_bb = self.fn.add_block("while.cond")
        body_bb = self.fn.add_block("while.body")
        end_bb = self.fn.add_block("while.end")
        self.builder.br(body_bb if stmt.is_do_while else cond_bb)
        self.builder.position_at_end(cond_bb)
        cond = self._to_bool(self._gen_expr(stmt.cond), stmt.line)
        self.builder.cond_br(cond, body_bb, end_bb)
        self.builder.position_at_end(body_bb)
        self.break_targets.append(end_bb)
        self.continue_targets.append(cond_bb)
        self._gen_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if not self._terminated():
            self.builder.br(cond_bb)
        self.builder.position_at_end(end_bb)

    def _gen_for(self, stmt: ast.For) -> None:
        self.locals.append({})
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        cond_bb = self.fn.add_block("for.cond")
        body_bb = self.fn.add_block("for.body")
        step_bb = self.fn.add_block("for.step")
        end_bb = self.fn.add_block("for.end")
        self.builder.br(cond_bb)
        self.builder.position_at_end(cond_bb)
        if stmt.cond is not None:
            cond = self._to_bool(self._gen_expr(stmt.cond), stmt.line)
            self.builder.cond_br(cond, body_bb, end_bb)
        else:
            self.builder.br(body_bb)
        self.builder.position_at_end(body_bb)
        self.break_targets.append(end_bb)
        self.continue_targets.append(step_bb)
        self._gen_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if not self._terminated():
            self.builder.br(step_bb)
        self.builder.position_at_end(step_bb)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        self.builder.br(cond_bb)
        self.builder.position_at_end(end_bb)
        self.locals.pop()

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            if not self.current_return_ctype.is_void():
                raise CompileError("return without value in non-void function", stmt.line)
            self.builder.ret()
            return
        value = self._gen_expr(stmt.value)
        converted = self._convert(value, self.current_return_ctype, stmt.line)
        self.builder.ret(converted.value)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _gen_expr(self, expr: ast.Expr) -> TypedValue:
        """Lower an expression to an rvalue."""
        if isinstance(expr, ast.IntLit):
            if expr.is_long:
                return TypedValue(ConstantInt(I64, expr.value), ast.CLONG)
            return TypedValue(ConstantInt(I32, expr.value), ast.CINT)
        if isinstance(expr, ast.FloatLit):
            return TypedValue(ConstantFloat(F64, expr.value), ast.CDOUBLE)
        if isinstance(expr, ast.CharLit):
            return TypedValue(ConstantInt(I32, expr.value), ast.CINT)
        if isinstance(expr, ast.NullLit):
            return TypedValue(ConstantNull(ptr(I8)), _VOIDP)
        if isinstance(expr, ast.StringLit):
            gv = self._intern_string(expr.value)
            decayed = self.builder.gep_index(gv, 0, 0)
            return TypedValue(decayed, ast.CPointer(ast.CCHAR))
        if isinstance(expr, ast.Ident):
            slot = self._lookup_variable(expr.name)
            if slot is None:
                decayed = self._function_value(expr.name, expr.line)
                if decayed is not None:
                    return decayed
            return self._load_lvalue(*self._gen_lvalue(expr), expr.line)
        if isinstance(expr, (ast.Index, ast.Member)):
            return self._load_lvalue(*self._gen_lvalue(expr), expr.line)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._gen_postfix(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._gen_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._gen_call(expr)
        if isinstance(expr, ast.CastExpr):
            value = self._gen_expr(expr.value)
            return self._explicit_cast(value, expr.target, expr.line)
        if isinstance(expr, ast.SizeofExpr):
            return TypedValue(
                ConstantInt(I64, self.sizeof_ctype(expr.target, expr.line)), ast.CLONG
            )
        raise CompileError(f"cannot compile expression {expr!r}", expr.line)

    def _lookup_variable(self, name: str):
        for scope in reversed(self.locals):
            if name in scope:
                return scope[name]
        gv = self.module.get_global(name)
        if gv is not None and name in self.global_ctypes:
            return TypedValue(gv, self.global_ctypes[name])
        return None

    def _function_value(self, name: str, line: int):
        """A function name used as a value decays to a function
        pointer (``RET (*)(params)``)."""
        if name in self.function_sigs:
            fn = self.module.get_function(name)
            ret, params = self.function_sigs[name]
            return TypedValue(fn, ast.CPointer(ast.CFunction(ret, tuple(params))))
        if name in BUILTIN_SIGNATURES:
            fn = self._declare_builtin(name, line)
            ret, params = BUILTIN_SIGNATURES[name]
            return TypedValue(fn, ast.CPointer(ast.CFunction(ret, tuple(params))))
        return None

    def _intern_string(self, data: bytes) -> GlobalVariable:
        gv = self._string_pool.get(data)
        if gv is None:
            const = ConstantString(data)
            gv = self.module.add_global(
                f".str{len(self._string_pool)}", const.type, const, "internal"
            )
            self._string_pool[data] = gv
        return gv

    # -- lvalues ---------------------------------------------------------
    def _gen_lvalue(self, expr: ast.Expr) -> Tuple[Value, ast.CType]:
        """Lower an expression to (address, object C type)."""
        if isinstance(expr, ast.Ident):
            for scope in reversed(self.locals):
                if expr.name in scope:
                    tv = scope[expr.name]
                    return tv.value, tv.ctype
            gv = self.module.get_global(expr.name)
            if gv is not None and expr.name in self.global_ctypes:
                return gv, self.global_ctypes[expr.name]
            raise CompileError(f"unknown identifier '{expr.name}'", expr.line)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointee = self._gen_expr(expr.operand)
            if not isinstance(pointee.ctype, ast.CPointer):
                raise CompileError("dereference of non-pointer", expr.line)
            if pointee.ctype.pointee.is_void():
                raise CompileError("dereference of void*", expr.line)
            return pointee.value, pointee.ctype.pointee
        if isinstance(expr, ast.Index):
            base = self._gen_expr_or_decay(expr.base)
            index = self._gen_expr(expr.index)
            if not isinstance(base.ctype, ast.CPointer):
                raise CompileError("indexing a non-pointer", expr.line)
            idx64 = self._to_i64(index, expr.line)
            address = self.builder.gep(base.value, [idx64])
            return address, base.ctype.pointee
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._gen_expr(expr.base)
                if not isinstance(base.ctype, ast.CPointer) or not isinstance(
                    base.ctype.pointee, ast.CStruct
                ):
                    raise CompileError("-> on non-struct-pointer", expr.line)
                struct_ctype = base.ctype.pointee
                base_addr = base.value
            else:
                base_addr, struct_ctype = self._gen_lvalue(expr.base)
                if not isinstance(struct_ctype, ast.CStruct):
                    raise CompileError(". on non-struct", expr.line)
            members = self.struct_member_index.get(struct_ctype.tag)
            if members is None or expr.name not in members:
                raise CompileError(
                    f"struct {struct_ctype.tag} has no member '{expr.name}'", expr.line
                )
            idx = members[expr.name]
            address = self.builder.gep(
                base_addr, [ConstantInt(I64, 0), ConstantInt(I32, idx)]
            )
            member_ctype = self.struct_defs[struct_ctype.tag].members[idx][0]
            return address, member_ctype
        raise CompileError("expression is not an lvalue", expr.line)

    def _load_lvalue(self, address: Value, ctype: ast.CType, line: int) -> TypedValue:
        if isinstance(ctype, ast.CArray):
            # Array decay: the rvalue is a pointer to the first element.
            decayed = self.builder.gep(
                address, [ConstantInt(I64, 0), ConstantInt(I64, 0)]
            )
            return TypedValue(decayed, ast.CPointer(ctype.element))
        if isinstance(ctype, ast.CStruct):
            # Struct rvalues are only used for member access; keep address.
            return TypedValue(address, ctype)
        return TypedValue(self._emit_load(address, ctype), ctype)

    # -- pointer-copy (de)obfuscation -------------------------------------
    def _emit_load(self, address: Value, ctype: ast.CType) -> Value:
        ty = self.lower_type(ctype)
        if self.obfuscate_pointer_copies and isinstance(ty, PointerType):
            as_i64p = self.builder.bitcast(address, ptr(I64))
            raw = self.builder.load(as_i64p)
            return self.builder.inttoptr(raw, ty)
        return self.builder.load(address)

    def _emit_store(self, value: Value, address: Value, ctype: ast.CType) -> None:
        ty = self.lower_type(ctype)
        if self.obfuscate_pointer_copies and isinstance(ty, PointerType):
            raw = self.builder.ptrtoint(value, I64)
            as_i64p = self.builder.bitcast(address, ptr(I64))
            self.builder.store(raw, as_i64p)
            return
        self.builder.store(value, address)

    # -- operators --------------------------------------------------------
    def _gen_expr_or_decay(self, expr: ast.Expr) -> TypedValue:
        return self._gen_expr(expr)

    def _gen_unary(self, expr: ast.Unary) -> TypedValue:
        if expr.op == "&":
            if isinstance(expr.operand, ast.Ident) and \
                    self._lookup_variable(expr.operand.name) is None:
                decayed = self._function_value(expr.operand.name, expr.line)
                if decayed is not None:
                    return decayed
            address, ctype = self._gen_lvalue(expr.operand)
            if isinstance(ctype, ast.CArray):
                address = self.builder.gep(
                    address, [ConstantInt(I64, 0), ConstantInt(I64, 0)]
                )
                return TypedValue(address, ast.CPointer(ctype.element))
            return TypedValue(address, ast.CPointer(ctype))
        if expr.op == "*":
            address, ctype = self._gen_lvalue(expr)
            return self._load_lvalue(address, ctype, expr.line)
        operand = self._gen_expr(expr.operand)
        if expr.op == "-":
            operand = self._promote_arith(operand, expr.line)
            if operand.ctype.is_float():
                zero = ConstantFloat(operand.value.type, 0.0)
                return TypedValue(self.builder.binop("fsub", zero, operand.value), operand.ctype)
            zero = ConstantInt(operand.value.type, 0)
            return TypedValue(self.builder.sub(zero, operand.value), operand.ctype)
        if expr.op == "~":
            operand = self._promote_arith(operand, expr.line)
            minus1 = ConstantInt(operand.value.type, -1)
            return TypedValue(self.builder.xor(operand.value, minus1), operand.ctype)
        if expr.op == "!":
            as_bool = self._to_bool(operand, expr.line)
            inverted = self.builder.xor(as_bool, ConstantInt(I1, 1))
            return TypedValue(self.builder.zext(inverted, I32), ast.CINT)
        raise CompileError(f"unknown unary operator {expr.op}", expr.line)

    def _gen_postfix(self, expr: ast.Postfix) -> TypedValue:
        address, ctype = self._gen_lvalue(expr.operand)
        old = self._load_lvalue(address, ctype, expr.line)
        delta = 1 if expr.op == "++" else -1
        if isinstance(ctype, ast.CPointer):
            new_value = self.builder.gep(old.value, [ConstantInt(I64, delta)])
        elif ctype.is_float():
            new_value = self.builder.binop(
                "fadd", old.value, ConstantFloat(old.value.type, float(delta))
            )
        else:
            new_value = self.builder.add(old.value, ConstantInt(old.value.type, delta))
        self._emit_store(new_value, address, ctype)
        return old

    def _gen_binary(self, expr: ast.Binary) -> TypedValue:
        op = expr.op
        if op == ",":
            self._gen_expr(expr.lhs)
            return self._gen_expr(expr.rhs)
        if op in ("&&", "||"):
            return self._gen_short_circuit(expr)
        lhs = self._gen_expr(expr.lhs)
        rhs = self._gen_expr(expr.rhs)
        return self._apply_binary(op, lhs, rhs, expr.line)

    def _apply_binary(self, op: str, lhs: TypedValue, rhs: TypedValue, line: int) -> TypedValue:
        # pointer arithmetic
        if isinstance(lhs.ctype, ast.CPointer) or isinstance(rhs.ctype, ast.CPointer):
            return self._gen_pointer_binary(op, lhs, rhs, line)
        lhs, rhs, common = self._usual_conversions(lhs, rhs, line)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if common.is_float():
                # C's != is the *unordered* not-equal (NaN != NaN is
                # true); the relational operators are ordered, exactly
                # as clang lowers them.
                pred = {"==": "oeq", "!=": "une", "<": "olt",
                        "<=": "ole", ">": "ogt", ">=": "oge"}[op]
                cmp = self.builder.fcmp(pred, lhs.value, rhs.value)
            else:
                unsigned = common == ast.CUNSIGNED
                pred = {"==": "eq", "!=": "ne",
                        "<": "ult" if unsigned else "slt",
                        "<=": "ule" if unsigned else "sle",
                        ">": "ugt" if unsigned else "sgt",
                        ">=": "uge" if unsigned else "sge"}[op]
                cmp = self.builder.icmp(pred, lhs.value, rhs.value)
            return TypedValue(self.builder.zext(cmp, I32), ast.CINT)
        if common.is_float():
            ir_op = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "frem"}.get(op)
            if ir_op is None:
                raise CompileError(f"operator {op} on floating-point", line)
            return TypedValue(self.builder.binop(ir_op, lhs.value, rhs.value), common)
        unsigned = common == ast.CUNSIGNED
        ir_op = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "udiv" if unsigned else "sdiv",
            "%": "urem" if unsigned else "srem",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "lshr" if unsigned else "ashr",
        }.get(op)
        if ir_op is None:
            raise CompileError(f"unknown operator {op}", line)
        return TypedValue(self.builder.binop(ir_op, lhs.value, rhs.value), common)

    def _gen_pointer_binary(self, op: str, lhs: TypedValue, rhs: TypedValue, line: int) -> TypedValue:
        lptr = isinstance(lhs.ctype, ast.CPointer)
        rptr = isinstance(rhs.ctype, ast.CPointer)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lv = self._pointer_as_value(lhs, line)
            rv = self._pointer_as_value(rhs, line)
            if lv.type != rv.type:
                rv = self.builder.bitcast(rv, lv.type)
            pred = {"==": "eq", "!=": "ne", "<": "ult",
                    "<=": "ule", ">": "ugt", ">=": "uge"}[op]
            li = self.builder.ptrtoint(lv, I64)
            ri = self.builder.ptrtoint(rv, I64)
            cmp = self.builder.icmp(pred, li, ri)
            return TypedValue(self.builder.zext(cmp, I32), ast.CINT)
        if op == "-" and lptr and rptr:
            li = self.builder.ptrtoint(lhs.value, I64)
            ri = self.builder.ptrtoint(rhs.value, I64)
            diff = self.builder.sub(li, ri)
            elem = self.sizeof_ctype(lhs.ctype.pointee, line)
            if elem > 1:
                diff = self.builder.binop("sdiv", diff, ConstantInt(I64, elem))
            return TypedValue(diff, ast.CLONG)
        if op in ("+", "-"):
            pointer, integer = (lhs, rhs) if lptr else (rhs, lhs)
            if not integer.ctype.is_integer():
                raise CompileError("pointer arithmetic needs an integer", line)
            idx = self._to_i64(integer, line)
            if op == "-":
                idx = self.builder.sub(ConstantInt(I64, 0), idx)
            return TypedValue(self.builder.gep(pointer.value, [idx]), pointer.ctype)
        raise CompileError(f"operator {op} not supported on pointers", line)

    def _pointer_as_value(self, tv: TypedValue, line: int) -> Value:
        if isinstance(tv.ctype, ast.CPointer):
            return tv.value
        # Integer 0 compares against pointers (NULL idiom).
        if isinstance(tv.value, ConstantInt) and tv.value.value == 0:
            return ConstantNull(ptr(I8))
        raise CompileError("comparison between pointer and non-pointer", line)

    def _gen_short_circuit(self, expr: ast.Binary) -> TypedValue:
        is_and = expr.op == "&&"
        rhs_bb = self.fn.add_block("sc.rhs")
        merge_bb = self.fn.add_block("sc.end")
        lhs = self._to_bool(self._gen_expr(expr.lhs), expr.line)
        lhs_bb = self.builder.block
        if is_and:
            self.builder.cond_br(lhs, rhs_bb, merge_bb)
        else:
            self.builder.cond_br(lhs, merge_bb, rhs_bb)
        self.builder.position_at_end(rhs_bb)
        rhs = self._to_bool(self._gen_expr(expr.rhs), expr.line)
        rhs_end_bb = self.builder.block
        self.builder.br(merge_bb)
        self.builder.position_at_end(merge_bb)
        phi = self.builder.phi(I1)
        phi.add_incoming(ConstantInt(I1, 0 if is_and else 1), lhs_bb)
        phi.add_incoming(rhs, rhs_end_bb)
        return TypedValue(self.builder.zext(phi, I32), ast.CINT)

    def _gen_conditional(self, expr: ast.Conditional) -> TypedValue:
        cond = self._to_bool(self._gen_expr(expr.cond), expr.line)
        then_bb = self.fn.add_block("cond.then")
        else_bb = self.fn.add_block("cond.else")
        merge_bb = self.fn.add_block("cond.end")
        self.builder.cond_br(cond, then_bb, else_bb)
        self.builder.position_at_end(then_bb)
        then_val = self._gen_expr(expr.then)
        then_end = self.builder.block
        self.builder.position_at_end(else_bb)
        else_val = self._gen_expr(expr.otherwise)
        else_end = self.builder.block
        # Unify types.
        target_ctype = then_val.ctype
        if then_val.ctype != else_val.ctype:
            if then_val.ctype.is_arithmetic() and else_val.ctype.is_arithmetic():
                target_ctype = self._common_arith_type(then_val.ctype, else_val.ctype)
            elif isinstance(else_val.ctype, ast.CPointer):
                target_ctype = else_val.ctype
        self.builder.position_at_end(then_end)
        then_val = self._convert(then_val, target_ctype, expr.line)
        self.builder.br(merge_bb)
        self.builder.position_at_end(else_end)
        else_val = self._convert(else_val, target_ctype, expr.line)
        self.builder.br(merge_bb)
        self.builder.position_at_end(merge_bb)
        phi = self.builder.phi(then_val.value.type)
        phi.add_incoming(then_val.value, then_end)
        phi.add_incoming(else_val.value, else_end)
        return TypedValue(phi, target_ctype)

    def _gen_assign(self, expr: ast.Assign) -> TypedValue:
        address, ctype = self._gen_lvalue(expr.target)
        if expr.op == "=":
            value = self._convert(self._gen_expr(expr.value), ctype, expr.line)
            self._emit_store(value.value, address, ctype)
            return value
        # Compound assignment: load, apply, store.
        op = expr.op[:-1]
        old = self._load_lvalue(address, ctype, expr.line)
        rhs = self._gen_expr(expr.value)
        result = self._apply_binary(op, old, rhs, expr.line)
        converted = self._convert(result, ctype, expr.line)
        self._emit_store(converted.value, address, ctype)
        return converted

    def _gen_call(self, expr: ast.CallExpr) -> TypedValue:
        # A call through a function-pointer *variable* shadows direct
        # functions, as in C's name lookup.
        slot = self._lookup_variable(expr.name)
        if slot is not None:
            if not (isinstance(slot.ctype, ast.CPointer)
                    and isinstance(slot.ctype.pointee, ast.CFunction)):
                raise CompileError(
                    f"'{expr.name}' is not callable", expr.line
                )
            signature = slot.ctype.pointee
            callee = self._emit_load(slot.value, slot.ctype)
            if len(expr.args) != len(signature.params):
                raise CompileError(
                    f"'{expr.name}' expects {len(signature.params)} "
                    f"arguments, got {len(expr.args)}", expr.line,
                )
            args = []
            for arg_expr, pctype in zip(expr.args, signature.params):
                arg = self._gen_expr(arg_expr)
                args.append(self._convert(arg, pctype, expr.line).value)
            call = self.builder.call(callee, args)
            return TypedValue(call, signature.ret)
        if expr.name in BUILTIN_SIGNATURES:
            fn = self._declare_builtin(expr.name, expr.line)
            ret_ctype, param_ctypes = BUILTIN_SIGNATURES[expr.name]
        else:
            fn = self.module.get_function(expr.name)
            if fn is None or expr.name not in self.function_sigs:
                raise CompileError(f"call to unknown function '{expr.name}'", expr.line)
            ret_ctype, param_ctypes = self.function_sigs[expr.name]
        if len(expr.args) != len(param_ctypes):
            raise CompileError(
                f"'{expr.name}' expects {len(param_ctypes)} arguments, "
                f"got {len(expr.args)}", expr.line,
            )
        args = []
        for arg_expr, pctype in zip(expr.args, param_ctypes):
            arg = self._gen_expr(arg_expr)
            args.append(self._convert(arg, pctype, expr.line).value)
        call = self.builder.call(fn, args)
        return TypedValue(call, ret_ctype)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def _to_bool(self, tv: TypedValue, line: int) -> Value:
        if isinstance(tv.ctype, ast.CPointer):
            as_int = self.builder.ptrtoint(tv.value, I64)
            return self.builder.icmp("ne", as_int, ConstantInt(I64, 0))
        if tv.ctype.is_float():
            # C truthiness is `x != 0` with != being an *unordered*
            # comparison: NaN is truthy.  `fcmp one` would make NaN
            # falsy (ordered comparisons are false on NaN).
            return self.builder.fcmp("une", tv.value, ConstantFloat(tv.value.type, 0.0))
        if tv.value.type == I1:
            return tv.value
        return self.builder.icmp("ne", tv.value, ConstantInt(tv.value.type, 0))

    def _to_i64(self, tv: TypedValue, line: int) -> Value:
        converted = self._convert(tv, ast.CLONG, line)
        return converted.value

    def _promote_arith(self, tv: TypedValue, line: int) -> TypedValue:
        """Integer promotion: char -> int."""
        if tv.ctype == ast.CCHAR:
            return self._convert(tv, ast.CINT, line)
        return tv

    def _common_arith_type(self, a: ast.CType, b: ast.CType) -> ast.CType:
        if a == ast.CDOUBLE or b == ast.CDOUBLE:
            return ast.CDOUBLE
        if a == ast.CFLOAT or b == ast.CFLOAT:
            return ast.CFLOAT
        assert isinstance(a, ast.CPrim) and isinstance(b, ast.CPrim)
        rank_a = _INT_RANK.get(a.name, 1)
        rank_b = _INT_RANK.get(b.name, 1)
        best = max(rank_a, rank_b, 1)  # promote char to int
        for name, rank in _INT_RANK.items():
            if rank == best:
                return ast.CPrim(name)
        raise AssertionError("unreachable")

    def _usual_conversions(
        self, lhs: TypedValue, rhs: TypedValue, line: int
    ) -> Tuple[TypedValue, TypedValue, ast.CType]:
        if not lhs.ctype.is_arithmetic() or not rhs.ctype.is_arithmetic():
            raise CompileError(
                f"invalid operands ({lhs.ctype} and {rhs.ctype})", line
            )
        common = self._common_arith_type(lhs.ctype, rhs.ctype)
        return (
            self._convert(lhs, common, line),
            self._convert(rhs, common, line),
            common,
        )

    def _convert(self, tv: TypedValue, target: ast.CType, line: int) -> TypedValue:
        if tv.ctype == target:
            return tv
        src, dst = tv.ctype, target
        value = tv.value
        # pointer conversions
        if isinstance(src, ast.CPointer) and isinstance(dst, ast.CPointer):
            target_ty = self.lower_type(dst, line)
            return TypedValue(self.builder.bitcast(value, target_ty), dst)
        if isinstance(dst, ast.CPointer) and src.is_integer():
            if isinstance(value, ConstantInt) and value.value == 0:
                return TypedValue(ConstantNull(self.lower_type(dst, line)), dst)
            extended = self._convert(tv, ast.CLONG, line)
            return TypedValue(
                self.builder.inttoptr(extended.value, self.lower_type(dst, line)), dst
            )
        if isinstance(src, ast.CPointer) and dst.is_integer():
            as_int = self.builder.ptrtoint(value, I64)
            return self._convert(TypedValue(as_int, ast.CLONG), dst, line)
        if not (src.is_arithmetic() and dst.is_arithmetic()):
            raise CompileError(f"cannot convert {src} to {dst}", line)
        # arithmetic conversions
        src_ty = self.lower_type(src, line)
        dst_ty = self.lower_type(dst, line)
        if src.is_float() and dst.is_float():
            op = "fpext" if size_of(dst_ty) > size_of(src_ty) else "fptrunc"
            if src_ty == dst_ty:
                return TypedValue(value, dst)
            return TypedValue(self.builder.cast(op, value, dst_ty), dst)
        if src.is_float() and dst.is_integer():
            return TypedValue(self.builder.cast("fptosi", value, dst_ty), dst)
        if src.is_integer() and dst.is_float():
            op = "uitofp" if src == ast.CUNSIGNED else "sitofp"
            return TypedValue(self.builder.cast(op, value, dst_ty), dst)
        # integer <-> integer
        assert isinstance(src_ty, IntType) and isinstance(dst_ty, IntType)
        if src_ty.bits == dst_ty.bits:
            return TypedValue(value, dst)
        if src_ty.bits > dst_ty.bits:
            return TypedValue(self.builder.trunc(value, dst_ty), dst)
        op = "zext" if src == ast.CUNSIGNED else "sext"
        return TypedValue(self.builder.cast(op, value, dst_ty), dst)

    def _explicit_cast(self, tv: TypedValue, target: ast.CType, line: int) -> TypedValue:
        if target.is_void():
            return TypedValue(tv.value, ast.CVOID)
        return self._convert(tv, target, line)


def compile_source(
    source: str,
    name: str = "tu",
    obfuscate_pointer_copies: bool = False,
) -> Module:
    """Compile MiniC source text into an IR module."""
    unit = parse(source, name)
    return CodeGenerator(unit, obfuscate_pointer_copies).generate()

"""MiniC: the C-subset frontend of the reproduction."""

from .codegen import CodeGenerator, compile_source
from .lexer import Token, tokenize
from .parser import parse

__all__ = ["CodeGenerator", "Token", "compile_source", "parse", "tokenize"]

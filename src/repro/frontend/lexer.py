"""Lexer for MiniC, the C subset the workloads are written in."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import CompileError

KEYWORDS = {
    "int", "long", "char", "double", "float", "void", "unsigned",
    "struct", "extern", "static", "sizeof", "typedef", "const",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "NULL",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


@dataclass
class Token:
    kind: str        # "ident" | "keyword" | "int" | "float" | "char" | "string" | "op" | "eof"
    text: str
    line: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
                tokens.append(Token("int", source[i:j], line, value))
                i = _skip_int_suffix(source, j)
                continue
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", text, line, float(text)))
            else:
                tokens.append(Token("int", text, line, int(text)))
            i = _skip_int_suffix(source, j)
            continue
        if c == "'":
            value, j = _read_char_literal(source, i, line)
            tokens.append(Token("char", source[i:j], line, value))
            i = j
            continue
        if c == '"':
            value, j = _read_string_literal(source, i, line)
            tokens.append(Token("string", source[i:j], line, value))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {c!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def _skip_int_suffix(source: str, i: int) -> int:
    while i < len(source) and source[i] in "uUlL":
        i += 1
    return i


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


def _read_char_literal(source: str, i: int, line: int):
    j = i + 1
    if j >= len(source):
        raise CompileError("unterminated char literal", line)
    if source[j] == "\\":
        j += 1
        escape = source[j]
        if escape not in _ESCAPES:
            raise CompileError(f"unknown escape \\{escape}", line)
        value = _ESCAPES[escape]
        j += 1
    else:
        value = ord(source[j])
        j += 1
    if j >= len(source) or source[j] != "'":
        raise CompileError("unterminated char literal", line)
    return value, j + 1


def _read_string_literal(source: str, i: int, line: int):
    j = i + 1
    out = bytearray()
    while j < len(source) and source[j] != '"':
        if source[j] == "\\":
            j += 1
            escape = source[j]
            if escape not in _ESCAPES:
                raise CompileError(f"unknown escape \\{escape}", line)
            out.append(_ESCAPES[escape])
            j += 1
        elif source[j] == "\n":
            raise CompileError("newline in string literal", line)
        else:
            out.append(ord(source[j]))
            j += 1
    if j >= len(source):
        raise CompileError("unterminated string literal", line)
    return bytes(out), j + 1

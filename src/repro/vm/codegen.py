"""Source-generation tier of the VM (``--engine codegen``).

Third execution tier, one step past the closure tier in
:mod:`.compile`: each IR function is translated *once* into a single
Python source string and ``exec``-ed, so hot code runs as real
compiled bytecode over real local variables instead of lists of
closures over frame-slot lists:

* SSA values live in plain locals ``v<slot>`` (``LOAD_FAST``) instead
  of ``frame[slot]`` list indexing;
* basic blocks dispatch through a ``while True`` loop over an
  ``if __b == <idx>: ... elif`` jump table on the block index;
  single-predecessor blocks are inlined at their unique branch site
  (superblock formation), so straight-line runs and simple loops
  execute without any dispatch at all;
* phi moves become per-edge tuple assignments
  (``v3, v7 = <e1>, <e2>``), which are parallel by construction;
* icmp/fcmp/binops/casts/GEPs are inlined as expressions, with
  branch-free sign correction (``(x ^ half) - half``) instead of
  per-value ``if`` closures, and single-use pure values fused
  textually into their consumer;
* loads/stores keep the closure tier's per-site inline cache, as
  module-level cache variables validated against ``Memory.epoch``;
* cycle/opcode charges are block-batched into plain *local*
  accumulators (``__cy``, ``__o_<opcode>``, ...) flushed once per
  frame by a zero-cost ``try/finally``; only the absolute instruction
  count ``__ins`` is published to ``RuntimeStats`` eagerly -- before
  every call (callees check the budget against it) and at frame exit.
  Raising statements keep the closure tier's static rollback: a
  ``try/except`` subtracts the not-yet-executed suffix of the block
  from the accumulators before re-raising, and call statements resync
  ``__ins`` from the callee's exactly-published count.

The statistics contract is identical to :mod:`.compile` (see its
docstring): field-for-field :class:`RuntimeStats` equality with the
tree-walker at every observable point, including the instant a
``MemoryFault``/exit escapes.  Fusion and inlining decisions only move
*when* a pure expression is computed, never what is charged, so this
tier may fuse differently (e.g. depth-capped) without observable
effect.  Operands that evaluate a function address or unloaded global
(``"f"`` descriptors) are never fused or folded, exactly like the
closure tier, because their evaluation order is program-visible.

Per-function source and code objects are cached on the
:class:`Function` itself (``fn._codegen_cache``): the emitter runs per
VM (bindings like native impls and global addresses are per-VM), but
when the generated source is unchanged the expensive ``compile()``
call is skipped and only a fresh namespace is ``exec``-ed.

Profiling (``profile=True``) needs per-site cycle attribution that
block-batching cannot provide without the closure tier's specialized
batches; the VM transparently falls back to the closure tier in that
case and records the reason (see ``VirtualMachine.call_function``).
"""

from __future__ import annotations

import bisect
import math
import os
import re
import struct
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import MemoryFault, VMError
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCMP_EVAL,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, GlobalVariable
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    size_of,
    struct_field_offset,
)
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantZero,
    UndefValue,
    Value,
)
from . import costs
from .compile import _DIV_OPS, _PURE_CASTS, _FunctionCompiler
from .memory import SparsePages

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import VirtualMachine

U64_MASK = (1 << 64) - 1

#: Cap on textual fusion depth: bounds parenthesis nesting so the
#: CPython parser never sees pathologically deep expressions.  Fusion
#: depth is unobservable in RuntimeStats, so capping is always safe.
_MAX_FUSE_DEPTH = 24

#: Cap on single-predecessor block inlining depth (bounds source
#: indentation; blocks past the cap get a dispatch label instead).
_MAX_INLINE_DEPTH = 36

_BUDGET_CHECK = "if __ins > __maxi:"
_BUDGET_RAISE = (
    '    raise __VMError("instruction budget exceeded (infinite loop?)")')

_ICMP_SYM = {
    "eq": "==", "ne": "!=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
    "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
}
_ICMP_SIGNED = frozenset(("slt", "sle", "sgt", "sge"))

#: fcmp predicates whose NaN behaviour Python operators reproduce
#: directly: ordered comparisons are False on NaN (as every Python
#: comparison is), ``une`` is unordered-or-ne and ``!=`` is True on
#: NaN.  The remaining eight go through the shared FCMP_EVAL table.
_FCMP_SYM = {
    "oeq": "==", "ogt": ">", "oge": ">=", "olt": "<", "ole": "<=",
    "une": "!=",
}


def _env_signature(vm: "VirtualMachine") -> Tuple:
    """Everything the emitter consults on the VM that can change the
    *generated source or bindings*: loaded-global addresses (constant
    folding + getter shape) and native implementations (inline-charge
    shape + bound impl identity).  Two VMs with equal signatures get
    byte-identical source and may share the cached emission."""
    return (
        tuple((id(g), a) for g, a in vm.global_addresses.items()),
        tuple((n, id(f)) for n, f in vm.natives.items()),
    )


def _as_condition(expr: str) -> str:
    """Truthiness form of a generated expression.

    The icmp/fcmp inliners emit exactly ``(1 if C else 0)`` (fixed
    6-char prefix / 8-char suffix, and no other expression shape starts
    with the prefix), whose truthiness equals ``C``'s -- stripping the
    wrapper saves an int construction and a re-test per evaluation in
    boolean contexts (condbr, select)."""
    if expr.startswith("(1 if ") and expr.endswith(" else 0)"):
        return expr[6:-8]
    return expr


def _is_flag_expr(desc: Tuple) -> bool:
    """True for a fused pure expression of the ``(1 if C else 0)``
    shape (an inlined icmp/fcmp, possibly forwarded through zext)."""
    return (desc[0] == "p" and desc[1].startswith("(1 if ")
            and desc[1].endswith(" else 0)"))


def _raiser0(exc: Exception):
    """Zero-argument raiser usable inside a generated expression."""

    def step():
        raise exc

    return step


def _global_getter(vm: "VirtualMachine", value: GlobalVariable):
    def getter():
        try:
            return vm.global_addresses[value]
        except KeyError:
            raise VMError(f"global @{value.name} not loaded") from None

    return getter


class CodegenFunction:
    """One IR function translated to generated Python source, bound to
    one VM.  ``execute`` mirrors ``CompiledFunction.execute``
    (argument padding/truncation included)."""

    __slots__ = ("vm", "fn", "arg_count", "source", "_run")

    def __init__(self, vm: "VirtualMachine", fn: Function, index: int = 0):
        self.vm = vm
        self.fn = fn
        self.arg_count = len(fn.args)
        # Emission is cached on the Function keyed by the VM-environment
        # signature: a fresh VM over the same program (the common case
        # -- benchmarks, differential runs, fuzz cells) skips the whole
        # emitter and re-binds only the per-VM namespace entries.
        sig = _env_signature(vm)
        cached = getattr(fn, "_codegen_cache", None)
        if cached is not None and cached[0] == sig:
            _, source, code, template, vm_binds, nsite = cached
            # The template was snapshotted before exec ever ran, so the
            # per-site inline-cache variables it carries are already in
            # their pristine initial state -- no reset loop needed.
            ns = dict(template)
            for name, gvar in vm_binds:
                ns[name] = _global_getter(vm, gvar)
            stats = vm.stats
            ns.update(
                __vm=vm, __stats=stats, __oc=stats.opcode_counts,
                __mem=vm.memory, __locate=vm.memory.locate,
                __bases=vm.memory._bases, __allocs=vm.memory._allocs,
                __alloca=vm.stack.alloca, __call=vm.call_function,
                __dc=vm._codegen_direct_call, __charge=stats.charge,
                __fa=vm.function_address, __fba=vm._functions_by_address,
            )
        else:
            emitter = _SourceEmitter(vm, fn)
            source, ns = emitter.emit()
            if cached is not None and cached[1] == source:
                code = cached[2]
            else:
                code = compile(source, f"<codegen:{fn.name}>", "exec")
            fn._codegen_cache = (sig, source, code, dict(ns),
                                 emitter._vm_binds, emitter._nsite)
        self.source = source
        dump_dir = getattr(vm, "codegen_dump_dir", None)
        if dump_dir:
            self._dump(dump_dir, index)
        exec(code, ns)
        self._run = ns["__run"]

    def _dump(self, dump_dir: str, index: int) -> None:
        os.makedirs(dump_dir, exist_ok=True)
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", self.fn.name)
        path = os.path.join(dump_dir, f"{index:03d}_{safe}.py")
        with open(path, "w") as fh:
            fh.write(self.source)

    def execute(self, args: List) -> Optional[object]:
        n = self.arg_count
        if len(args) == n:
            return self._run(*args)
        # Same semantics as the closure tier's zip over arg slots:
        # extra arguments are dropped, missing ones read as None.
        return self._run(*(list(args) + [None] * n)[:n])


class _SourceEmitter:
    """Builds the source string plus the exec namespace for one
    function.

    Operand descriptors mirror the closure tier: ``("s", slot)`` for
    locals, ``("c", value)`` for compile-time constants, ``("p", expr,
    depth)`` for fused pure expressions, ``("f", expr, depth)`` for
    impure expressions (function addresses, unloaded globals,
    undefined values) that must evaluate exactly where the tree-walker
    would evaluate them.
    """

    def __init__(self, vm: "VirtualMachine", fn: Function):
        self.vm = vm
        self.fn = fn
        self.slots: Dict[Value, int] = {}
        self.uses: Dict[Value, int] = {}
        self._nbind = 0
        self._nsite = 0
        self._globals: List[str] = []
        #: (binding name, GlobalVariable) pairs whose bound getter
        #: closes over the VM -- the only VM-dependent ``__k`` bindings,
        #: rebuilt when a cached emission is reused by a fresh VM.
        self._vm_binds: List[Tuple[str, GlobalVariable]] = []
        stats = vm.stats
        self.ns: Dict[str, object] = {
            "__vm": vm,
            "__stats": stats,
            "__oc": stats.opcode_counts,
            "__mem": vm.memory,
            "__locate": vm.memory.locate,
            # The allocation index lists are created once per Memory
            # and only ever mutated in place, so binding them is safe;
            # the inlined miss path bisects them directly.
            "__br": bisect.bisect_right,
            "__bases": vm.memory._bases,
            "__allocs": vm.memory._allocs,
            "__SP": SparsePages,
            "__alloca": vm.stack.alloca,
            "__call": vm.call_function,
            "__dc": vm._codegen_direct_call,
            "__charge": stats.charge,
            "__fa": vm.function_address,
            "__fba": vm._functions_by_address,
            "__VMError": VMError,
            "__MemoryFault": MemoryFault,
            "__up": struct.unpack,
            "__pk": struct.pack,
            "__fb": int.from_bytes,
            # Pre-bound Struct methods: no per-access format parsing,
            # no intermediate bytes objects on the bytearray fast path.
            "__ld2": struct.Struct("<H").unpack_from,
            "__ld4": struct.Struct("<I").unpack_from,
            "__ld8": struct.Struct("<Q").unpack_from,
            "__st2": struct.Struct("<H").pack_into,
            "__st4": struct.Struct("<I").pack_into,
            "__st8": struct.Struct("<Q").pack_into,
            "__lf4": struct.Struct("<f").unpack_from,
            "__lf8": struct.Struct("<d").unpack_from,
            "__sf4": struct.Struct("<f").pack_into,
            "__sf8": struct.Struct("<d").pack_into,
            "__fmod": math.fmod,
            "__INF": float("inf"),
            "__NAN": float("nan"),
        }
        # Per-block compile state.
        self._pending: Dict[Value, Tuple] = {}
        self._charges: List[Tuple[str, int, int, int]] = []
        self._steps: List[Tuple[List[str], Optional[int], bool]] = []
        # Function-wide deferred-charge accumulators: opcode -> local
        # name (insertion-ordered, so generated source is stable).
        self._acc_names: Dict[str, str] = {}
        self._has_loads = False
        self._has_stores = False

    # -- driver --------------------------------------------------------
    def emit(self) -> Tuple[str, Dict[str, object]]:
        self._assign_slots()
        self._analyze_cfg()
        self.code: Dict[BasicBlock, Tuple[List[str], Tuple]] = {}
        for block in self.fn.blocks:
            if block in self.reachable:
                self.code[block] = self._compile_block(block)
        arms = self._layout()
        source = self._assemble(arms)
        return source, self.ns

    def _assign_slots(self) -> None:
        fn = self.fn
        for arg in fn.args:
            self.slots[arg] = len(self.slots)
        uses = self.uses
        for block in fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, Call):
                    if inst.type.is_first_class():
                        self.slots[inst] = len(self.slots)
                elif not isinstance(inst.type, VoidType):
                    self.slots[inst] = len(self.slots)
                for op in inst.operands:
                    if isinstance(op, Instruction):
                        uses[op] = uses.get(op, 0) + 1

    def _analyze_cfg(self) -> None:
        fn = self.fn
        term_insts: Dict[BasicBlock, Optional[Instruction]] = {}
        for block in fn.blocks:
            term_insts[block] = next(
                (i for i in block.instructions
                 if isinstance(i, (Br, CondBr, Ret))),
                None,
            )
        self.term_insts = term_insts
        entry = fn.entry
        reachable = set()
        work = [entry]
        while work:
            b = work.pop()
            if b in reachable:
                continue
            reachable.add(b)
            t = term_insts[b]
            if isinstance(t, (Br, CondBr)):
                for s in t.successors:
                    if s not in reachable:
                        work.append(s)
        self.reachable = reachable
        preds: Dict[BasicBlock, int] = {b: 0 for b in reachable}
        for b in reachable:
            t = term_insts[b]
            if isinstance(t, (Br, CondBr)):
                for s in t.successors:
                    preds[s] += 1
        self.block_index = {b: i for i, b in enumerate(fn.blocks)}
        # Dispatch labels: the entry plus every join point.  Reachable
        # single-predecessor blocks are inlined at their unique branch
        # site instead (any single-pred cycle necessarily contains a
        # labeled block, so inlining terminates).
        self.labels = {entry}
        for b in reachable:
            if preds[b] >= 2:
                self.labels.add(b)

    # -- namespace bindings --------------------------------------------
    def _bind(self, value) -> str:
        name = f"__k{self._nbind}"
        self._nbind += 1
        self.ns[name] = value
        return name

    def _miss_lines(self, ca: str, cl: str, ch: str, ce: str,
                    size: int, write: bool) -> List[str]:
        """Inline-cache refill: an inlined ``Memory.locate`` fast path.

        The bisect invariant (``__allocs[__i]`` has the largest base
        <= the address) plus disjoint allocation ranges make the
        covering allocation unique, so when the inline probe fails --
        index below range, bounds exceeded, or freed -- ``__locate``
        cannot succeed either and is called purely to raise the
        precise :class:`MemoryFault` (null / use-after-free / straddle
        / unmapped) the tree-walker would raise.  Skipping the
        ``_hot`` update is fine: it is a pure cache.
        """
        return [
            f"__i = __br(__bases, __p) - 1",
            "if __i < 0:",
            f"    __locate(__p, {size}, {write})",
            f"{ca} = __allocs[__i]",
            f"{cl} = {ca}.base",
            f"{ch} = {cl} + {ca}.size - {size}",
            f"if __p > {ch} or {ca}.freed:",
            f"    {ca}, __o = __locate(__p, {size}, {write})",
            f"    {cl} = {ca}.base",
            f"    {ch} = {cl} + {ca}.size - {size}",
            "else:",
            f"    __o = __p - {cl}",
            f"{ce} = __E",
        ]

    def _epoch_lines(self) -> List[str]:
        """Refresh the block-local epoch copy ``__E`` if it may be
        stale.  The epoch only moves when a live allocation is
        unmapped, which generated code can only trigger through a call
        step -- so one read per block (plus one after each call)
        covers every access site in between."""
        if self._epoch_fresh:
            return []
        self._epoch_fresh = True
        return ["__E = __mem.epoch"]

    def _cache_data_lines(self, ca: str, cd: str, cp: str) -> List[str]:
        """Refill the per-site backing-storage caches after a miss."""
        return [
            f"__d = {ca}.data",
            "__t = type(__d)",
            f"{cd} = __d if __t is bytearray else None",
            f"{cp} = __d._pages if __t is __SP else None",
        ]

    def _new_site(self) -> Tuple[str, str, str, str, str, str]:
        """Fresh per-site inline-cache variables (module-level, so
        they persist across calls like the closure cells do):
        allocation, low bound, inclusive high bound (pre-adjusted by
        the access size so the hit test is one chained comparison),
        epoch stamp, the allocation's backing bytearray (None when it
        is not one), and its SparsePages page dict (None when it is
        not page-backed) -- the two backing caches select the direct
        fast path for their storage kind."""
        k = self._nsite
        self._nsite += 1
        names = (f"__ca{k}", f"__cl{k}", f"__ch{k}", f"__ce{k}",
                 f"__cd{k}", f"__cp{k}")
        self.ns[names[0]] = None
        self.ns[names[1]] = 0
        self.ns[names[2]] = -1
        self.ns[names[3]] = -1
        self.ns[names[4]] = None
        self.ns[names[5]] = None
        self._globals.extend(names)
        return names

    # -- operand resolution --------------------------------------------
    def _operand(self, value: Value) -> Tuple:
        pending = self._pending.pop(value, None)
        if pending is not None:
            return pending
        if isinstance(value, (Instruction, Argument)):
            slot = self.slots.get(value)
            if slot is None:
                name = self._bind(
                    _raiser0(VMError(f"use of undefined value %{value.name}")))
                return ("f", f"{name}()", 1)
            return ("s", slot)
        if isinstance(value, ConstantInt):
            return ("c", value.value)
        if isinstance(value, ConstantFloat):
            return ("c", value.value)
        if isinstance(value, (ConstantNull, ConstantZero, UndefValue)):
            return ("c", 0.0 if isinstance(value.type, FloatType) else 0)
        if isinstance(value, GlobalVariable):
            address = self.vm.global_addresses.get(value)
            if address is not None:
                return ("c", address)
            name = self._bind(_global_getter(self.vm, value))
            self._vm_binds.append((name, value))
            return ("f", f"{name}()", 1)
        if isinstance(value, Function):
            # Lazy, evaluation-order-preserving address assignment,
            # exactly like the closure tier.
            name = self._bind(value)
            return ("f", f"__fa({name})", 1)
        name = self._bind(_raiser0(VMError(f"cannot evaluate value {value!r}")))
        return ("f", f"{name}()", 1)

    def _expr(self, desc: Tuple) -> str:
        kind = desc[0]
        if kind == "s":
            return f"v{desc[1]}"
        if kind == "c":
            return self._const_expr(desc[1])
        return desc[1]

    def _const_expr(self, v) -> str:
        if isinstance(v, int):
            return repr(v) if v >= 0 else f"({v!r})"
        if isinstance(v, float):
            if v != v or v in (float("inf"), float("-inf")):
                return self._bind(v)
            r = repr(v)
            return f"({r})" if r.startswith("-") else r
        return self._bind(v)

    @staticmethod
    def _depth(desc: Tuple) -> int:
        return desc[2] if len(desc) > 2 else 0

    @staticmethod
    def _fusable(*descs: Tuple) -> bool:
        return all(d[0] in ("s", "c", "p") for d in descs)

    # -- step / charge bookkeeping -------------------------------------
    def _charge(self, opcode: str, cycles: int,
                loads: int = 0, stores: int = 0) -> None:
        self._charges.append((opcode, cycles, loads, stores))

    def _step(self, lines: List[str], raising: bool = False,
              call: bool = False) -> None:
        self._steps.append(
            (lines, len(self._charges) if raising else None, call))

    def _acc(self, opcode: str) -> str:
        """Local accumulator name for a batch opcode (allocated
        function-wide on first use)."""
        name = self._acc_names.get(opcode)
        if name is None:
            name = self._acc_names[opcode] = f"__o_{opcode}"
        return name

    def _assign(self, inst: Instruction, desc: Tuple) -> None:
        self._step([f"v{self.slots[inst]} = {self._expr(desc)}"])

    def _sink_value(self, inst: Instruction, desc: Tuple, operands) -> None:
        """Fuse a pure value into its single consumer, or materialize
        it into its local at the current position."""
        if (desc[0] in ("c", "p")
                and self.uses.get(inst, 0) == 1
                and self._fusable(*operands)
                and self._depth(desc) <= _MAX_FUSE_DEPTH):
            self._pending[inst] = desc
        else:
            self._assign(inst, desc)

    def _materialize_pending(self) -> None:
        for value, desc in self._pending.items():
            self._assign(value, desc)
        self._pending = {}

    @staticmethod
    def _aggregate(charges) -> Tuple[int, int, Tuple, int, int]:
        cyc = loads = stores = 0
        counts: Dict[str, int] = {}
        for op, c, ld, st in charges:
            cyc += c
            loads += ld
            stores += st
            counts[op] = counts.get(op, 0) + 1
        return cyc, len(charges), tuple(counts.items()), loads, stores

    def _finalize_block(self) -> List[str]:
        charges = self._charges
        out: List[str] = []
        if charges:
            # Deferred charging: the whole block batch goes into plain
            # locals (flushed once per frame by the function's
            # ``finally``); only ``__ins`` carries the running absolute
            # instruction count, for budget checks and callees.
            cyc, n, items, loads, stores = self._aggregate(charges)
            if cyc:
                out.append(f"__cy += {cyc}")
            out.append(f"__ins += {n}")
            for key, count in items:
                out.append(f"{self._acc(key)} += {count}")
            if loads:
                self._has_loads = True
                out.append(f"__lda += {loads}")
            if stores:
                self._has_stores = True
                out.append(f"__sta += {stores}")
        for lines, ci, is_call in self._steps:
            if ci is None:
                out.extend(lines)
                continue
            suffix = charges[ci:]
            cyc, n, items, loads, stores = self._aggregate(suffix)
            if is_call:
                # Publish the exact instruction count to the callee,
                # resync afterwards (the callee's own ``finally``
                # published its exact count, even on a raise).
                body = (["__stats.instructions = __ins"] + lines
                        + ["__ins = __stats.instructions"])
                handler = ["__ins = __stats.instructions"
                           + (f" - {n}" if n else "")]
            elif suffix:
                body = list(lines)
                handler = [f"__ins -= {n}"] if n else []
            else:
                out.extend(lines)
                continue
            if cyc:
                handler.append(f"__cy -= {cyc}")
            for key, count in items:
                handler.append(f"{self._acc(key)} -= {count}")
            if loads:
                handler.append(f"__lda -= {loads}")
            if stores:
                handler.append(f"__sta -= {stores}")
            out.append("try:")
            out.extend("    " + ln for ln in body)
            out.append("except BaseException:")
            out.extend("    " + ln for ln in handler)
            out.append("    raise")
        return out

    # -- per-block compilation -----------------------------------------
    def _compile_block(self, block: BasicBlock) -> Tuple[List[str], Tuple]:
        self._pending = {}
        self._charges = []
        self._steps = []
        self._epoch_fresh = False
        term_inst = self.term_insts[block]
        phis = block.phis()
        for _ in phis:
            # Charged with the block batch, after the moves ran --
            # matching the tree-walker's evaluate-then-charge order.
            self._charges.append(("phi", 0, 0, 0))
        for inst in block.instructions[len(phis):]:
            if inst is term_inst:
                self._charges.append(
                    (inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode], 0, 0))
                break
            self._compile_instruction(inst)
        # The terminator may consume a pending fused expression, so
        # resolve its operand before materializing the leftovers; its
        # expression still evaluates after them at runtime because the
        # branch line is emitted last.
        term = self._compile_terminator(block, term_inst)
        self._materialize_pending()
        return self._finalize_block(), term

    def _compile_instruction(self, inst) -> None:
        cls = type(inst)
        if cls is Load:
            self._charge("load", costs.INSTRUCTION_COSTS["load"], loads=1)
            self._compile_load(inst)
        elif cls is Store:
            self._charge("store", costs.INSTRUCTION_COSTS["store"], stores=1)
            self._compile_store(inst)
        elif cls is BinOp:
            self._charge(inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode])
            self._compile_binop(inst)
        elif cls is GEP:
            self._charge("gep", 1)
            self._compile_gep(inst)
        elif cls is ICmp:
            self._charge("icmp", 1)
            self._compile_icmp(inst)
        elif cls is FCmp:
            self._charge("fcmp", 2)
            self._compile_fcmp(inst)
        elif cls is Cast:
            self._charge(inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode])
            self._compile_cast(inst)
        elif cls is Select:
            self._charge("select", 1)
            self._compile_select(inst)
        elif cls is Call:
            self._compile_call(inst)
            # The callee may have unmapped live memory (frame pops,
            # munmap-style natives): the cached ``__E`` goes stale.
            self._epoch_fresh = False
        elif cls is Alloca:
            self._charge("alloca", 2)
            self._compile_alloca(inst)
        elif cls is Phi:
            # A phi past the leading run: the tree-walker dispatches
            # on it and raises, without charging it.
            name = self._bind(
                VMError(f"phi executed without predecessor: {inst}"))
            self._step([f"raise {name}"], raising=True)
        elif cls is Unreachable:
            name = self._bind(VMError("executed 'unreachable'"))
            self._step([f"raise {name}"], raising=True)
        else:
            name = self._bind(
                VMError(f"cannot interpret instruction: {inst}"))
            self._step([f"raise {name}"], raising=True)

    # -- arithmetic / comparisons / casts ------------------------------
    def _compile_binop(self, inst: BinOp) -> None:
        op = inst.opcode
        a = self._operand(inst.lhs)
        b = self._operand(inst.rhs)
        ty = inst.type
        if isinstance(ty, FloatType):
            if op in ("fadd", "fsub", "fmul", "fdiv", "frem"):
                self._compile_fbinop(inst, op, a, b)
            else:
                name = self._bind(VMError(f"int binop {op}"))
                self._step([f"raise {name}"], raising=True)
            return
        assert isinstance(ty, IntType)
        bits, mask = ty.bits, ty.mask
        if op in _DIV_OPS:
            # Division traps on zero -- always a standalone raising
            # statement, never fused or const-folded.
            f = _FunctionCompiler._int_binop_fn(op, bits, mask)
            name = self._bind(f)
            self._step(
                [f"v{self.slots[inst]} = "
                 f"{name}({self._expr(a)}, {self._expr(b)})"],
                raising=True)
            return
        if a[0] == "c" and b[0] == "c":
            f = _FunctionCompiler._int_binop_fn(op, bits, mask)
            if f is None:
                name = self._bind(VMError(f"int binop {op}"))
                self._step([f"raise {name}"], raising=True)
                return
            self._sink_value(inst, ("c", f(a[1], b[1])), (a, b))
            return
        ae, be = self._expr(a), self._expr(b)
        d = max(self._depth(a), self._depth(b)) + 1
        if op == "add":
            e = f"(({ae} + {be}) & {mask})"
        elif op == "sub":
            e = f"(({ae} - {be}) & {mask})"
        elif op == "mul":
            e = f"(({ae} * {be}) & {mask})"
        elif op == "and":
            e = f"({ae} & {be})"
        elif op == "or":
            e = f"({ae} | {be})"
        elif op == "xor":
            e = f"({ae} ^ {be})"
        elif op == "shl":
            e = f"(({ae} << ({be} % {bits})) & {mask})"
        elif op == "lshr":
            e = f"({ae} >> ({be} % {bits}))"
        elif op == "ashr":
            half = 1 << (bits - 1)
            e = (f"(((({ae} ^ {half}) - {half}) >> ({be} % {bits}))"
                 f" & {mask})")
        else:
            name = self._bind(VMError(f"int binop {op}"))
            self._step([f"raise {name}"], raising=True)
            return
        self._sink_value(inst, ("p", e, d), (a, b))

    def _compile_fbinop(self, inst: BinOp, op: str, a: Tuple, b: Tuple) -> None:
        if a[0] == "c" and b[0] == "c":
            f = _FunctionCompiler._float_binop_fn(op)
            self._sink_value(inst, ("c", f(a[1], b[1])), (a, b))
            return
        ae, be = self._expr(a), self._expr(b)
        d = max(self._depth(a), self._depth(b)) + 1
        if op in ("fadd", "fsub", "fmul"):
            sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
            self._sink_value(inst, ("p", f"({ae} {sym} {be})", d), (a, b))
            return
        # fdiv -> inf on /0, frem -> nan on /0; the divisor appears
        # twice in the guarded expression, so only atoms are embedded
        # directly -- compound divisors evaluate once into temporaries
        # (operand order preserved: lhs before rhs).
        if op == "fdiv":
            def make(x, y):
                return f"(({x} / {y}) if {y} != 0.0 else __INF)"
        else:
            def make(x, y):
                return f"(__fmod({x}, {y}) if {y} != 0.0 else __NAN)"
        if b[0] in ("s", "c"):
            self._sink_value(inst, ("p", make(ae, be), d), (a, b))
            return
        self._step([
            f"__x = {ae}",
            f"__y = {be}",
            f"v{self.slots[inst]} = {make('__x', '__y')}",
        ])

    def _compile_icmp(self, inst: ICmp) -> None:
        a = self._operand(inst.lhs)
        b = self._operand(inst.rhs)
        if a[0] == "c" and b[0] == "c":
            f = _FunctionCompiler._icmp_fn(inst)
            self._sink_value(inst, ("c", f(a[1], b[1])), (a, b))
            return
        pred = inst.predicate
        # Flag-recompare peephole: ``icmp ne/eq (flag), 0`` of an
        # already-0/1 inlined comparison passes the flag through (or
        # inverts its arms) instead of re-wrapping it -- the frontend's
        # ``bool != 0`` / ``!bool`` chains collapse to one test.
        if b == ("c", 0) and _is_flag_expr(a):
            if pred in ("ne", "ugt"):
                self._sink_value(inst, a, (a, b))
                return
            if pred == "eq":
                inner = _as_condition(a[1])
                self._sink_value(
                    inst, ("p", f"(0 if {inner} else 1)", self._depth(a)),
                    (a, b))
                return
        ae, be = self._expr(a), self._expr(b)
        d = max(self._depth(a), self._depth(b)) + 1
        sym = _ICMP_SYM[pred]
        if pred in _ICMP_SIGNED:
            # Branch-free signed compare: signed(x) < signed(y) iff
            # (x ^ half) <u (y ^ half) -- one XOR per operand instead
            # of two compare-and-subtract branches.
            ty = inst.lhs.type
            bits = ty.bits if isinstance(ty, IntType) else 64
            half = 1 << (bits - 1)
            e = f"(1 if ({ae} ^ {half}) {sym} ({be} ^ {half}) else 0)"
        else:
            e = f"(1 if {ae} {sym} {be} else 0)"
        self._sink_value(inst, ("p", e, d), (a, b))

    def _compile_fcmp(self, inst: FCmp) -> None:
        a = self._operand(inst.lhs)
        b = self._operand(inst.rhs)
        pred = inst.predicate
        if a[0] == "c" and b[0] == "c":
            self._sink_value(
                inst, ("c", FCMP_EVAL[pred](a[1], b[1])), (a, b))
            return
        ae, be = self._expr(a), self._expr(b)
        d = max(self._depth(a), self._depth(b)) + 1
        sym = _FCMP_SYM.get(pred)
        if sym is not None:
            e = f"(1 if {ae} {sym} {be} else 0)"
        else:
            name = self._bind(FCMP_EVAL[pred])
            e = f"{name}({ae}, {be})"
        self._sink_value(inst, ("p", e, d), (a, b))

    def _compile_cast(self, inst: Cast) -> None:
        op = inst.opcode
        src_ty = inst.value.type
        dst_ty = inst.type
        v = self._operand(inst.value)
        ve = self._expr(v)
        d = self._depth(v) + 1
        if op in ("fptosi", "fptoui"):
            # int(NaN/inf) raises -- standalone statement with exact
            # charge rollback.
            assert isinstance(dst_ty, IntType)
            self._step(
                [f"v{self.slots[inst]} = (int({ve}) & {dst_ty.mask})"],
                raising=True)
            return
        if v[0] == "c" and op in _PURE_CASTS:
            f = _FunctionCompiler._cast_fn(op, src_ty, dst_ty)
            if f is None:
                self._sink_value(inst, v, (v,))
            else:
                self._sink_value(inst, ("c", f(v[1])), (v,))
            return
        if op == "trunc":
            desc = ("p", f"({ve} & {dst_ty.mask})", d)
        elif op == "zext":
            self._sink_value(inst, v, (v,))
            return
        elif op == "sext":
            half = 1 << (src_ty.bits - 1)
            desc = ("p", f"((({ve} ^ {half}) - {half}) & {dst_ty.mask})", d)
        elif op == "ptrtoint":
            mask = dst_ty.mask if isinstance(dst_ty, IntType) else U64_MASK
            desc = ("p", f"({ve} & {mask})", d)
        elif op == "inttoptr":
            desc = ("p", f"({ve} & {U64_MASK})", d)
        elif op == "bitcast":
            f = _FunctionCompiler._cast_fn(op, src_ty, dst_ty)
            if f is None:
                self._sink_value(inst, v, (v,))
                return
            name = self._bind(f)
            desc = ("p", f"{name}({ve})", d)
        elif op in ("fptrunc", "fpext", "uitofp"):
            desc = ("p", f"float({ve})", d)
        elif op == "sitofp":
            half = 1 << (src_ty.bits - 1)
            desc = ("p", f"float(({ve} ^ {half}) - {half})", d)
        else:  # pragma: no cover - unknown cast opcode
            name = self._bind(VMError(f"cast {op}"))
            self._step([f"raise {name}"], raising=True)
            return
        if v[0] == "f":
            self._assign(inst, ("f", desc[1], d))
        else:
            self._sink_value(inst, desc, (v,))

    def _compile_select(self, inst: Select) -> None:
        c = self._operand(inst.condition)
        t = self._operand(inst.true_value)
        f = self._operand(inst.false_value)
        # Conditional expressions are lazy like the tree-walker: only
        # the taken arm is evaluated, condition first.
        e = (f"(({self._expr(t)}) if {_as_condition(self._expr(c))}"
             f" else ({self._expr(f)}))")
        d = max(self._depth(c), self._depth(t), self._depth(f)) + 1
        self._sink_value(inst, ("p", e, d), (c, t, f))

    # -- gep -----------------------------------------------------------
    def _compile_gep(self, inst: GEP) -> None:
        base = self._operand(inst.pointer)
        ty = inst.pointer.type
        assert isinstance(ty, PointerType)
        indices = inst.indices

        const_offset = 0
        var_terms: List[Tuple[Tuple, int, int]] = []
        bad = None

        def add_index(idx_value: Value, scale: int) -> None:
            nonlocal const_offset
            if isinstance(idx_value, ConstantInt):
                const_offset += idx_value.signed_value * scale
                return
            if isinstance(idx_value, (ConstantNull, ConstantZero, UndefValue)):
                return
            desc = self._operand(idx_value)
            ity = idx_value.type
            bits = ity.bits if isinstance(ity, IntType) else 64
            var_terms.append((desc, scale, 1 << (bits - 1)))

        add_index(indices[0], size_of(ty.pointee))
        current = ty.pointee
        for idx_value in indices[1:]:
            if isinstance(current, ArrayType):
                add_index(idx_value, size_of(current.element))
                current = current.element
            elif isinstance(current, StructType):
                assert isinstance(idx_value, ConstantInt)
                const_offset += struct_field_offset(current, idx_value.value)
                current = current.fields[idx_value.value]
            else:
                bad = current
                break
        if bad is not None:  # pragma: no cover - malformed IR
            name = self._bind(VMError(f"gep into non-aggregate {bad}"))
            self._step([f"raise {name}"], raising=True)
            return

        c = const_offset
        pure = self._fusable(base, *[dd for dd, _, _ in var_terms])
        if not var_terms:
            if base[0] == "c":
                self._sink_value(
                    inst, ("c", (base[1] + c) & U64_MASK), (base,))
                return
            be = self._expr(base)
            d = self._depth(base) + 1
            if c:
                e = f"(({be} + {self._const_expr(c)}) & {U64_MASK})"
            else:
                e = f"({be} & {U64_MASK})"
            self._sink_value(inst, ("p" if pure else "f", e, d), (base,))
            return
        sgn = [f"(({self._expr(dd)} ^ {half}) - {half})"
               for dd, _, half in var_terms]
        d = max([self._depth(base)]
                + [self._depth(dd) for dd, _, _ in var_terms]) + 1
        if pure:
            terms = "".join(f" + {s} * {scale}"
                            for s, (_, scale, _) in zip(sgn, var_terms))
            tail = f" + {self._const_expr(c)}" if c else ""
            e = f"(({self._expr(base)}{terms}{tail}) & {U64_MASK})"
            self._sink_value(inst, ("p", e, d), (base,))
            return
        # An "f" operand leaked in: materialize here, preserving the
        # closure tier's evaluation order (single-term shape evaluates
        # the index before the base; multi-term evaluates base first).
        dst = self.slots[inst]
        if len(var_terms) == 1:
            (_, scale, _) = var_terms[0]
            self._step([
                f"__x = {sgn[0]}",
                f"v{dst} = (({self._expr(base)} + __x * {scale}"
                f" + {self._const_expr(c)}) & {U64_MASK})",
            ])
            return
        lines = [f"__x = {self._expr(base)} + {self._const_expr(c)}"]
        for s, (_, scale, _) in zip(sgn, var_terms):
            lines.append(f"__x += {s} * {scale}")
        lines.append(f"v{dst} = __x & {U64_MASK}")
        self._step(lines)

    # -- memory --------------------------------------------------------
    def _compile_load(self, inst: Load) -> None:
        dst = self.slots[inst]
        ty = inst.type
        size = size_of(ty)
        pe = self._expr(self._operand(inst.pointer))
        ca, cl, ch, ce, cd, cp = self._new_site()
        # The cached high bound is pre-adjusted by the access size, so
        # a hit is one chained comparison; the cached ``cd``/``cp``
        # pair replaces a per-access attribute load plus type check
        # and selects the direct path for the backing storage.
        hit = (f"{ce} == __E and {cl} <= __p <= {ch}"
               f" and not {ca}.freed")
        miss = (self._miss_lines(ca, cl, ch, ce, size, write=False)
                + self._cache_data_lines(ca, cd, cp))
        pmask = SparsePages.PAGE_SIZE - 1
        pfit = SparsePages.PAGE_SIZE - size
        lines = self._epoch_lines() + [f"__p = {pe}"]
        if isinstance(ty, FloatType):
            fmt = "<f" if size == 4 else "<d"
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [
                f"if {cd} is not None:",
                f"    v{dst} = __lf{size}({cd}, __o)[0]",
                "else:",
                f"    __po = __o & {pmask}",
                f"    if {cp} is not None and __po <= {pfit}:",
                f"        __pg = {cp}.get(__o >> {SparsePages.PAGE_SHIFT})",
                f"        v{dst} = (__lf{size}(__pg, __po)[0]"
                f" if __pg is not None else 0.0)",
                "    else:",
                f"        v{dst} = __up({fmt!r},"
                f" {ca}.data[__o:__o + {size}])[0]",
            ]
        elif size == 1:
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [
                f"if {cd} is not None:",
                f"    v{dst} = {cd}[__o]",
                f"elif {cp} is not None:",
                f"    __pg = {cp}.get(__o >> {SparsePages.PAGE_SHIFT})",
                f"    v{dst} = __pg[__o & {pmask}]"
                f" if __pg is not None else 0",
                "else:",
                f"    v{dst} = {ca}.data[__o]",
            ]
        elif size in (2, 4, 8):
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [
                f"if {cd} is not None:",
                f"    v{dst} = __ld{size}({cd}, __o)[0]",
                "else:",
                f"    __po = __o & {pmask}",
                f"    if {cp} is not None and __po <= {pfit}:",
                f"        __pg = {cp}.get(__o >> {SparsePages.PAGE_SHIFT})",
                f"        v{dst} = (__ld{size}(__pg, __po)[0]"
                f" if __pg is not None else 0)",
                "    else:",
                f"        v{dst} = __fb({ca}.data[__o:__o + {size}],"
                f" 'little')",
            ]
        else:
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [f"v{dst} = __fb({ca}.data[__o:__o + {size}], 'little')"]
        self._step(lines, raising=True)

    def _compile_store(self, inst: Store) -> None:
        ty = inst.value.type
        size = size_of(ty)
        pe = self._expr(self._operand(inst.pointer))
        ve = self._expr(self._operand(inst.value))
        ca, cl, ch, ce, cd, cp = self._new_site()
        hit = (f"{ce} == __E and {cl} <= __p <= {ch}"
               f" and not {ca}.freed")
        miss = (self._miss_lines(ca, cl, ch, ce, size, write=True)
                + self._cache_data_lines(ca, cd, cp))
        pmask = SparsePages.PAGE_SIZE - 1
        pfit = SparsePages.PAGE_SIZE - size
        pshift = SparsePages.PAGE_SHIFT

        def page_store(write_line: str, slow_line: str) -> List[str]:
            # Single-page store fast path: materialize the page like
            # SparsePages._page would, then write through the bound
            # packer.  Page-straddling stores take the generic path.
            return [
                f"    __po = __o & {pmask}",
                f"    if {cp} is not None and __po <= {pfit}:",
                f"        __pg = {cp}.get(__o >> {pshift})",
                "        if __pg is None:",
                f"            __pg = bytearray({SparsePages.PAGE_SIZE})",
                f"            {cp}[__o >> {pshift}] = __pg",
                f"        {write_line}",
                "    else:",
                f"        {slow_line}",
            ]

        # Tree-walker order: pointer, then value, then the int()
        # conversion (which may raise on NaN), then address resolution.
        lines = self._epoch_lines() + [f"__p = {pe}"]
        if isinstance(ty, FloatType):
            fmt = "<f" if size == 4 else "<d"
            lines += [f"__v = {ve}"]
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [
                f"if {cd} is not None:",
                f"    __sf{size}({cd}, __o, __v)",
                "else:",
            ]
            lines += page_store(
                f"__sf{size}(__pg, __po, __v)",
                f"{ca}.data[__o:__o + {size}] = __pk({fmt!r}, __v)",
            )
        elif size == 1:
            lines += [f"__v = int({ve}) & 255"]
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [
                f"if {cd} is not None:",
                f"    {cd}[__o] = __v",
                f"elif {cp} is not None:",
                f"    __pg = {cp}.get(__o >> {pshift})",
                "    if __pg is None:",
                f"        __pg = bytearray({SparsePages.PAGE_SIZE})",
                f"        {cp}[__o >> {pshift}] = __pg",
                f"    __pg[__o & {pmask}] = __v",
                "else:",
                f"    {ca}.data[__o] = __v",
            ]
        elif size in (2, 4, 8):
            mask = (1 << (8 * size)) - 1
            # int() is the potential raise point (NaN) and must come
            # before address resolution like the tree-walker's order;
            # the byte serialization itself cannot fail after masking,
            # so it may sit on the fast path.
            lines += [f"__v = int({ve}) & {mask}"]
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [
                f"if {cd} is not None:",
                f"    __st{size}({cd}, __o, __v)",
                "else:",
            ]
            lines += page_store(
                f"__st{size}(__pg, __po, __v)",
                f"{ca}.data[__o:__o + {size}] = "
                f"__v.to_bytes({size}, 'little')",
            )
        else:
            mask = (1 << (8 * size)) - 1
            lines += [f"__v = (int({ve}) & {mask}).to_bytes({size}, 'little')"]
            lines += [f"if {hit}:", f"    __o = __p - {cl}", "else:"]
            lines += ["    " + ln for ln in miss]
            lines += [f"{ca}.data[__o:__o + {size}] = __v"]
        self._step(lines, raising=True)

    def _compile_alloca(self, inst: Alloca) -> None:
        dst = self.slots[inst]
        size = size_of(inst.allocated_type)
        name = inst.name
        if inst.count is None:
            line = f"v{dst} = __alloca({size}, {name!r}).base"
        else:
            ce = self._expr(self._operand(inst.count))
            line = f"v{dst} = __alloca({size} * {ce}, {name!r}).base"
        self._step([line], raising=True)

    # -- calls ---------------------------------------------------------
    def _compile_call(self, inst: Call) -> None:
        dst = self.slots[inst] if inst.type.is_first_class() else None
        arg_exprs = [self._expr(self._operand(a)) for a in inst.args]
        tgt = f"v{dst} = " if dst is not None else ""
        callee = inst.callee

        if isinstance(callee, Function):
            fn = callee
            if fn.native:
                site = inst.meta.get("mi_site")
                impl = self.vm.natives.get(fn.name)
                if impl is None:
                    # No implementation registered at compile time:
                    # call_function raises (or resolves a late
                    # registration) exactly like the tree-walker.
                    args = list(arg_exprs)
                    if site is not None:
                        args.append(self._bind(site))
                    fname = self._bind(fn)
                    self._step(
                        [f"{tgt}__call({fname}, [{', '.join(args)}])"],
                        raising=True, call=True)
                    return
                key = f"native:{fn.name}"
                cost = costs.call_cost(fn.name)
                args = list(arg_exprs)
                if site is not None:
                    args.append(self._bind(site))
                iname = self._bind(impl)
                self._step([
                    f"__args = [{', '.join(args)}]",
                    f"__stats.cycles += {cost}",
                    "__stats.instructions += 1",
                    f"__oc[{key!r}] += 1",
                    "__stats.calls += 1",
                    f"{tgt}{iname}(__vm, __args)",
                ], raising=True, call=True)
                return
            # Direct call of a defined function or declaration: the
            # static "call" charge joins the batch.  Defined functions
            # take the ``__dc`` trampoline, which skips the dispatch
            # prologue of ``call_function`` (statically dead here).
            self._charge("call", costs.INSTRUCTION_COSTS["call"])
            fname = self._bind(fn)
            helper = "__call" if fn.is_declaration else "__dc"
            self._step(
                [f"{tgt}{helper}({fname}, [{', '.join(arg_exprs)}])"],
                raising=True, call=True)
            return

        # Indirect call: whether the "call" charge applies depends on
        # the runtime callee.
        ce = self._expr(self._operand(callee))
        site = inst.meta.get("mi_site")
        call_cost = costs.INSTRUCTION_COSTS["call"]
        lines = [
            f"__a = {ce}",
            "__fx = __fba.get(__a)",
            "if __fx is None:",
            "    raise __MemoryFault(__a, 0,"
            " 'indirect call to non-function address')",
            f"__args = [{', '.join(arg_exprs)}]",
        ]
        if site is not None:
            sname = self._bind(site)
            lines += [
                "if __fx.native:",
                f"    __args.append({sname})",
                "else:",
                f"    __charge('call', {call_cost})",
            ]
        else:
            lines += [
                "if not __fx.native:",
                f"    __charge('call', {call_cost})",
            ]
        lines.append(f"{tgt}__call(__fx, __args)")
        self._step(lines, raising=True, call=True)

    # -- control flow --------------------------------------------------
    def _compile_terminator(self, block: BasicBlock,
                            inst: Optional[Instruction]) -> Tuple:
        if isinstance(inst, Br):
            return ("br", inst.target)
        if isinstance(inst, CondBr):
            c = self._operand(inst.condition)
            return ("cond", self._expr(c), inst.true_block, inst.false_block)
        if isinstance(inst, Ret):
            if inst.value is None:
                return ("ret", None)
            return ("ret", self._expr(self._operand(inst.value)))
        # No terminator: the tree-walker runs off the end of the block
        # and raises without charging anything further.
        name = self._bind(VMError(
            f"block {block.name} fell through without terminator"))
        return ("raise", name)

    def _moves_lines(self, pred: Optional[BasicBlock],
                     succ: BasicBlock) -> List[str]:
        phis = succ.phis()
        if not phis:
            return []
        if pred is None:
            # Function entry into a block with phis.
            name = self._bind(VMError(
                f"phi executed without predecessor: {phis[0]}"))
            return [f"raise {name}"]
        exprs: List[str] = []
        dsts: List[str] = []
        for phi in phis:
            try:
                incoming = phi.incoming_value_for(pred)
            except KeyError as exc:
                name = self._bind(KeyError(*exc.args))
                return [f"raise {name}"]
            exprs.append(self._expr(self._operand(incoming)))
            dsts.append(f"v{self.slots[phi]}")
        if len(phis) == 1:
            return [f"{dsts[0]} = {exprs[0]}"]
        # Tuple assignment: every incoming value is read before any
        # phi local is written, so swap cycles resolve in parallel.
        return [f"{', '.join(dsts)} = {', '.join(exprs)}"]

    # -- layout --------------------------------------------------------
    def _layout(self) -> List[Tuple[int, List[str]]]:
        arms: List[Tuple[int, List[str]]] = []
        emitted = set()
        self._queue = [b for b in self.fn.blocks
                       if b in self.labels and b in self.reachable]
        self._stack: set = set()
        while self._queue:
            block = self._queue.pop(0)
            if block in emitted:
                continue
            emitted.add(block)
            lines: List[str] = []
            self._layout_block(block, 1, lines)
            arms.append((self.block_index[block], lines))
        return arms

    def _layout_block(self, block: BasicBlock, depth: int,
                      out: List[str]) -> None:
        out.append(f"# {block.name}:")
        body_lines, term = self.code[block]
        out.extend(body_lines)
        kind = term[0]
        if kind == "ret":
            out.append(f"return {term[1]}" if term[1] is not None
                       else "return None")
        elif kind == "raise":
            out.append(f"raise {term[1]}")
        elif kind == "br":
            self._transition(block, term[1], depth, out)
        else:
            _, cond, tb, fb = term
            out.append(f"if {_as_condition(cond)}:")
            sub: List[str] = []
            self._transition(block, tb, depth, sub)
            out.extend("    " + ln for ln in sub)
            out.append("else:")
            sub = []
            self._transition(block, fb, depth, sub)
            out.extend("    " + ln for ln in sub)

    def _transition(self, pred: BasicBlock, succ: BasicBlock, depth: int,
                    out: List[str]) -> None:
        # Same order as CompiledFunction.execute: terminator decided,
        # then budget check, then phi moves, then the next block.
        out.append(_BUDGET_CHECK)
        out.append(_BUDGET_RAISE)
        moves = self._moves_lines(pred, succ)
        out.extend(moves)
        if moves and moves[-1].startswith("raise "):
            return
        if (succ in self.labels or depth >= _MAX_INLINE_DEPTH
                or succ in self._stack):
            if succ not in self.labels:
                self.labels.add(succ)
                self._queue.append(succ)
            out.append(f"__b = {self.block_index[succ]}")
            out.append("continue")
        else:
            self._stack.add(succ)
            self._layout_block(succ, depth + 1, out)
            self._stack.discard(succ)

    # -- assembly ------------------------------------------------------
    def _assemble(self, arms: List[Tuple[int, List[str]]]) -> str:
        fn = self.fn
        ind = "    "
        hot = ("__stats", "__oc", "__mem", "__locate")
        params = [f"v{self.slots[a]}" for a in fn.args]
        sig = ", ".join(params + ["*"] + [f"{h}={h}" for h in hot])
        lines = [
            f"# codegen tier source for function @{fn.name}",
            f"def __run({sig}):",
        ]
        for i in range(0, len(self._globals), 8):
            lines.append(ind + "global " + ", ".join(self._globals[i:i + 8]))
        init = self._slots_needing_init()
        for i in range(0, len(init), 16):
            chunk = " = ".join(f"v{s}" for s in init[i:i + 16])
            lines.append(f"{ind}{chunk} = None")
        lines.append(ind + "__maxi = __vm.max_instructions")
        lines.append(ind + "if __maxi is None:")
        lines.append(ind * 2 + "__maxi = 9223372036854775807")
        # Deferred-charge locals: cycles, opcode counts, and memory-op
        # counts accumulate in plain locals and are flushed once, in
        # the ``finally`` below, at frame exit (return or exception);
        # ``__ins`` carries the absolute instruction count so budget
        # checks and callees always see an exact value.
        lines.append(ind + "__ins = __stats.instructions")
        accs = ["__cy"] + list(self._acc_names.values())
        if self._has_loads:
            accs.append("__lda")
        if self._has_stores:
            accs.append("__sta")
        for i in range(0, len(accs), 8):
            lines.append(ind + " = ".join(accs[i:i + 8]) + " = 0")
        for ln in self._moves_lines(None, fn.entry):
            lines.append(ind + ln)
        lines.append(ind + f"__b = {self.block_index[fn.entry]}")
        lines.append(ind + "try:")
        lines.append(ind * 2 + "while True:")
        first = True
        for idx, body in arms:
            lines.append(
                ind * 3 + f"{'if' if first else 'elif'} __b == {idx}:")
            first = False
            lines.extend(ind * 4 + ln for ln in body)
        lines.append(ind * 3 + "else:")  # pragma: no cover - unreachable
        lines.append(ind * 4 + "raise __VMError('codegen dispatch out of"
                               " range')")
        lines.append(ind + "finally:")
        lines.append(ind * 2 + "__stats.instructions = __ins")
        lines.append(ind * 2 + "__stats.cycles += __cy")
        if self._has_loads:
            lines.append(ind * 2 + "__stats.loads += __lda")
        if self._has_stores:
            lines.append(ind * 2 + "__stats.stores += __sta")
        for opcode, name in self._acc_names.items():
            # Guarded: ``Counter[k] += 0`` would insert a zero-count
            # key the tree-walker never creates.
            lines.append(ind * 2 + f"if {name}:")
            lines.append(ind * 3 + f"__oc[{opcode!r}] += {name}")
        return "\n".join(lines) + "\n"

    def _slots_needing_init(self) -> List[int]:
        """Locals that could be read before assignment on some path
        (cross-block uses, or in-block use before the defining
        instruction): pre-set to None so they behave like the closure
        tier's ``[None] * nslots`` frame instead of raising
        UnboundLocalError."""
        fn = self.fn
        def_block: Dict[Value, BasicBlock] = {}
        for block in fn.blocks:
            for inst in block.instructions:
                if inst in self.slots:
                    def_block[inst] = block
        need = set()
        for block in fn.blocks:
            seen = set()
            for inst in block.instructions:
                for op in inst.operands:
                    if (isinstance(op, Instruction) and op in self.slots
                            and (def_block.get(op) is not block
                                 or op not in seen)):
                        need.add(self.slots[op])
                seen.add(inst)
        return sorted(need)

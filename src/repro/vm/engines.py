"""Canonical registry of VM execution engines.

Every consumer of the engine axis -- the :class:`VirtualMachine`
constructor, CLI argument builders, the campaign instance model and
the differential-fuzzing matrix -- derives its choices from this
tuple, so adding an engine is a one-line change here plus the engine
implementation itself.

All engines are bound by the same contract: field-for-field identical
:class:`~repro.vm.stats.RuntimeStats` on every program, enforced by
``tests/vm/test_engine_differential.py`` and the fuzz oracle.
"""

#: Selectable engines, fastest-first default ordering is *not* implied;
#: ``compiled`` stays the default for compatibility.
ENGINES = ("compiled", "interp", "codegen")

#: One-line help per engine, used by CLI ``--engine`` builders.
ENGINE_DESCRIPTIONS = {
    "compiled": "closure-compiled tier (default)",
    "interp": "reference tree-walking interpreter (slow)",
    "codegen": "generated-Python-source tier (fastest)",
}

"""Closure-compilation tier of the VM.

The tree-walking interpreter in :mod:`.interpreter` re-dispatches on
``type(inst)`` for every executed instruction and re-resolves every
operand through an ``isinstance`` chain.  This module translates each
IR function *once* (at first call) into flat lists of Python closures
over pre-resolved state, while keeping :class:`RuntimeStats`
**bit-identical** to the tree-walker:

* values live in integer-indexed slots of a flat ``list`` frame
  instead of a ``Dict[Value, object]``;
* constants (including loaded global addresses) are folded to plain
  ints/floats at compile time;
* ``icmp``/``fcmp``/binops are specialized to a single pre-built
  operator closure per predicate/opcode;
* phi nodes become per-predecessor parallel move lists, precomputed
  per CFG edge;
* single-use side-effect-free instructions (binops, compares, casts,
  ``gep``, ``select``) are *fused* into their consumer as expression
  getters, eliminating the intermediate frame traffic entirely;
* loads and stores carry a per-site inline cache of the last
  allocation they hit, validated by :attr:`Memory.epoch`;
* cycle/instruction/opcode charges are pre-aggregated per basic block
  and applied in one batch at block entry.

Determinism contract (why batched charging is safe for cached
results): the only points where statistics are observable are the end
of a run and the moment a :class:`MemoryFault` /
``MemSafetyViolation`` / ``ProgramAbort`` / exit request escapes the
VM -- native helpers only ever *add* to the counters, none reads them.
Every step that can raise (loads, stores, allocas, integer division,
every call) is therefore wrapped with a *static rollback*: on the way
out of the block it subtracts the pre-computed charges of exactly the
not-yet-executed instructions, leaving the counters equal --
field-for-field, including ``opcode_counts`` keys -- to what the
tree-walker would have charged at the same raise point.  Fused
instructions shift only *when* a pure expression is computed, never
whether or what is charged.

Function addresses are still assigned lazily at first *evaluation*
(not at compile time), so indirect-call address assignment order --
and hence any program-visible pointer value -- matches the
tree-walker; operands that evaluate a function or unloaded-global
address are never fused or folded.
"""

from __future__ import annotations

import math
import operator
import struct
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import MemoryFault, VMError
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCMP_EVAL,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, GlobalVariable
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    size_of,
    struct_field_offset,
)
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantZero,
    UndefValue,
    Value,
)
from . import costs

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import VirtualMachine

U64_MASK = (1 << 64) - 1

_DIV_OPS = frozenset(("sdiv", "udiv", "srem", "urem"))
#: Casts that cannot raise (``fptosi``/``fptoui`` blow up on NaN/inf).
_PURE_CASTS = frozenset((
    "trunc", "zext", "sext", "ptrtoint", "inttoptr", "bitcast",
    "fptrunc", "fpext", "sitofp", "uitofp",
))

_ICMP_UNSIGNED_OPS = {
    "eq": operator.eq, "ne": operator.ne,
    "ult": operator.lt, "ule": operator.le,
    "ugt": operator.gt, "uge": operator.ge,
}
_ICMP_SIGNED_OPS = {
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
}


def _raiser(exc: Exception) -> Callable:
    """A step that raises ``exc`` when (and only when) executed --
    compile-time problems surface at the same execution point where
    the tree-walker would raise them."""

    def step(frame):
        raise exc

    return step


def _unroll(stats, oc, rb) -> None:
    """Cold path of an inline rollback cell: subtract the batched
    charges of the instructions after the raising step (``rb`` is
    ``[cycles, instructions, opcode_items, loads, stores, mi_cycles]``,
    filled in once the block's charge list is complete;
    ``mi_cycles`` is nonzero only under profiling)."""
    stats.cycles -= rb[0]
    stats.instructions -= rb[1]
    for key, count in rb[2]:
        left = oc[key] - count
        if left:
            oc[key] = left
        else:
            del oc[key]
    stats.loads -= rb[3]
    stats.stores -= rb[4]
    if rb[5]:
        stats.instrumentation_cycles -= rb[5]


def _rollback(inner: Callable, stats, oc, cyc: int, n: int,
              items: Tuple, loads: int, stores: int,
              micyc: int = 0) -> Callable:
    """Wrap a potentially-raising step: on the way out, un-charge the
    statically batched charges of the instructions after it, restoring
    the exact tree-walker counter state at the raise point."""

    def step(frame):
        try:
            inner(frame)
        except BaseException:
            stats.cycles -= cyc
            stats.instructions -= n
            for key, count in items:
                left = oc[key] - count
                if left:
                    oc[key] = left
                else:
                    # The tree-walker never creates zero entries, so
                    # drop exhausted keys to stay key-identical.
                    del oc[key]
            if loads:
                stats.loads -= loads
            if stores:
                stats.stores -= stores
            if micyc:
                stats.instrumentation_cycles -= micyc
            raise

    return step


class CompiledFunction:
    """One IR function translated to closure lists, bound to one VM."""

    __slots__ = ("vm", "fn", "nslots", "arg_slots", "entry_edge", "retcell")

    def __init__(self, vm: "VirtualMachine", fn: Function):
        self.vm = vm
        self.fn = fn
        self.retcell: List[object] = [None]
        _FunctionCompiler(self, vm, fn).build()

    def execute(self, args: List) -> Optional[object]:
        vm = self.vm
        stats = vm.stats
        maxi = vm.max_instructions
        frame: List[object] = [None] * self.nslots
        for slot, value in zip(self.arg_slots, args):
            frame[slot] = value
        retcell = self.retcell
        moves, body, term = self.entry_edge
        while True:
            if moves is not None:
                moves(frame)
            for step in body:
                step(frame)
            nxt = term(frame)
            if nxt is None:
                # The ret closure stashed the return value immediately
                # before we read it back; nothing can run in between.
                return retcell[0]
            if maxi is not None and stats.instructions > maxi:
                raise VMError("instruction budget exceeded (infinite loop?)")
            moves, body, term = nxt


class _FunctionCompiler:
    """Builds the closure lists for one function.

    Split from :class:`CompiledFunction` so the (sizeable) compile-time
    state dies once compilation finishes; only the closures survive.

    Operand descriptors are ``("s", slot)`` for frame slots, ``("c",
    value)`` for compile-time constants, ``("p", getter)`` for fused
    pure expressions, and ``("f", getter)`` for impure getters
    (function addresses, unloaded globals, undefined values).
    """

    def __init__(self, out: CompiledFunction, vm: "VirtualMachine", fn: Function):
        self.out = out
        self.vm = vm
        self.fn = fn
        self.stats = vm.stats
        self.slots: Dict[Value, int] = {}
        self.uses: Dict[Value, int] = {}
        # Per-block compile state.
        self._pending: Dict[Value, Tuple] = {}
        self._gep_parts: Dict[Value, Tuple] = {}
        self._charges: List[Tuple[str, int, int, int, bool]] = []
        self._wraps: List[Tuple[int, int]] = []
        self._rb_cells: List[Tuple[List, int]] = []

    # -- driver --------------------------------------------------------
    def build(self) -> None:
        fn = self.fn
        for arg in fn.args:
            self.slots[arg] = len(self.slots)
        uses = self.uses
        for block in fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, Call):
                    if inst.type.is_first_class():
                        self.slots[inst] = len(self.slots)
                elif not isinstance(inst.type, VoidType):
                    self.slots[inst] = len(self.slots)
                for op in inst.operands:
                    if isinstance(op, Instruction):
                        uses[op] = uses.get(op, 0) + 1

        # The tree-walker breaks out of a block at the *first*
        # terminator it executes, so later instructions are dead.
        term_insts: Dict[BasicBlock, Optional[Instruction]] = {}
        for block in fn.blocks:
            term_insts[block] = next(
                (i for i in block.instructions if isinstance(i, (Br, CondBr, Ret))),
                None,
            )

        # Every CFG edge (plus the function entry) gets a mutable edge
        # record [moves, body, term]; terminators return these records.
        # Records are created first so terminator closures can capture
        # them, and filled once every block is compiled.
        edges: Dict[Tuple[Optional[BasicBlock], BasicBlock], List] = {}
        entry = fn.entry
        edges[(None, entry)] = [None, None, None]
        for block in fn.blocks:
            term_inst = term_insts[block]
            if isinstance(term_inst, (Br, CondBr)):
                for succ in term_inst.successors:
                    edges.setdefault((block, succ), [None, None, None])

        bodies: Dict[BasicBlock, List[Callable]] = {}
        terms: Dict[BasicBlock, Callable] = {}
        for block in fn.blocks:
            self._pending = {}
            self._gep_parts = {}
            self._charges = []
            self._wraps = []
            self._rb_cells = []
            term_inst = term_insts[block]
            body: List[Callable] = []
            phis = block.phis()
            for phi in phis:
                # Phi resolution is charged with the block batch (the
                # batch applies after the moves ran, matching the
                # tree-walker's evaluate-then-charge order).  Phis cost
                # 0 cycles, so no mi attribution either way.
                self._charges.append(("phi", 0, 0, 0, False))
            for inst in block.instructions[len(phis):]:
                if inst is term_inst:
                    self._charges.append(
                        (inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode],
                         0, 0, False))
                    break
                self._compile_instruction(inst, body)
            # The terminator may consume a pending fused expression, so
            # compile it before materializing the leftovers.
            terms[block] = self._compile_terminator(block, term_inst, edges)
            self._materialize_pending(body)
            self._finalize_block(body)
            bodies[block] = body

        for (pred, succ), record in edges.items():
            record[0] = self._compile_moves(pred, succ)
            record[1] = bodies[succ]
            record[2] = terms[succ]

        self.out.nslots = max(len(self.slots), 1)
        self.out.arg_slots = [self.slots[a] for a in fn.args]
        self.out.entry_edge = edges[(None, entry)]

    # -- charge bookkeeping --------------------------------------------
    def _charge(self, opcode: str, cycles: int,
                loads: int = 0, stores: int = 0, mi: bool = False) -> None:
        self._charges.append((opcode, cycles, loads, stores, mi))

    def _emit_raising(self, body: List[Callable], step: Callable) -> None:
        """Emit a step that may raise; it will be wrapped with a
        rollback of every *already-recorded-after-it* static charge."""
        self._wraps.append((len(body), len(self._charges)))
        body.append(step)

    def _new_rb(self) -> List:
        """Inline-rollback cell for steps that carry their own
        try/except (loads, stores, native calls): same semantics as
        :meth:`_emit_raising`, minus the wrapper call per execution."""
        rb = [0, 0, (), 0, 0, 0]
        self._rb_cells.append((rb, len(self._charges)))
        return rb

    @staticmethod
    def _aggregate(charges) -> Tuple[int, int, Tuple, int, int, int]:
        cyc = loads = stores = micyc = 0
        counts: Dict[str, int] = {}
        for op, c, ld, st, mi in charges:
            cyc += c
            loads += ld
            stores += st
            if mi:
                micyc += c
            counts[op] = counts.get(op, 0) + 1
        return cyc, len(charges), tuple(counts.items()), loads, stores, micyc

    def _finalize_block(self, body: List[Callable]) -> None:
        charges = self._charges
        stats = self.stats
        oc = stats.opcode_counts
        # Resolved at compile time: unprofiled runs get the exact same
        # closures (and therefore bit-identical statistics) as before
        # the profiling layer existed.
        profile = stats.profile
        for body_index, charge_index in self._wraps:
            suffix = charges[charge_index:]
            if not suffix:
                continue
            cyc, n, items, loads, stores, micyc = self._aggregate(suffix)
            body[body_index] = _rollback(
                body[body_index], stats, oc, cyc, n, items, loads, stores,
                micyc if profile else 0)
        for rb, charge_index in self._rb_cells:
            suffix = charges[charge_index:]
            if suffix:
                rb[0], rb[1], rb[2], rb[3], rb[4], micyc = \
                    self._aggregate(suffix)
                if profile:
                    rb[5] = micyc
        if not charges:
            return
        cyc, n, items, loads, stores, micyc = self._aggregate(charges)
        if profile and micyc:
            # Instrumentation-owned share of this block's static
            # charges; the same sum the tree-walker accumulates
            # per-instruction from the ``mi`` metadata.
            def batch(frame):
                stats.cycles += cyc
                stats.instructions += n
                for key, count in items:
                    oc[key] += count
                stats.loads += loads
                stats.stores += stores
                stats.instrumentation_cycles += micyc
            body.insert(0, batch)
            return
        if len(items) == 1:
            key, count = items[0]
            if loads or stores:
                def batch(frame):
                    stats.cycles += cyc
                    stats.instructions += n
                    oc[key] += count
                    stats.loads += loads
                    stats.stores += stores
            else:
                def batch(frame):
                    stats.cycles += cyc
                    stats.instructions += n
                    oc[key] += count
        elif loads or stores:
            def batch(frame):
                stats.cycles += cyc
                stats.instructions += n
                for key, count in items:
                    oc[key] += count
                stats.loads += loads
                stats.stores += stores
        else:
            def batch(frame):
                stats.cycles += cyc
                stats.instructions += n
                for key, count in items:
                    oc[key] += count
        body.insert(0, batch)

    # -- operand resolution --------------------------------------------
    def _operand(self, value: Value) -> Tuple:
        pending = self._pending.pop(value, None)
        if pending is not None:
            self._gep_parts.pop(value, None)
            return pending
        if isinstance(value, (Instruction, Argument)):
            slot = self.slots.get(value)
            if slot is None:
                name = value.name

                def broken(frame):
                    raise VMError(f"use of undefined value %{name}")

                return ("f", broken)
            return ("s", slot)
        if isinstance(value, ConstantInt):
            return ("c", value.value)
        if isinstance(value, ConstantFloat):
            return ("c", value.value)
        if isinstance(value, (ConstantNull, ConstantZero, UndefValue)):
            return ("c", 0.0 if isinstance(value.type, FloatType) else 0)
        if isinstance(value, GlobalVariable):
            address = self.vm.global_addresses.get(value)
            if address is not None:
                return ("c", address)
            # Not loaded yet (direct call_function use before run()):
            # fall back to the tree-walker's runtime lookup.
            vm = self.vm

            def global_getter(frame):
                try:
                    return vm.global_addresses[value]
                except KeyError:
                    raise VMError(f"global @{value.name} not loaded") from None

            return ("f", global_getter)
        if isinstance(value, Function):
            # Lazy, evaluation-order-preserving address assignment:
            # folding at compile time would assign addresses in a
            # different order than the tree-walker.
            vm = self.vm

            def function_getter(frame):
                return vm.function_address(value)

            return ("f", function_getter)
        return ("f", _raiser(VMError(f"cannot evaluate value {value!r}")))

    @staticmethod
    def _getter(desc: Tuple) -> Callable:
        kind, payload = desc
        if kind == "s":
            slot = payload
            return lambda frame: frame[slot]
        if kind == "c":
            const = payload
            return lambda frame: const
        return payload  # "p" / "f"

    @staticmethod
    def _fusable(*descs: Tuple) -> bool:
        """Only slot/const/pure operands may be deferred: "f" getters
        (function addresses) have observable evaluation order."""
        return all(d[0] in ("s", "c", "p") for d in descs)

    def _use_once(self, inst: Instruction) -> bool:
        return self.uses.get(inst, 0) == 1

    def _sink(self, inst: Instruction, body: List[Callable], desc: Tuple) -> None:
        """Fuse a pure value into its (single) consumer, or emit a
        step materializing it into its frame slot."""
        if self._use_once(inst):
            self._pending[inst] = desc
        else:
            body.append(self._store_step(self.slots[inst], desc))

    @staticmethod
    def _store_step(dst: int, desc: Tuple) -> Callable:
        kind, payload = desc
        if kind == "s":
            src = payload

            def step(frame):
                frame[dst] = frame[src]
        elif kind == "c":
            const = payload

            def step(frame):
                frame[dst] = const
        else:
            g = payload

            def step(frame):
                frame[dst] = g(frame)
        return step

    # -- shape-specialized closure factories ---------------------------
    @staticmethod
    def _bin_desc(a: Tuple, b: Tuple, f: Callable) -> Tuple:
        """Value descriptor for ``f(a, b)`` -- folds const/const.
        Every operand shape gets its own closure so slot and constant
        operands are read inline instead of through a getter call
        (payloads of "p"/"f" descriptors already are getters)."""
        ak, av = a
        bk, bv = b
        if ak == "s":
            if bk == "s":
                return ("p", lambda frame: f(frame[av], frame[bv]))
            if bk == "c":
                return ("p", lambda frame: f(frame[av], bv))
            return ("p", lambda frame: f(frame[av], bv(frame)))
        if ak == "c":
            if bk == "s":
                return ("p", lambda frame: f(av, frame[bv]))
            if bk == "c":
                return ("c", f(av, bv))
            return ("p", lambda frame: f(av, bv(frame)))
        if bk == "s":
            return ("p", lambda frame: f(av(frame), frame[bv]))
        if bk == "c":
            return ("p", lambda frame: f(av(frame), bv))
        return ("p", lambda frame: f(av(frame), bv(frame)))

    @staticmethod
    def _bin_closure(dst: int, a: Tuple, b: Tuple, f: Callable) -> Callable:
        """frame[dst] = f(a, b) with the operand shapes inlined."""
        ak, av = a
        bk, bv = b
        if ak == "s":
            if bk == "s":
                def step(frame):
                    frame[dst] = f(frame[av], frame[bv])
            elif bk == "c":
                def step(frame):
                    frame[dst] = f(frame[av], bv)
            else:
                def step(frame):
                    frame[dst] = f(frame[av], bv(frame))
        elif ak == "c":
            if bk == "s":
                def step(frame):
                    frame[dst] = f(av, frame[bv])
            else:
                bg = _FunctionCompiler._getter(b)

                def step(frame):
                    frame[dst] = f(av, bg(frame))
        else:
            if bk == "s":
                def step(frame):
                    frame[dst] = f(av(frame), frame[bv])
            elif bk == "c":
                def step(frame):
                    frame[dst] = f(av(frame), bv)
            else:
                def step(frame):
                    frame[dst] = f(av(frame), bv(frame))
        return step

    # -- instruction dispatch ------------------------------------------
    def _compile_instruction(self, inst, body: List[Callable]) -> None:
        cls = type(inst)
        mi = "mi" in inst.meta
        if cls is Load:
            self._charge("load", costs.INSTRUCTION_COSTS["load"], loads=1,
                         mi=mi)
            body.append(self._compile_load(inst))
        elif cls is Store:
            self._charge("store", costs.INSTRUCTION_COSTS["store"], stores=1,
                         mi=mi)
            body.append(self._compile_store(inst))
        elif cls is BinOp:
            self._charge(inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode],
                         mi=mi)
            self._compile_binop(inst, body)
        elif cls is GEP:
            self._charge("gep", 1, mi=mi)
            self._compile_gep(inst, body)
        elif cls is ICmp:
            self._charge("icmp", 1, mi=mi)
            a = self._operand(inst.lhs)
            b = self._operand(inst.rhs)
            f = self._icmp_fn(inst)
            if self._use_once(inst) and self._fusable(a, b):
                self._pending[inst] = self._bin_desc(a, b, f)
            else:
                body.append(self._bin_closure(self.slots[inst], a, b, f))
        elif cls is FCmp:
            self._charge("fcmp", 2, mi=mi)
            a = self._operand(inst.lhs)
            b = self._operand(inst.rhs)
            f = FCMP_EVAL[inst.predicate]
            if self._use_once(inst) and self._fusable(a, b):
                self._pending[inst] = self._bin_desc(a, b, f)
            else:
                body.append(self._bin_closure(self.slots[inst], a, b, f))
        elif cls is Cast:
            self._charge(inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode],
                         mi=mi)
            self._compile_cast(inst, body)
        elif cls is Select:
            self._charge("select", 1, mi=mi)
            self._compile_select(inst, body)
        elif cls is Call:
            self._compile_call(inst, body)
        elif cls is Alloca:
            self._charge("alloca", 2, mi=mi)
            self._emit_raising(body, self._compile_alloca(inst))
        elif cls is Phi:
            # A phi past the leading run: the tree-walker dispatches on
            # it and raises, without charging it.
            self._emit_raising(body, _raiser(VMError(
                f"phi executed without predecessor: {inst}")))
        elif cls is Unreachable:
            self._emit_raising(body, _raiser(VMError("executed 'unreachable'")))
        else:
            self._emit_raising(body, _raiser(VMError(
                f"cannot interpret instruction: {inst}")))

    # -- memory --------------------------------------------------------
    def _pointer_reader(self, desc: Tuple) -> Callable:
        """address-producing closure for a pointer operand."""
        if desc[0] == "s":
            slot = desc[1]
            return lambda frame: frame[slot]
        return self._getter(desc)

    def _compile_load(self, inst: Load) -> Callable:
        dst = self.slots[inst]
        ty = inst.type
        size = size_of(ty)
        mem = self.vm.memory
        locate = mem.locate
        stats = self.stats
        oc = stats.opcode_counts
        rb = self._new_rb()
        # When the pointer is a fused gep of the canonical shape
        # (slot base plus at most one slot-indexed term), the address
        # arithmetic is inlined into the access closure; otherwise the
        # address comes from a getter call.
        parts = self._take_gep_parts(inst.pointer)
        pget = None
        if parts is None:
            pget = self._pointer_reader(self._operand(inst.pointer))
        else:
            bs, terms, cofs = parts
            if terms:
                (iv, scale, half, full), = terms
        # Per-site inline cache (closure cells): the cached allocation
        # plus its [lo, hi) range and the epoch it was filled in.
        c_alloc = None
        c_lo = c_hi = 0
        c_ep = -1
        if isinstance(ty, FloatType):
            fmt = "<f" if size == 4 else "<d"
            unpack_from = struct.unpack_from
            unpack = struct.unpack

            if parts is None:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = pget(frame)
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, False)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        data = c_alloc.data
                        if type(data) is bytearray:
                            frame[dst] = unpack_from(fmt, data, o)[0]
                        else:
                            frame[dst] = unpack(fmt, data[o:o + size])[0]
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            elif terms:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        v = frame[iv]
                        if v >= half:
                            v -= full
                        a = (frame[bs] + v * scale + cofs) & U64_MASK
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, False)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        data = c_alloc.data
                        if type(data) is bytearray:
                            frame[dst] = unpack_from(fmt, data, o)[0]
                        else:
                            frame[dst] = unpack(fmt, data[o:o + size])[0]
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            else:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = (frame[bs] + cofs) & U64_MASK
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, False)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        data = c_alloc.data
                        if type(data) is bytearray:
                            frame[dst] = unpack_from(fmt, data, o)[0]
                        else:
                            frame[dst] = unpack(fmt, data[o:o + size])[0]
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            return step
        from_bytes = int.from_bytes
        if size == 1:
            if parts is None:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = pget(frame)
                        if (c_ep == mem.epoch and c_lo <= a
                                and a < c_hi and not c_alloc.freed):
                            frame[dst] = c_alloc.data[a - c_lo]
                            return
                        c_alloc, o = locate(a, 1, False)
                        c_lo = c_alloc.base
                        c_hi = c_lo + c_alloc.size
                        c_ep = mem.epoch
                        frame[dst] = c_alloc.data[o]
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            elif terms:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        v = frame[iv]
                        if v >= half:
                            v -= full
                        a = (frame[bs] + v * scale + cofs) & U64_MASK
                        if (c_ep == mem.epoch and c_lo <= a
                                and a < c_hi and not c_alloc.freed):
                            frame[dst] = c_alloc.data[a - c_lo]
                            return
                        c_alloc, o = locate(a, 1, False)
                        c_lo = c_alloc.base
                        c_hi = c_lo + c_alloc.size
                        c_ep = mem.epoch
                        frame[dst] = c_alloc.data[o]
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            else:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = (frame[bs] + cofs) & U64_MASK
                        if (c_ep == mem.epoch and c_lo <= a
                                and a < c_hi and not c_alloc.freed):
                            frame[dst] = c_alloc.data[a - c_lo]
                            return
                        c_alloc, o = locate(a, 1, False)
                        c_lo = c_alloc.base
                        c_hi = c_lo + c_alloc.size
                        c_ep = mem.epoch
                        frame[dst] = c_alloc.data[o]
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
        else:
            if parts is None:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = pget(frame)
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, False)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        frame[dst] = from_bytes(c_alloc.data[o:o + size], "little")
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            elif terms:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        v = frame[iv]
                        if v >= half:
                            v -= full
                        a = (frame[bs] + v * scale + cofs) & U64_MASK
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, False)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        frame[dst] = from_bytes(c_alloc.data[o:o + size], "little")
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            else:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = (frame[bs] + cofs) & U64_MASK
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, False)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        frame[dst] = from_bytes(c_alloc.data[o:o + size], "little")
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
        return step

    def _compile_store(self, inst: Store) -> Callable:
        ty = inst.value.type
        size = size_of(ty)
        mem = self.vm.memory
        locate = mem.locate
        stats = self.stats
        oc = stats.opcode_counts
        rb = self._new_rb()
        parts = self._take_gep_parts(inst.pointer)
        pget = None
        if parts is None:
            pget = self._pointer_reader(self._operand(inst.pointer))
        else:
            bs, terms, cofs = parts
            if terms:
                (iv, scale, half, full), = terms
        vget = self._getter(self._operand(inst.value))
        c_alloc = None
        c_lo = c_hi = 0
        c_ep = -1
        # The tree-walker evaluates pointer, then value, then converts
        # (``int(value)`` may raise on NaN), and only then resolves the
        # address -- the closures preserve that order exactly.
        if isinstance(ty, FloatType):
            fmt = "<f" if size == 4 else "<d"
            pack_into = struct.pack_into
            pack = struct.pack

            if parts is None:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = pget(frame)
                        val = vget(frame)
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, True)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        data = c_alloc.data
                        if type(data) is bytearray:
                            pack_into(fmt, data, o, val)
                        else:
                            data[o:o + size] = pack(fmt, val)
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            elif terms:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        v = frame[iv]
                        if v >= half:
                            v -= full
                        a = (frame[bs] + v * scale + cofs) & U64_MASK
                        val = vget(frame)
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, True)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        data = c_alloc.data
                        if type(data) is bytearray:
                            pack_into(fmt, data, o, val)
                        else:
                            data[o:o + size] = pack(fmt, val)
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            else:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = (frame[bs] + cofs) & U64_MASK
                        val = vget(frame)
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, True)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        data = c_alloc.data
                        if type(data) is bytearray:
                            pack_into(fmt, data, o, val)
                        else:
                            data[o:o + size] = pack(fmt, val)
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            return step
        mask = (1 << (8 * size)) - 1
        if size == 1:
            if parts is None:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = pget(frame)
                        val = int(vget(frame)) & 0xFF
                        if (c_ep == mem.epoch and c_lo <= a
                                and a < c_hi and not c_alloc.freed):
                            c_alloc.data[a - c_lo] = val
                            return
                        c_alloc, o = locate(a, 1, True)
                        c_lo = c_alloc.base
                        c_hi = c_lo + c_alloc.size
                        c_ep = mem.epoch
                        c_alloc.data[o] = val
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            elif terms:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        v = frame[iv]
                        if v >= half:
                            v -= full
                        a = (frame[bs] + v * scale + cofs) & U64_MASK
                        val = int(vget(frame)) & 0xFF
                        if (c_ep == mem.epoch and c_lo <= a
                                and a < c_hi and not c_alloc.freed):
                            c_alloc.data[a - c_lo] = val
                            return
                        c_alloc, o = locate(a, 1, True)
                        c_lo = c_alloc.base
                        c_hi = c_lo + c_alloc.size
                        c_ep = mem.epoch
                        c_alloc.data[o] = val
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            else:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = (frame[bs] + cofs) & U64_MASK
                        val = int(vget(frame)) & 0xFF
                        if (c_ep == mem.epoch and c_lo <= a
                                and a < c_hi and not c_alloc.freed):
                            c_alloc.data[a - c_lo] = val
                            return
                        c_alloc, o = locate(a, 1, True)
                        c_lo = c_alloc.base
                        c_hi = c_lo + c_alloc.size
                        c_ep = mem.epoch
                        c_alloc.data[o] = val
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
        else:
            if parts is None:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = pget(frame)
                        val = (int(vget(frame)) & mask).to_bytes(size, "little")
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, True)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        c_alloc.data[o:o + size] = val
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            elif terms:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        v = frame[iv]
                        if v >= half:
                            v -= full
                        a = (frame[bs] + v * scale + cofs) & U64_MASK
                        val = (int(vget(frame)) & mask).to_bytes(size, "little")
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, True)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        c_alloc.data[o:o + size] = val
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
            else:
                def step(frame):
                    nonlocal c_alloc, c_lo, c_hi, c_ep
                    try:
                        a = (frame[bs] + cofs) & U64_MASK
                        val = (int(vget(frame)) & mask).to_bytes(size, "little")
                        if (c_ep == mem.epoch and c_lo <= a
                                and a + size <= c_hi and not c_alloc.freed):
                            o = a - c_lo
                        else:
                            c_alloc, o = locate(a, size, True)
                            c_lo = c_alloc.base
                            c_hi = c_lo + c_alloc.size
                            c_ep = mem.epoch
                        c_alloc.data[o:o + size] = val
                    except BaseException:
                        _unroll(stats, oc, rb)
                        raise
        return step

    def _compile_alloca(self, inst: Alloca) -> Callable:
        dst = self.slots[inst]
        size = size_of(inst.allocated_type)
        name = inst.name
        alloca = self.vm.stack.alloca
        if inst.count is None:
            def step(frame):
                frame[dst] = alloca(size, name).base
        else:
            cg = self._getter(self._operand(inst.count))

            def step(frame):
                frame[dst] = alloca(size * cg(frame), name).base
        return step

    # -- arithmetic / comparison / casts -------------------------------
    def _compile_binop(self, inst: BinOp, body: List[Callable]) -> None:
        op = inst.opcode
        a = self._operand(inst.lhs)
        b = self._operand(inst.rhs)
        ty = inst.type
        if isinstance(ty, FloatType):
            f = self._float_binop_fn(op)
        else:
            assert isinstance(ty, IntType)
            f = self._int_binop_fn(op, ty.bits, ty.mask)
        if f is None:
            self._emit_raising(body, _raiser(VMError(f"int binop {op}")))
            return
        if op in _DIV_OPS:
            # Division traps on zero -- always a standalone step with
            # charge rollback, never fused or const-folded.
            self._emit_raising(
                body, self._bin_closure(self.slots[inst], a, b, f))
            return
        if self._use_once(inst) and self._fusable(a, b):
            self._pending[inst] = self._bin_desc(a, b, f)
            return
        dst = self.slots[inst]
        # Fully inlined closures for the hottest two opcodes.
        if op in ("add", "sub") and a[0] == "s" and isinstance(ty, IntType):
            av = a[1]
            mask = ty.mask
            if op == "add":
                if b[0] == "s":
                    bv = b[1]

                    def step(frame):
                        frame[dst] = (frame[av] + frame[bv]) & mask

                    body.append(step)
                    return
                if b[0] == "c":
                    bc = b[1]

                    def step(frame):
                        frame[dst] = (frame[av] + bc) & mask

                    body.append(step)
                    return
            else:
                if b[0] == "s":
                    bv = b[1]

                    def step(frame):
                        frame[dst] = (frame[av] - frame[bv]) & mask

                    body.append(step)
                    return
                if b[0] == "c":
                    bc = b[1]

                    def step(frame):
                        frame[dst] = (frame[av] - bc) & mask

                    body.append(step)
                    return
        body.append(self._bin_closure(dst, a, b, f))

    @staticmethod
    def _float_binop_fn(op: str) -> Optional[Callable]:
        if op == "fadd":
            return operator.add
        if op == "fsub":
            return operator.sub
        if op == "fmul":
            return operator.mul
        if op == "fdiv":
            inf = float("inf")

            def fdiv(x, y):
                return x / y if y != 0.0 else inf

            return fdiv
        if op == "frem":
            fmod = math.fmod
            nan = float("nan")

            def frem(x, y):
                return fmod(x, y) if y != 0.0 else nan

            return frem
        return None

    @staticmethod
    def _int_binop_fn(op: str, bits: int, mask: int) -> Optional[Callable]:
        if op == "add":
            return lambda x, y: (x + y) & mask
        if op == "sub":
            return lambda x, y: (x - y) & mask
        if op == "mul":
            return lambda x, y: (x * y) & mask
        if op == "and":
            return operator.and_
        if op == "or":
            return operator.or_
        if op == "xor":
            return operator.xor
        if op == "shl":
            return lambda x, y: (x << (y % bits)) & mask
        if op == "lshr":
            return lambda x, y: x >> (y % bits)
        if op == "ashr":
            half, full = 1 << (bits - 1), 1 << bits

            def ashr(x, y):
                if x >= half:
                    x -= full
                return (x >> (y % bits)) & mask

            return ashr
        if op in ("sdiv", "srem"):
            half, full = 1 << (bits - 1), 1 << bits
            srem = op == "srem"

            def sdiv(x, y):
                if x >= half:
                    x -= full
                if y >= half:
                    y -= full
                if y == 0:
                    raise MemoryFault(0, 0, "integer division by zero")
                q = abs(x) // abs(y)
                if (x < 0) != (y < 0):
                    q = -q
                return (x - q * y if srem else q) & mask

            return sdiv
        if op in ("udiv", "urem"):
            urem = op == "urem"

            def udiv(x, y):
                if y == 0:
                    raise MemoryFault(0, 0, "integer division by zero")
                return (x % y if urem else x // y) & mask

            return udiv
        return None

    @staticmethod
    def _icmp_fn(inst: ICmp) -> Callable:
        pred = inst.predicate
        signed_op = _ICMP_SIGNED_OPS.get(pred)
        if signed_op is None:
            op = _ICMP_UNSIGNED_OPS[pred]
            return lambda x, y: 1 if op(x, y) else 0
        ty = inst.lhs.type
        bits = ty.bits if isinstance(ty, IntType) else 64
        half, full = 1 << (bits - 1), 1 << bits

        def f(x, y):
            if x >= half:
                x -= full
            if y >= half:
                y -= full
            return 1 if signed_op(x, y) else 0

        return f

    def _compile_cast(self, inst: Cast, body: List[Callable]) -> None:
        op = inst.opcode
        src_ty = inst.value.type
        dst_ty = inst.type
        v = self._operand(inst.value)
        f = self._cast_fn(op, src_ty, dst_ty)
        if f is None:
            # Identity cast (zext, pointer bitcast, ...): forward the
            # operand descriptor itself.
            self._sink_or_copy(inst, body, v)
            return
        if op in _PURE_CASTS and self._use_once(inst) and self._fusable(v):
            if v[0] == "c":
                self._pending[inst] = ("c", f(v[1]))
            elif v[0] == "s":
                sv = v[1]
                self._pending[inst] = ("p", lambda frame: f(frame[sv]))
            else:
                g = v[1]
                self._pending[inst] = ("p", lambda frame: f(g(frame)))
            return
        dst = self.slots[inst]
        if v[0] == "s":
            src = v[1]

            def step(frame):
                frame[dst] = f(frame[src])
        else:
            g = self._getter(v)

            def step(frame):
                frame[dst] = f(g(frame))
        if op in _PURE_CASTS:
            body.append(step)
        else:
            # fptosi/fptoui raise on NaN/inf -- keep the rollback exact.
            self._emit_raising(body, step)

    def _sink_or_copy(self, inst, body: List[Callable], desc: Tuple) -> None:
        if self._use_once(inst) and self._fusable(desc):
            self._pending[inst] = desc
        else:
            body.append(self._store_step(self.slots[inst], desc))

    @staticmethod
    def _cast_fn(op: str, src_ty, dst_ty) -> Optional[Callable]:
        """Scalar conversion for a cast; None means identity."""
        if op == "trunc":
            assert isinstance(dst_ty, IntType)
            mask = dst_ty.mask
            return lambda x: x & mask
        if op == "zext":
            return None
        if op == "sext":
            assert isinstance(src_ty, IntType) and isinstance(dst_ty, IntType)
            half, full = 1 << (src_ty.bits - 1), 1 << src_ty.bits
            dmask = dst_ty.mask

            def sext(x):
                if x >= half:
                    x -= full
                return x & dmask

            return sext
        if op == "ptrtoint":
            mask = dst_ty.mask if isinstance(dst_ty, IntType) else U64_MASK
            return lambda x: x & mask
        if op == "inttoptr":
            return lambda x: x & U64_MASK
        if op == "bitcast":
            if isinstance(src_ty, IntType) and isinstance(dst_ty, FloatType):
                fmt = "<f" if dst_ty.bits == 32 else "<d"
                nbytes = dst_ty.bits // 8
                unpack = struct.unpack
                return lambda x: unpack(fmt, x.to_bytes(nbytes, "little"))[0]
            if isinstance(src_ty, FloatType) and isinstance(dst_ty, IntType):
                fmt = "<f" if src_ty.bits == 32 else "<d"
                pack = struct.pack
                from_bytes = int.from_bytes
                return lambda x: from_bytes(pack(fmt, x), "little")
            return None
        if op in ("fptrunc", "fpext"):
            return float
        if op in ("fptosi", "fptoui"):
            assert isinstance(dst_ty, IntType)
            mask = dst_ty.mask
            return lambda x: int(x) & mask
        if op == "sitofp":
            assert isinstance(src_ty, IntType)
            half, full = 1 << (src_ty.bits - 1), 1 << src_ty.bits

            def sitofp(x):
                if x >= half:
                    x -= full
                return float(x)

            return sitofp
        if op == "uitofp":
            return float
        return _raiser(VMError(f"cast {op}"))  # pragma: no cover

    def _compile_select(self, inst: Select, body: List[Callable]) -> None:
        c = self._operand(inst.condition)
        t = self._operand(inst.true_value)
        f = self._operand(inst.false_value)
        if self._use_once(inst) and self._fusable(c, t, f):
            # Lazy arm evaluation matches the tree-walker, which only
            # evaluates the taken operand.
            if c[0] == "s" and t[0] == "s" and f[0] == "s":
                cv, tv, fv = c[1], t[1], f[1]
                self._pending[inst] = (
                    "p", lambda frame: frame[tv] if frame[cv] else frame[fv])
            else:
                cg, tg, fg = self._getter(c), self._getter(t), self._getter(f)
                self._pending[inst] = (
                    "p", lambda frame: tg(frame) if cg(frame) else fg(frame))
            return
        dst = self.slots[inst]
        if c[0] == "s" and t[0] == "s" and f[0] == "s":
            cv, tv, fv = c[1], t[1], f[1]

            def step(frame):
                frame[dst] = frame[tv] if frame[cv] else frame[fv]
        else:
            cg, tg, fg = self._getter(c), self._getter(t), self._getter(f)

            def step(frame):
                frame[dst] = tg(frame) if cg(frame) else fg(frame)
        body.append(step)

    def _compile_gep(self, inst: GEP, body: List[Callable]) -> None:
        desc, parts = self._gep_desc(inst)
        if desc[0] == "p" or desc[0] == "c":
            if self._use_once(inst):
                self._pending[inst] = desc
                if parts is not None:
                    # A consuming load/store in this block can inline
                    # the address arithmetic instead of calling the
                    # fused closure.
                    self._gep_parts[inst] = parts
            else:
                body.append(self._store_step(self.slots[inst], desc))
        else:
            # An "f" operand leaked in (undefined value, unloaded
            # global): materialize so evaluation happens here.
            body.append(self._store_step(self.slots[inst], desc))

    def _take_gep_parts(self, value: Value) -> Optional[Tuple]:
        """Consume a pending fused gep as structured address parts
        ``(base_slot, var_terms, const_offset)``, or None if the
        pointer isn't an inline-eligible pending gep."""
        parts = self._gep_parts.get(value)
        if parts is None or value not in self._pending:
            return None
        del self._pending[value]
        del self._gep_parts[value]
        return parts

    def _gep_desc(self, inst: GEP) -> Tuple[Tuple, Optional[Tuple]]:
        """Returns ``(descriptor, inline_parts)``; ``inline_parts`` is
        ``(base_slot, var_terms, const_offset)`` when the address is a
        frame slot plus at most one slot-indexed term -- the shape
        load/store closures inline directly."""
        base = self._operand(inst.pointer)
        ty = inst.pointer.type
        assert isinstance(ty, PointerType)
        indices = inst.indices

        const_offset = 0
        var_terms: List[Tuple[Tuple, int, int, int]] = []

        def add_index(idx_value: Value, scale: int) -> None:
            nonlocal const_offset
            if isinstance(idx_value, ConstantInt):
                const_offset += idx_value.signed_value * scale
                return
            if isinstance(idx_value, (ConstantNull, ConstantZero, UndefValue)):
                return
            desc = self._operand(idx_value)
            ity = idx_value.type
            bits = ity.bits if isinstance(ity, IntType) else 64
            var_terms.append((desc, scale, 1 << (bits - 1), 1 << bits))

        add_index(indices[0], size_of(ty.pointee))
        current = ty.pointee
        for idx_value in indices[1:]:
            if isinstance(current, ArrayType):
                add_index(idx_value, size_of(current.element))
                current = current.element
            elif isinstance(current, StructType):
                assert isinstance(idx_value, ConstantInt)
                const_offset += struct_field_offset(current, idx_value.value)
                current = current.fields[idx_value.value]
            else:
                return ("p", _raiser(VMError(f"gep into non-aggregate {current}")))

        c = const_offset
        if not self._fusable(base, *[d for d, _, _, _ in var_terms]):
            kind = "f"
        else:
            kind = "p"
        if not var_terms:
            if base[0] == "c":
                return ("c", (base[1] + c) & U64_MASK), None
            if base[0] == "s":
                bs = base[1]
                return ((kind, lambda frame: (frame[bs] + c) & U64_MASK),
                        (bs, (), c))
            bg = self._getter(base)
            return (kind, lambda frame: (bg(frame) + c) & U64_MASK), None
        if len(var_terms) == 1:
            (desc, scale, half, full) = var_terms[0]
            if base[0] == "s" and desc[0] == "s":
                bs, iv = base[1], desc[1]

                def compute(frame):
                    v = frame[iv]
                    if v >= half:
                        v -= full
                    return (frame[bs] + v * scale + c) & U64_MASK

                return (kind, compute), (bs, ((iv, scale, half, full),), c)
            bg = self._getter(base)
            ig = self._getter(desc)

            def compute(frame):
                v = ig(frame)
                if v >= half:
                    v -= full
                return (bg(frame) + v * scale + c) & U64_MASK

            return (kind, compute), None
        bg = self._getter(base)
        terms = [(self._getter(desc), scale, half, full)
                 for desc, scale, half, full in var_terms]

        def compute(frame):
            address = bg(frame) + c
            for ig, scale, half, full in terms:
                v = ig(frame)
                if v >= half:
                    v -= full
                address += v * scale
            return address & U64_MASK

        return (kind, compute), None

    # -- calls ---------------------------------------------------------
    def _compile_call(self, inst: Call, body: List[Callable]) -> None:
        vm = self.vm
        stats = self.stats
        dst = self.slots[inst] if inst.type.is_first_class() else None
        getters = [self._getter(self._operand(a)) for a in inst.args]
        callee = inst.callee

        if isinstance(callee, Function):
            fn = callee
            if fn.native:
                impl = vm.natives.get(fn.name)
                if impl is None:
                    # No implementation registered at compile time: go
                    # through call_function, which raises (or resolves a
                    # late registration) exactly like the tree-walker.
                    self._emit_raising(body, self._generic_call(
                        fn, getters, dst, inst.meta.get("mi_site"),
                        mi="mi" in inst.meta))
                    return
                site = inst.meta.get("mi_site")
                key = f"native:{fn.name}"
                cost = costs.call_cost(fn.name)
                oc = stats.opcode_counts
                rb = self._new_rb()
                if stats.profile and "mi" in inst.meta:
                    # Profiled instrumentation call: attribute its full
                    # cycle delta (static cost plus whatever the native
                    # charges internally), exactly like the
                    # tree-walker's per-instruction delta.  No
                    # attribution on a raise, also like the tree-walker.
                    def step(frame):
                        try:
                            args = [g(frame) for g in getters]
                            if site is not None:
                                args.append(site)
                            c0 = stats.cycles
                            stats.cycles += cost
                            stats.instructions += 1
                            oc[key] += 1
                            stats.calls += 1
                            result = impl(vm, args)
                            stats.instrumentation_cycles += stats.cycles - c0
                            if dst is not None:
                                frame[dst] = result
                        except BaseException:
                            _unroll(stats, oc, rb)
                            raise

                    body.append(step)
                    return
                if site is None:
                    if dst is None:
                        def step(frame):
                            try:
                                args = [g(frame) for g in getters]
                                stats.cycles += cost
                                stats.instructions += 1
                                oc[key] += 1
                                stats.calls += 1
                                impl(vm, args)
                            except BaseException:
                                _unroll(stats, oc, rb)
                                raise
                    else:
                        def step(frame):
                            try:
                                args = [g(frame) for g in getters]
                                stats.cycles += cost
                                stats.instructions += 1
                                oc[key] += 1
                                stats.calls += 1
                                frame[dst] = impl(vm, args)
                            except BaseException:
                                _unroll(stats, oc, rb)
                                raise
                else:
                    if dst is None:
                        def step(frame):
                            try:
                                args = [g(frame) for g in getters]
                                args.append(site)
                                stats.cycles += cost
                                stats.instructions += 1
                                oc[key] += 1
                                stats.calls += 1
                                impl(vm, args)
                            except BaseException:
                                _unroll(stats, oc, rb)
                                raise
                    else:
                        def step(frame):
                            try:
                                args = [g(frame) for g in getters]
                                args.append(site)
                                stats.cycles += cost
                                stats.instructions += 1
                                oc[key] += 1
                                stats.calls += 1
                                frame[dst] = impl(vm, args)
                            except BaseException:
                                _unroll(stats, oc, rb)
                                raise
                body.append(step)
                return
            # Direct call of a defined function or declaration: the
            # static "call" charge joins the batch (the tree-walker
            # charges it before dispatching into the callee).
            self._charge("call", costs.INSTRUCTION_COSTS["call"])
            call_function = vm.call_function
            if dst is None:
                def step(frame):
                    call_function(fn, [g(frame) for g in getters])
            else:
                def step(frame):
                    frame[dst] = call_function(fn, [g(frame) for g in getters])
            self._emit_raising(body, step)
            return

        # Indirect call: whether the "call" charge applies depends on
        # the runtime callee, so the closure charges for itself.
        cg = self._getter(self._operand(callee))
        site = inst.meta.get("mi_site")
        call_cost = costs.INSTRUCTION_COSTS["call"]
        functions_by_address = vm._functions_by_address
        call_function = vm.call_function
        charge = stats.charge

        def step(frame):
            address = cg(frame)
            fn = functions_by_address.get(address)
            if fn is None:
                raise MemoryFault(address, 0,
                                  "indirect call to non-function address")
            args = [g(frame) for g in getters]
            if fn.native:
                if site is not None:
                    args.append(site)
            else:
                charge("call", call_cost)
            result = call_function(fn, args)
            if dst is not None:
                frame[dst] = result

        self._emit_raising(body, step)

    def _generic_call(self, fn: Function, getters: List[Callable],
                      dst: Optional[int], site, mi: bool = False) -> Callable:
        call_function = self.vm.call_function
        stats = self.stats

        if mi and stats.profile:
            def step(frame):
                args = [g(frame) for g in getters]
                if site is not None:
                    args.append(site)
                c0 = stats.cycles
                result = call_function(fn, args)
                stats.instrumentation_cycles += stats.cycles - c0
                if dst is not None:
                    frame[dst] = result

            return step

        def step(frame):
            args = [g(frame) for g in getters]
            if site is not None:
                args.append(site)
            result = call_function(fn, args)
            if dst is not None:
                frame[dst] = result

        return step

    # -- leftover fused values ----------------------------------------
    def _materialize_pending(self, body: List[Callable]) -> None:
        """Values fused but not consumed in this block (their single
        use lives in a later block): write them to their slots."""
        for value, desc in self._pending.items():
            body.append(self._store_step(self.slots[value], desc))
        self._pending = {}

    # -- control flow --------------------------------------------------
    def _compile_terminator(self, block: BasicBlock,
                            inst: Optional[Instruction], edges) -> Callable:
        if isinstance(inst, Br):
            edge = edges[(block, inst.target)]

            def term(frame):
                return edge

            return term
        if isinstance(inst, CondBr):
            true_edge = edges[(block, inst.true_block)]
            false_edge = edges[(block, inst.false_block)]
            c = self._operand(inst.condition)
            if c[0] == "s":
                cs = c[1]

                def term(frame):
                    return true_edge if frame[cs] else false_edge
            else:
                cg = self._getter(c)

                def term(frame):
                    return true_edge if cg(frame) else false_edge
            return term
        if isinstance(inst, Ret):
            retcell = self.out.retcell
            value = inst.value
            if value is None:
                def term(frame):
                    retcell[0] = None
                    return None

                return term
            v = self._operand(value)
            if v[0] == "s":
                vs = v[1]

                def term(frame):
                    retcell[0] = frame[vs]
                    return None
            else:
                vg = self._getter(v)

                def term(frame):
                    retcell[0] = vg(frame)
                    return None
            return term
        # No terminator: the tree-walker runs off the end of the block
        # and raises without charging anything further.
        return _raiser(VMError(
            f"block {block.name} fell through without terminator"))

    # -- phi moves -----------------------------------------------------
    def _compile_moves(self, pred: Optional[BasicBlock],
                       succ: BasicBlock) -> Optional[Callable]:
        phis = succ.phis()
        if not phis:
            return None
        if pred is None:
            # Function entry into a block with phis: the tree-walker
            # skips resolution (no predecessor) and trips on dispatch.
            return _raiser(VMError(
                f"phi executed without predecessor: {phis[0]}"))
        descs = []
        dsts = []
        for phi in phis:
            try:
                incoming = phi.incoming_value_for(pred)
            except KeyError as exc:
                return _raiser(KeyError(*exc.args))
            descs.append(self._operand(incoming))
            dsts.append(self.slots[phi])
        if len(phis) == 1:
            d0 = dsts[0]
            if descs[0][0] == "s":
                s0 = descs[0][1]

                def moves(frame):
                    frame[d0] = frame[s0]
            elif descs[0][0] == "c":
                c0 = descs[0][1]

                def moves(frame):
                    frame[d0] = c0
            else:
                g0 = self._getter(descs[0])

                def moves(frame):
                    frame[d0] = g0(frame)
            return moves
        getters = [self._getter(d) for d in descs]
        if len(phis) == 2:
            g0, g1 = getters
            d0, d1 = dsts

            def moves(frame):
                # Parallel assignment: read both before writing either.
                v0 = g0(frame)
                v1 = g1(frame)
                frame[d0] = v0
                frame[d1] = v1

            return moves
        if len(phis) == 3:
            g0, g1, g2 = getters
            d0, d1, d2 = dsts

            def moves(frame):
                v0 = g0(frame)
                v1 = g1(frame)
                v2 = g2(frame)
                frame[d0] = v0
                frame[d1] = v1
                frame[d2] = v2

            return moves

        def moves(frame):
            # Parallel assignment: read every incoming value before
            # writing any phi slot.
            values = [g(frame) for g in getters]
            for d, v in zip(dsts, values):
                frame[d] = v

        return moves

"""Deterministic cycle cost model.

The paper measures wall-clock time on an i9-10900K.  Our substitute is a
simple in-order cost model: every executed IR instruction is charged a
fixed cycle cost, and every runtime-library operation is charged the
cost of the instruction sequence it stands for.  Because the model is
deterministic, "runtime" comparisons between instrumentation
configurations are exactly reproducible.

The relative costs encode the facts the paper's analysis rests on:

* A SoftBound dereference check (Figure 2: two compares and an or) is
  *cheaper* than a Low-Fat check (Figure 5: region-index shift, size
  table load, subtract, compare) -- this is why SoftBound wins on
  check-dense code like 186crafty.
* A SoftBound trie lookup (two dependent loads through a two-level
  trie) is *more expensive* than recomputing a Low-Fat base pointer
  (mask arithmetic on the pointer value) -- this is why Low-Fat wins on
  pointer-chasing loops like 183equake.
* Shadow-stack traffic costs a store/load per pointer argument.
"""

from __future__ import annotations

from typing import Dict

# -- core instruction costs (cycles) ----------------------------------
INSTRUCTION_COSTS: Dict[str, int] = {
    "load": 3,
    "store": 2,
    "alloca": 2,
    "gep": 1,
    "phi": 0,          # resolved by register allocation
    "select": 1,
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 1, "lshr": 1, "ashr": 1,
    "mul": 3,
    "sdiv": 12, "udiv": 12, "srem": 12, "urem": 12,
    "fadd": 3, "fsub": 3, "fmul": 4, "fdiv": 10, "frem": 12,
    "icmp": 1,
    "fcmp": 2,
    "trunc": 1, "zext": 1, "sext": 1,
    "fptrunc": 2, "fpext": 2, "fptosi": 4, "sitofp": 4, "fptoui": 4,
    "uitofp": 4,
    "ptrtoint": 0, "inttoptr": 0, "bitcast": 0,  # no machine code
    "br": 1,
    "condbr": 2,
    "ret": 2,
    "call": 5,          # call/prologue overhead for non-intrinsic calls
    "unreachable": 0,
}

# -- runtime library / intrinsic costs (cycles per call) ----------------
# Intrinsics stand for instruction sequences the real instrumentation
# inlines; they are charged their sequence cost with no call overhead.
INTRINSIC_COSTS: Dict[str, int] = {
    # memory-safety checks (Figures 1, 2 and 5)
    "__sb_check": 7,           # cmp, add, cmp, or, branch
    "__lf_check": 9,           # shift, table load, sub, sub, cmp, branch
    "__lf_invariant_check": 9,  # same sequence as __lf_check
    "__mi_fail": 0,            # noreturn; aborts anyway

    # SoftBound metadata (trie = two dependent loads + index arithmetic)
    "__sb_trie_load_base": 16,
    "__sb_trie_load_bound": 6,  # second field of the same trie leaf: hot
    "__sb_trie_store": 20,       # index arithmetic + two stores (+ alloc)
    # shadow stack (pointer-sized store/load into a dedicated region)
    "__sb_ss_enter": 3,
    "__sb_ss_exit": 3,
    "__sb_ss_set": 6,
    "__sb_ss_get_base": 4,
    "__sb_ss_get_bound": 4,
    "__sb_ss_set_ret": 4,
    "__sb_ss_get_ret_base": 2,
    "__sb_ss_get_ret_bound": 2,

    # Low-Fat pointer arithmetic (mask/shift on the pointer value)
    "__lf_compute_base": 3,
    "__lf_compute_bound": 4,

    # allocation
    "malloc": 80,
    "calloc": 90,
    "realloc": 100,
    "free": 40,
    "__lf_malloc": 95,          # size-class lookup + per-region freelist
    "__lf_free": 45,
    "__lf_alloca": 6,           # per-region stack bump
    "__lf_alloca_exit": 2,
}

# Native C library functions: fixed base cost; some natives add a
# per-byte cost on top (handled by the native implementation itself).
NATIVE_COSTS: Dict[str, int] = {
    "memcpy": 20,
    "memmove": 24,
    "memset": 16,
    "strlen": 12,
    "strcpy": 16,
    "strcmp": 14,
    "print_i64": 40,
    "print_f64": 60,
    "print_str": 40,
    "abort": 0,
    "exit": 0,
    "llabs": 2,
    "sqrt": 18,
    "fabs": 2,
    "sin": 40,
    "cos": 40,
}

BYTE_COSTS: Dict[str, float] = {
    # additional cost per byte processed by bulk natives
    "memcpy": 0.125,
    "memmove": 0.125,
    "memset": 0.0625,
    "strlen": 0.25,
    "strcpy": 0.25,
    "strcmp": 0.25,
}


def instruction_cost(opcode: str) -> int:
    return INSTRUCTION_COSTS.get(opcode, 1)


#: Extra cycles a SoftBound libc wrapper spends on bookkeeping
#: (shadow-stack return-slot update, bounds plumbing) on top of the
#: wrapped function itself.  Trie copying in memcpy/memmove wrappers is
#: charged per copied entry by the wrapper implementation.
SB_WRAPPER_OVERHEAD = 8


def call_cost(name: str) -> int:
    """Cost charged for a call to a runtime/native function, replacing
    the generic call overhead for intrinsics."""
    if name in INTRINSIC_COSTS:
        return INTRINSIC_COSTS[name]
    if name.startswith("__sb_wrap_"):
        wrapped = name[len("__sb_wrap_"):]
        base = INTRINSIC_COSTS.get(wrapped, NATIVE_COSTS.get(wrapped, 0))
        return base + INSTRUCTION_COSTS["call"] + SB_WRAPPER_OVERHEAD
    if name in NATIVE_COSTS:
        return NATIVE_COSTS[name] + INSTRUCTION_COSTS["call"]
    return INSTRUCTION_COSTS["call"]


def is_intrinsic(name: str) -> bool:
    return name in INTRINSIC_COSTS

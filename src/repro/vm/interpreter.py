"""The IR interpreter (the reproduction's "hardware").

Executes a linked :class:`~repro.ir.module.Module` over the simulated
address space of :mod:`repro.vm.memory`, charging deterministic cycle
costs per executed instruction (:mod:`repro.vm.costs`).

Pointers are integers.  Loads and stores that leave mapped memory raise
:class:`~repro.errors.MemoryFault`; accesses that land inside *some*
live allocation succeed silently, even when the programmer meant a
different object -- the silent-corruption behaviour the sanitizers in
the paper exist to catch.

Instrumentation runtimes (SoftBound / Low-Fat) plug in by registering
*native functions* (``register_native``) and, for Low-Fat, by replacing
the global placer so globals land in low-fat regions.
"""

from __future__ import annotations

import operator
import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import MemoryFault, ProgramAbort, VMError
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCMP_EVAL,
    FCmp,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ..ir.module import BasicBlock, Function, GlobalVariable, Module
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    size_of,
    struct_field_offset,
)
from ..ir.values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantStruct,
    ConstantZero,
    UndefValue,
    Value,
)
from . import costs
from .memory import (
    Allocation,
    GlobalsAllocator,
    Memory,
    StackAllocator,
    StandardAllocator,
)
from .native import install_libc
from .stats import RuntimeStats

FUNCTION_SEGMENT_BASE = 0x2000
U64_MASK = (1 << 64) - 1
_LOAD_COST = costs.INSTRUCTION_COSTS["load"]
_STORE_COST = costs.INSTRUCTION_COSTS["store"]

# Canonical engine registry lives in .engines; re-exported here for
# backwards compatibility (CLI builders and campaign code import it).
from .engines import ENGINES  # noqa: E402

# Per-predicate comparison dispatch: one operator call per executed
# icmp instead of building and indexing a ten-entry table.
_ICMP_UNSIGNED = {
    "eq": operator.eq, "ne": operator.ne,
    "ult": operator.lt, "ule": operator.le,
    "ugt": operator.gt, "uge": operator.ge,
}
_ICMP_SIGNED = {
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
}


class _ExitRequest(Exception):
    def __init__(self, code: int):
        self.code = code


def _to_signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        return value - (1 << bits)
    return value


class VirtualMachine:
    def __init__(
        self,
        module: Module,
        stats: Optional[RuntimeStats] = None,
        max_instructions: Optional[int] = 500_000_000,
        install_default_libc: bool = True,
        engine: str = "compiled",
        profile: bool = False,
    ):
        if engine not in ENGINES:
            raise VMError(f"unknown engine {engine!r} (expected one of {ENGINES})")
        self.engine = engine
        self.module = module
        self.stats = stats or RuntimeStats()
        if profile:
            # Must be set before any function is compiled/executed: the
            # compiled tier specializes its charging closures on it.
            self.stats.profile = True
        self.max_instructions = max_instructions
        self.memory = Memory()
        self.heap = StandardAllocator(self.memory)
        self.stack = StackAllocator(self.memory)
        self.globals_allocator = GlobalsAllocator(self.memory)
        # Hook: Low-Fat replaces this so globals land in low-fat regions.
        # ``external`` marks globals of uninstrumented libraries
        # (declarations with no definition) -- those stay outside the
        # low-fat regions, cf. paper Section 4.3.
        self.global_placer: Callable[..., Allocation] = (
            lambda size, name, external=False: self.globals_allocator.allocate(
                size, name
            )
        )
        self.natives: Dict[str, Callable] = {}
        self.output: List[str] = []
        self.global_addresses: Dict[GlobalVariable, int] = {}
        self._function_addresses: Dict[Function, int] = {}
        self._functions_by_address: Dict[int, Function] = {}
        self._frame_cleanups: List[List[Callable[[], None]]] = []
        self._exit_code: Optional[int] = None
        self._globals_loaded = False
        # Lazy per-function closure-compilation cache (compiled engine).
        self._compiled: Dict[Function, "CompiledFunction"] = {}
        # Lazy per-function source-generation cache (codegen engine).
        self._codegen: Dict[Function, object] = {}
        # Set by the driver (``--dump-codegen``): directory receiving
        # one generated-source file per compiled function.
        self.codegen_dump_dir: Optional[str] = None
        # Set when engine="codegen" transparently falls back to the
        # closure tier (profiling needs per-site cycle attribution).
        self.codegen_fallback_reason: Optional[str] = None
        if install_default_libc:
            install_libc(self)

    # -- setup -----------------------------------------------------------
    def register_native(self, name: str, impl: Callable) -> None:
        self.natives[name] = impl

    def function_address(self, fn: Function) -> int:
        addr = self._function_addresses.get(fn)
        if addr is None:
            addr = FUNCTION_SEGMENT_BASE + 16 * len(self._function_addresses)
            self._function_addresses[fn] = addr
            self._functions_by_address[addr] = fn
        return addr

    def load_globals(self) -> None:
        """Allocate and initialize all global variables."""
        if self._globals_loaded:
            return
        self._globals_loaded = True
        for gv in self.module.globals.values():
            size = max(size_of(gv.value_type), 16 if gv.is_declaration else 1)
            alloc = self.global_placer(size, gv.name, external=gv.is_declaration)
            self.global_addresses[gv] = alloc.base
            if gv.initializer is not None:
                data = self._serialize_constant(gv.initializer, gv.value_type)
                alloc.data[0 : len(data)] = data

    def _serialize_constant(self, const: Constant, ty: Type) -> bytes:
        if isinstance(const, (ConstantZero, UndefValue)):
            return bytes(size_of(ty))
        if isinstance(const, ConstantInt):
            assert isinstance(ty, IntType)
            return const.value.to_bytes(size_of(ty), "little")
        if isinstance(const, ConstantFloat):
            assert isinstance(ty, FloatType)
            fmt = "<f" if ty.bits == 32 else "<d"
            return struct.pack(fmt, const.value)
        if isinstance(const, ConstantNull):
            return bytes(8)
        if isinstance(const, ConstantString):
            return bytes(const.data)
        if isinstance(const, ConstantArray):
            assert isinstance(ty, ArrayType)
            elem_size = size_of(ty.element)
            out = bytearray()
            for elem in const.elements:
                piece = self._serialize_constant(elem, ty.element)
                out.extend(piece.ljust(elem_size, b"\x00"))
            return bytes(out)
        if isinstance(const, ConstantStruct):
            assert isinstance(ty, StructType)
            out = bytearray(size_of(ty))
            for i, field in enumerate(const.fields):
                offset = struct_field_offset(ty, i)
                piece = self._serialize_constant(field, ty.fields[i])
                out[offset : offset + len(piece)] = piece
            return bytes(out)
        raise VMError(f"cannot serialize constant {const!r}")

    # -- running ------------------------------------------------------------
    def run(self, entry: str = "main", args: Sequence[int] = ()) -> int:
        """Execute ``entry`` and return its exit code."""
        self.load_globals()
        fn = self.module.get_function(entry)
        if fn is None:
            raise VMError(f"no entry function @{entry}")
        try:
            result = self.call_function(fn, list(args))
        except _ExitRequest as req:
            return req.code
        if self._exit_code is not None:
            return self._exit_code
        return int(result) & 0xFFFFFFFF if result is not None else 0

    def request_exit(self, code: int) -> None:
        raise _ExitRequest(code & 0xFFFFFFFF)

    def register_frame_cleanup(self, action: Callable[[], None]) -> None:
        """Register an action to run when the current frame is popped.

        Used by the Low-Fat runtime to release ``__lf_alloca`` memory on
        function return.
        """
        if not self._frame_cleanups:
            raise VMError("no active frame for cleanup registration")
        self._frame_cleanups[-1].append(action)

    # -- call dispatch ---------------------------------------------------------
    def call_function(self, fn: Function, args: List) -> Optional[object]:
        if fn.native:
            impl = self.natives.get(fn.name)
            if impl is None:
                raise VMError(f"native function @{fn.name} has no implementation")
            self.stats.charge(f"native:{fn.name}", costs.call_cost(fn.name))
            self.stats.calls += 1
            return impl(self, args)
        if fn.is_declaration:
            # Unresolved declaration: model a call into an unavailable
            # external library.
            impl = self.natives.get(fn.name)
            if impl is not None:
                self.stats.charge(f"native:{fn.name}", costs.call_cost(fn.name))
                return impl(self, args)
            raise VMError(f"call to undefined function @{fn.name}")
        self.stats.calls += 1
        if self.engine == "compiled":
            return self._run_function_compiled(fn, args)
        if self.engine == "codegen":
            if self.stats.profile:
                # Per-site cycle attribution requires the closure
                # tier's profile-specialized batches; fall back and
                # record why (stats stay bit-identical either way).
                if self.codegen_fallback_reason is None:
                    self.codegen_fallback_reason = (
                        "profile=True: per-site cycle attribution "
                        "requires the closure tier")
                return self._run_function_compiled(fn, args)
            return self._run_function_codegen(fn, args)
        return self._run_function(fn, args)

    # -- the main loop -----------------------------------------------------------
    def _run_function(self, fn: Function, args: List) -> Optional[object]:
        frame: Dict[Value, object] = {}
        for formal, actual in zip(fn.args, args):
            frame[formal] = actual
        self.stack.push_frame()
        self._frame_cleanups.append([])
        try:
            return self._interpret(fn, frame)
        finally:
            for action in reversed(self._frame_cleanups.pop()):
                action()
            self.stack.pop_frame()

    def _run_function_compiled(self, fn: Function, args: List) -> Optional[object]:
        compiled = self._compiled.get(fn)
        if compiled is None:
            from .compile import CompiledFunction

            compiled = CompiledFunction(self, fn)
            self._compiled[fn] = compiled
        self.stack.push_frame()
        self._frame_cleanups.append([])
        try:
            return compiled.execute(args)
        finally:
            for action in reversed(self._frame_cleanups.pop()):
                action()
            self.stack.pop_frame()

    def _run_function_codegen(self, fn: Function, args: List) -> Optional[object]:
        compiled = self._codegen.get(fn)
        if compiled is None:
            from .codegen import CodegenFunction

            compiled = CodegenFunction(self, fn, index=len(self._codegen))
            self._codegen[fn] = compiled
        self.stack.push_frame()
        self._frame_cleanups.append([])
        try:
            return compiled.execute(args)
        finally:
            for action in reversed(self._frame_cleanups.pop()):
                action()
            self.stack.pop_frame()

    def _codegen_direct_call(self, fn: Function, args: List) -> Optional[object]:
        """Direct-call fast path bound into generated source (``__dc``).

        The emitter uses this only for direct calls to defined,
        non-native functions, where :meth:`call_function`'s native /
        declaration / engine dispatch is statically dead (generated
        code never runs under ``profile=True`` -- ``call_function``
        falls back to the closure tier before any of it executes), so
        the whole prologue collapses to the call counter plus the
        codegen frame push.
        """
        self.stats.calls += 1
        compiled = self._codegen.get(fn)
        if compiled is None:
            from .codegen import CodegenFunction

            compiled = CodegenFunction(self, fn, index=len(self._codegen))
            self._codegen[fn] = compiled
        self.stack.push_frame()
        self._frame_cleanups.append([])
        try:
            return compiled.execute(args)
        finally:
            for action in reversed(self._frame_cleanups.pop()):
                action()
            self.stack.pop_frame()

    def _interpret(self, fn: Function, frame: Dict[Value, object]):
        stats = self.stats
        profile = stats.profile
        c0 = 0
        block = fn.entry
        prev: Optional[BasicBlock] = None
        while True:
            instructions = block.instructions
            index = 0
            # Resolve phis as a parallel assignment.
            if prev is not None and isinstance(instructions[0], Phi):
                phis = block.phis()
                values = [
                    self._eval(phi.incoming_value_for(prev), frame) for phi in phis
                ]
                for phi, value in zip(phis, values):
                    frame[phi] = value
                    stats.charge("phi", 0)
                index = len(phis)

            next_block: Optional[BasicBlock] = None
            while index < len(instructions):
                inst = instructions[index]
                index += 1
                cls = type(inst)
                if profile:
                    c0 = stats.cycles
                if cls is Load:
                    stats.charge("load", _LOAD_COST)
                    stats.loads += 1
                    frame[inst] = self._load(
                        self._eval(inst.pointer, frame), inst.type  # type: ignore[attr-defined]
                    )
                elif cls is Store:
                    stats.charge("store", _STORE_COST)
                    stats.stores += 1
                    self._store(
                        self._eval(inst.pointer, frame),  # type: ignore[attr-defined]
                        self._eval(inst.value, frame),  # type: ignore[attr-defined]
                        inst.value.type,  # type: ignore[attr-defined]
                    )
                elif cls is BinOp:
                    stats.charge(inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode])
                    frame[inst] = self._binop(
                        inst.opcode,
                        inst.type,
                        self._eval(inst.lhs, frame),  # type: ignore[attr-defined]
                        self._eval(inst.rhs, frame),  # type: ignore[attr-defined]
                    )
                elif cls is GEP:
                    stats.charge("gep", 1)
                    frame[inst] = self._gep(inst, frame)
                elif cls is ICmp:
                    stats.charge("icmp", 1)
                    frame[inst] = self._icmp(inst, frame)
                elif cls is FCmp:
                    stats.charge("fcmp", 2)
                    frame[inst] = self._fcmp(inst, frame)
                elif cls is Cast:
                    stats.charge(inst.opcode, costs.INSTRUCTION_COSTS[inst.opcode])
                    frame[inst] = self._cast(inst, frame)
                elif cls is Select:
                    stats.charge("select", 1)
                    cond = self._eval(inst.condition, frame)  # type: ignore[attr-defined]
                    frame[inst] = self._eval(
                        inst.true_value if cond else inst.false_value, frame  # type: ignore[attr-defined]
                    )
                elif cls is Call:
                    result = self._call(inst, frame)
                    if inst.type.is_first_class():
                        frame[inst] = result
                elif cls is Alloca:
                    stats.charge("alloca", 2)
                    frame[inst] = self._alloca(inst, frame)
                elif cls is Br:
                    stats.charge("br", 1)
                    next_block = inst.target  # type: ignore[attr-defined]
                    break
                elif cls is CondBr:
                    stats.charge("condbr", 2)
                    cond = self._eval(inst.condition, frame)  # type: ignore[attr-defined]
                    next_block = inst.true_block if cond else inst.false_block  # type: ignore[attr-defined]
                    break
                elif cls is Ret:
                    stats.charge("ret", 2)
                    value = inst.value  # type: ignore[attr-defined]
                    return self._eval(value, frame) if value is not None else None
                elif cls is Phi:
                    # Entry block phis (no predecessor yet) are invalid.
                    raise VMError(f"phi executed without predecessor: {inst}")
                elif cls is Unreachable:
                    raise VMError("executed 'unreachable'")
                else:
                    raise VMError(f"cannot interpret instruction: {inst}")
                if profile and "mi" in inst.meta:
                    # Attribute everything this instruction charged
                    # (including natives' internal charges) to the
                    # instrumentation.  Terminators break/return above
                    # and are never instrumentation code.
                    stats.instrumentation_cycles += stats.cycles - c0

            if next_block is None:
                raise VMError(f"block {block.name} fell through without terminator")
            if (
                self.max_instructions is not None
                and stats.instructions > self.max_instructions
            ):
                raise VMError("instruction budget exceeded (infinite loop?)")
            prev, block = block, next_block

    # -- evaluation helpers ----------------------------------------------------
    def _eval(self, value: Value, frame: Dict[Value, object]):
        if isinstance(value, (Instruction, Argument)):
            try:
                return frame[value]
            except KeyError:
                raise VMError(f"use of undefined value %{value.name}") from None
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, (ConstantNull, ConstantZero)):
            return 0.0 if isinstance(value.type, FloatType) else 0
        if isinstance(value, UndefValue):
            return 0.0 if isinstance(value.type, FloatType) else 0
        if isinstance(value, GlobalVariable):
            try:
                return self.global_addresses[value]
            except KeyError:
                raise VMError(f"global @{value.name} not loaded") from None
        if isinstance(value, Function):
            return self.function_address(value)
        raise VMError(f"cannot evaluate value {value!r}")

    def _load(self, address: int, ty: Type):
        size = size_of(ty)
        if isinstance(ty, FloatType):
            return self.memory.read_float(address, size)
        return self.memory.read_int(address, size)

    def _store(self, address: int, value, ty: Type) -> None:
        size = size_of(ty)
        if isinstance(ty, FloatType):
            self.memory.write_float(address, value, size)
        else:
            self.memory.write_int(address, int(value), size)

    def _binop(self, op: str, ty: Type, lhs, rhs):
        if isinstance(ty, FloatType):
            if op == "fadd":
                return lhs + rhs
            if op == "fsub":
                return lhs - rhs
            if op == "fmul":
                return lhs * rhs
            if op == "fdiv":
                return lhs / rhs if rhs != 0.0 else float("inf")
            if op == "frem":
                import math

                return math.fmod(lhs, rhs) if rhs != 0.0 else float("nan")
            raise VMError(f"float binop {op}")
        assert isinstance(ty, IntType)
        bits, mask = ty.bits, ty.mask
        if op == "add":
            return (lhs + rhs) & mask
        if op == "sub":
            return (lhs - rhs) & mask
        if op == "mul":
            return (lhs * rhs) & mask
        if op == "and":
            return lhs & rhs
        if op == "or":
            return lhs | rhs
        if op == "xor":
            return lhs ^ rhs
        if op == "shl":
            return (lhs << (rhs % bits)) & mask
        if op == "lshr":
            return lhs >> (rhs % bits)
        if op == "ashr":
            return (_to_signed(lhs, bits) >> (rhs % bits)) & mask
        if op in ("sdiv", "srem"):
            a, b = _to_signed(lhs, bits), _to_signed(rhs, bits)
            if b == 0:
                raise MemoryFault(0, 0, "integer division by zero")
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            return (q if op == "sdiv" else a - q * b) & mask
        if op in ("udiv", "urem"):
            if rhs == 0:
                raise MemoryFault(0, 0, "integer division by zero")
            return (lhs // rhs if op == "udiv" else lhs % rhs) & mask
        raise VMError(f"int binop {op}")

    def _icmp(self, inst: ICmp, frame) -> int:
        lhs = self._eval(inst.lhs, frame)
        rhs = self._eval(inst.rhs, frame)
        pred = inst.predicate
        op = _ICMP_SIGNED.get(pred)
        if op is not None:
            ty = inst.lhs.type
            bits = ty.bits if isinstance(ty, IntType) else 64
            lhs, rhs = _to_signed(lhs, bits), _to_signed(rhs, bits)
        else:
            op = _ICMP_UNSIGNED[pred]
        return 1 if op(lhs, rhs) else 0

    def _fcmp(self, inst: FCmp, frame) -> int:
        lhs = self._eval(inst.lhs, frame)
        rhs = self._eval(inst.rhs, frame)
        return FCMP_EVAL[inst.predicate](lhs, rhs)

    def _cast(self, inst: Cast, frame):
        value = self._eval(inst.value, frame)
        op = inst.opcode
        src_ty = inst.value.type
        dst_ty = inst.type
        if op == "trunc":
            assert isinstance(dst_ty, IntType)
            return value & dst_ty.mask
        if op == "zext":
            return value
        if op == "sext":
            assert isinstance(src_ty, IntType) and isinstance(dst_ty, IntType)
            return _to_signed(value, src_ty.bits) & dst_ty.mask
        if op in ("ptrtoint", "inttoptr"):
            if op == "ptrtoint" and isinstance(dst_ty, IntType):
                return value & dst_ty.mask
            return value & U64_MASK
        if op == "bitcast":
            if isinstance(src_ty, PointerType) and isinstance(dst_ty, PointerType):
                return value
            if isinstance(src_ty, IntType) and isinstance(dst_ty, FloatType):
                raw = value.to_bytes(dst_ty.bits // 8, "little")
                return struct.unpack("<f" if dst_ty.bits == 32 else "<d", raw)[0]
            if isinstance(src_ty, FloatType) and isinstance(dst_ty, IntType):
                raw = struct.pack("<f" if src_ty.bits == 32 else "<d", value)
                return int.from_bytes(raw, "little")
            return value
        if op == "fptrunc" or op == "fpext":
            return float(value)
        if op in ("fptosi", "fptoui"):
            assert isinstance(dst_ty, IntType)
            return int(value) & dst_ty.mask
        if op in ("sitofp", "uitofp"):
            assert isinstance(src_ty, IntType)
            if op == "sitofp":
                return float(_to_signed(value, src_ty.bits))
            return float(value)
        raise VMError(f"cast {op}")

    def _gep(self, inst: GEP, frame) -> int:
        address = self._eval(inst.pointer, frame)
        ty = inst.pointer.type
        assert isinstance(ty, PointerType)
        indices = inst.indices
        first = self._eval(indices[0], frame)
        first_bits = indices[0].type.bits if isinstance(indices[0].type, IntType) else 64
        address += _to_signed(first, first_bits) * size_of(ty.pointee)
        current: Type = ty.pointee
        for idx_value in indices[1:]:
            if isinstance(current, ArrayType):
                idx = self._eval(idx_value, frame)
                bits = idx_value.type.bits if isinstance(idx_value.type, IntType) else 64
                address += _to_signed(idx, bits) * size_of(current.element)
                current = current.element
            elif isinstance(current, StructType):
                assert isinstance(idx_value, ConstantInt)
                address += struct_field_offset(current, idx_value.value)
                current = current.fields[idx_value.value]
            else:
                raise VMError(f"gep into non-aggregate {current}")
        return address & U64_MASK

    def _alloca(self, inst: Alloca, frame) -> int:
        size = size_of(inst.allocated_type)
        if inst.count is not None:
            count = self._eval(inst.count, frame)
            size *= count
        alloc = self.stack.alloca(size, inst.name)
        return alloc.base

    def _call(self, inst: Call, frame):
        callee = inst.callee
        fn: Optional[Function]
        if isinstance(callee, Function):
            fn = callee
        else:
            address = self._eval(callee, frame)
            fn = self._functions_by_address.get(address)
            if fn is None:
                raise MemoryFault(address, 0, "indirect call to non-function address")
        args = [self._eval(a, frame) for a in inst.args]
        if fn.native:
            site = inst.meta.get("mi_site")
            if site is not None:
                args = list(args) + [site]
            return self.call_function(fn, args)
        self.stats.charge("call", costs.INSTRUCTION_COSTS["call"])
        return self.call_function(fn, args)

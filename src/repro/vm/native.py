"""Native (VM-implemented) functions: the C standard library subset.

MiniC programs call into a small libc.  These functions are implemented
in Python inside the VM, mirroring the paper's setting where the C
standard library is *uninstrumented external code*: no checks run
inside them unless an instrumentation installs wrappers (SoftBound,
Section 4.3) and allocation routed through them uses whatever allocator
the active runtime provides.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, List

from ..errors import MemoryFault
from ..ir.types import FunctionType, IntType, PointerType, F64, I32, I64, I8, VOID
from . import costs

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import VirtualMachine

I8P = PointerType(I8)


def _charged_bytes(vm: "VirtualMachine", name: str, nbytes: int) -> None:
    per_byte = costs.BYTE_COSTS.get(name, 0.0)
    if per_byte:
        vm.stats.cycles += int(nbytes * per_byte)


# -- allocation -------------------------------------------------------


def native_malloc(vm: "VirtualMachine", args: List[int]) -> int:
    size = args[0]
    alloc = vm.heap.malloc(size)
    vm.stats.heap_allocs += 1
    return alloc.base


def native_calloc(vm: "VirtualMachine", args: List[int]) -> int:
    count, size = args
    alloc = vm.heap.malloc(count * size)
    vm.stats.heap_allocs += 1
    return alloc.base  # bytearray is zero-initialized already


def native_realloc(vm: "VirtualMachine", args: List[int]) -> int:
    old_ptr, new_size = args
    new_alloc = vm.heap.malloc(new_size)
    vm.stats.heap_allocs += 1
    if old_ptr != 0:
        old_alloc = vm.memory.find(old_ptr)
        if old_alloc is None:
            raise MemoryFault(old_ptr, 0, "realloc of invalid pointer")
        n = min(old_alloc.size, new_size)
        new_alloc.data[0:n] = old_alloc.data[0:n]
        old_alloc.freed = True
        vm.stats.heap_frees += 1
    return new_alloc.base


def native_free(vm: "VirtualMachine", args: List[int]) -> None:
    vm.heap.free(args[0])
    vm.stats.heap_frees += 1


# -- memory/string ------------------------------------------------------


def native_memcpy(vm: "VirtualMachine", args: List[int]) -> int:
    dest, src, n = args
    if n:
        data = vm.memory.read_bytes(src, n)
        vm.memory.write_bytes(dest, data)
    _charged_bytes(vm, "memcpy", n)
    return dest


def native_memmove(vm: "VirtualMachine", args: List[int]) -> int:
    dest, src, n = args
    if n:
        data = vm.memory.read_bytes(src, n)  # copy, so overlap is fine
        vm.memory.write_bytes(dest, data)
    _charged_bytes(vm, "memmove", n)
    return dest


def native_memset(vm: "VirtualMachine", args: List[int]) -> int:
    dest, byte, n = args
    if n:
        vm.memory.write_bytes(dest, bytes([byte & 0xFF]) * n)
    _charged_bytes(vm, "memset", n)
    return dest


def _read_cstring(vm: "VirtualMachine", addr: int) -> bytes:
    out = bytearray()
    while True:
        b = vm.memory.read_bytes(addr + len(out), 1)[0]
        if b == 0:
            return bytes(out)
        out.append(b)
        if len(out) > 1 << 20:
            raise MemoryFault(addr, len(out), "unterminated string")


def native_strlen(vm: "VirtualMachine", args: List[int]) -> int:
    s = _read_cstring(vm, args[0])
    _charged_bytes(vm, "strlen", len(s))
    return len(s)


def native_strcpy(vm: "VirtualMachine", args: List[int]) -> int:
    dest, src = args
    s = _read_cstring(vm, src)
    vm.memory.write_bytes(dest, s + b"\x00")
    _charged_bytes(vm, "strcpy", len(s))
    return dest


def native_strcmp(vm: "VirtualMachine", args: List[int]) -> int:
    a = _read_cstring(vm, args[0])
    b = _read_cstring(vm, args[1])
    _charged_bytes(vm, "strcmp", min(len(a), len(b)))
    if a == b:
        return 0
    return 1 if a > b else (1 << 32) - 1  # -1 as u32


# -- I/O ---------------------------------------------------------------


def native_print_i64(vm: "VirtualMachine", args: List[int]) -> None:
    value = args[0]
    if value >= 1 << 63:
        value -= 1 << 64
    vm.output.append(str(value))


def native_print_f64(vm: "VirtualMachine", args: List[float]) -> None:
    vm.output.append(f"{args[0]:.6f}")


def native_print_str(vm: "VirtualMachine", args: List[int]) -> None:
    vm.output.append(_read_cstring(vm, args[0]).decode("latin-1"))


def native_abort(vm: "VirtualMachine", args: List[int]) -> None:
    from ..errors import ProgramAbort

    raise ProgramAbort(134)


def native_exit(vm: "VirtualMachine", args: List[int]) -> None:
    vm.request_exit(args[0])


# -- math ------------------------------------------------------------------


def native_sqrt(vm: "VirtualMachine", args: List[float]) -> float:
    return math.sqrt(args[0]) if args[0] >= 0 else float("nan")


def native_fabs(vm: "VirtualMachine", args: List[float]) -> float:
    return abs(args[0])


def native_sin(vm: "VirtualMachine", args: List[float]) -> float:
    return math.sin(args[0])


def native_cos(vm: "VirtualMachine", args: List[float]) -> float:
    return math.cos(args[0])


def native_llabs(vm: "VirtualMachine", args: List[int]) -> int:
    value = args[0]
    if value >= 1 << 63:
        value = (1 << 64) - value
    return value


# -- registration table ---------------------------------------------------

LIBC_SIGNATURES = {
    "malloc": FunctionType(I8P, [I64]),
    "calloc": FunctionType(I8P, [I64, I64]),
    "realloc": FunctionType(I8P, [I8P, I64]),
    "free": FunctionType(VOID, [I8P]),
    "memcpy": FunctionType(I8P, [I8P, I8P, I64]),
    "memmove": FunctionType(I8P, [I8P, I8P, I64]),
    "memset": FunctionType(I8P, [I8P, I32, I64]),
    "strlen": FunctionType(I64, [I8P]),
    "strcpy": FunctionType(I8P, [I8P, I8P]),
    "strcmp": FunctionType(I32, [I8P, I8P]),
    "print_i64": FunctionType(VOID, [I64]),
    "print_f64": FunctionType(VOID, [F64]),
    "print_str": FunctionType(VOID, [I8P]),
    "abort": FunctionType(VOID, []),
    "exit": FunctionType(VOID, [I32]),
    "sqrt": FunctionType(F64, [F64]),
    "fabs": FunctionType(F64, [F64]),
    "sin": FunctionType(F64, [F64]),
    "cos": FunctionType(F64, [F64]),
    "llabs": FunctionType(I64, [I64]),
}

# Optimizer-relevant attributes of the libc subset.
LIBC_ATTRIBUTES = {
    "strlen": {"readonly"},
    "strcmp": {"readonly"},
    "sqrt": {"readnone"},
    "fabs": {"readnone"},
    "sin": {"readnone"},
    "cos": {"readnone"},
    "llabs": {"readnone"},
    "abort": {"noreturn"},
    "exit": {"noreturn"},
}

LIBC_IMPLS: dict = {
    "malloc": native_malloc,
    "calloc": native_calloc,
    "realloc": native_realloc,
    "free": native_free,
    "memcpy": native_memcpy,
    "memmove": native_memmove,
    "memset": native_memset,
    "strlen": native_strlen,
    "strcpy": native_strcpy,
    "strcmp": native_strcmp,
    "print_i64": native_print_i64,
    "print_f64": native_print_f64,
    "print_str": native_print_str,
    "abort": native_abort,
    "exit": native_exit,
    "sqrt": native_sqrt,
    "fabs": native_fabs,
    "sin": native_sin,
    "cos": native_cos,
    "llabs": native_llabs,
}


def install_libc(vm: "VirtualMachine") -> None:
    """Register the libc subset on a VM."""
    for name, impl in LIBC_IMPLS.items():
        vm.register_native(name, impl)

"""Deterministic IR virtual machine: memory model, interpreter, costs."""

from .interpreter import VirtualMachine
from .memory import (
    Allocation,
    GLOBALS_BASE,
    HEAP_BASE,
    LOWFAT_BASE,
    LOWFAT_END,
    Memory,
    STACK_TOP,
    StackAllocator,
    StandardAllocator,
)
from .stats import RuntimeStats

__all__ = [
    "Allocation",
    "GLOBALS_BASE",
    "HEAP_BASE",
    "LOWFAT_BASE",
    "LOWFAT_END",
    "Memory",
    "RuntimeStats",
    "STACK_TOP",
    "StackAllocator",
    "StandardAllocator",
    "VirtualMachine",
]

"""Execution statistics.

The harness derives every number in the paper's evaluation from these
counters:

* ``cycles`` -- the deterministic runtime measure (Figures 9-13).
* ``checks_executed`` / ``checks_wide`` -- the dynamic dereference-check
  classification behind Table 2 ("number of unsafe dereferences in %").
* ``invariant_checks`` -- Low-Fat escape checks (Figure 11's
  metadata-only configuration).
* ``metadata_ops`` -- trie and shadow-stack traffic (Section 5.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RuntimeStats:
    cycles: int = 0
    instructions: int = 0
    opcode_counts: Counter = field(default_factory=Counter)

    loads: int = 0
    stores: int = 0
    calls: int = 0

    # dereference checks (Table 2, Section 4.6)
    checks_executed: int = 0
    checks_wide: int = 0

    # Low-Fat escape-invariant checks
    invariant_checks: int = 0

    # SoftBound metadata traffic
    trie_loads: int = 0
    trie_stores: int = 0
    shadow_stack_ops: int = 0

    # allocator traffic
    heap_allocs: int = 0
    heap_frees: int = 0
    lowfat_allocs: int = 0
    lowfat_fallback_allocs: int = 0

    per_site: Dict[str, Counter] = field(default_factory=dict)

    # Opt-in profiling (``repro profile``).  When ``profile`` is off the
    # extra per-site fields are never touched, so aggregates stay
    # bit-identical to unprofiled runs; when it is on, per-site cycle
    # attribution and dynamic wide-bounds reasons are collected too.
    profile: bool = False
    instrumentation_cycles: int = 0

    def charge(self, opcode: str, cycles: int) -> None:
        self.cycles += cycles
        self.instructions += 1
        self.opcode_counts[opcode] += 1

    def record_check(
        self,
        site: str,
        wide: bool,
        cost: int = 0,
        reason: str = None,
    ) -> None:
        self.checks_executed += 1
        counter = self.per_site.get(site)
        if counter is None:
            counter = self.per_site[site] = Counter()
        counter["executed"] += 1
        if self.profile:
            counter["cycles"] += cost
        if wide:
            self.checks_wide += 1
            counter["wide"] += 1
            if self.profile and reason is not None:
                counter["reason:" + reason] += 1

    def record_invariant(self, site: str, cost: int = 0) -> None:
        self.invariant_checks += 1
        if self.profile:
            counter = self.per_site.get(site)
            if counter is None:
                counter = self.per_site[site] = Counter()
            counter["invariant"] += 1
            counter["cycles"] += cost

    @property
    def unsafe_percent(self) -> float:
        """Percentage of executed dereference checks that used wide
        (unchecked) bounds -- the quantity in the paper's Table 2."""
        if self.checks_executed == 0:
            return 0.0
        return 100.0 * self.checks_wide / self.checks_executed

    def summary(self) -> str:
        lines = [
            f"cycles:            {self.cycles}",
            f"instructions:      {self.instructions}",
            f"loads/stores:      {self.loads}/{self.stores}",
            f"deref checks:      {self.checks_executed} "
            f"({self.checks_wide} wide, {self.unsafe_percent:.2f}%)",
            f"invariant checks:  {self.invariant_checks}",
            f"trie ops:          {self.trie_loads} loads, {self.trie_stores} stores",
            f"shadow stack ops:  {self.shadow_stack_ops}",
            f"heap allocs/frees: {self.heap_allocs}/{self.heap_frees}",
            f"low-fat allocs:    {self.lowfat_allocs} "
            f"({self.lowfat_fallback_allocs} fell back to standard malloc)",
        ]
        if self.profile:
            pct = (100.0 * self.instrumentation_cycles / self.cycles
                   if self.cycles else 0.0)
            lines.append(
                f"instr. cycles:     {self.instrumentation_cycles} "
                f"({pct:.2f}% of total)"
            )
        return "\n".join(lines)
